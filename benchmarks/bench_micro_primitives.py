"""Micro-benchmarks of the substrate primitives (timed with real pytest-benchmark rounds).

These are not paper figures; they document the per-operation costs that the
laptop-scale experiment parameters are derived from: predicate scoring, R-tree
threshold lookups, pairwise bound computation, and joint branch-and-bound bounds.
"""

import numpy as np

from repro.index import CompiledPredicateQuery, ThresholdIndex
from repro.solver import AggregateObjective, BranchAndBoundSolver, DomainSet, EdgeObjective, VariableBox
from repro.temporal import AverageScore, Interval, PredicateParams
from repro.temporal.predicates import meets, overlaps, starts

P1 = PredicateParams.of(4, 16, 0, 10)


def _intervals(n, seed=0):
    rng = np.random.default_rng(seed)
    starts_arr = rng.uniform(0, 10_000, n)
    lengths = rng.uniform(1, 100, n)
    return [
        Interval(i, float(s), float(s + l)) for i, (s, l) in enumerate(zip(starts_arr, lengths))
    ]


def bench_predicate_scoring_compiled(benchmark):
    scorer = overlaps(P1).compile()
    xs = _intervals(200, seed=1)
    ys = _intervals(200, seed=2)

    def run():
        total = 0.0
        for x in xs[:100]:
            for y in ys[:100]:
                total += scorer(x, y)
        return total

    benchmark(run)


def bench_rtree_threshold_lookup(benchmark):
    pool = _intervals(5_000, seed=3)
    index = ThresholdIndex.build(pool)
    predicate = meets(P1).rename("x", "y")
    compiled = CompiledPredicateQuery(predicate, "x", "y")
    probes = _intervals(200, seed=4)

    def run():
        found = 0
        for probe in probes:
            found += len(index.candidates_compiled(compiled, probe, 0.5))
        return found

    benchmark(run)


def bench_pairwise_bounds(benchmark):
    objective = EdgeObjective.from_edge("x", "y", starts(P1))
    boxes = [
        DomainSet.from_mapping(
            {
                "x": VariableBox(i * 10.0, i * 10.0 + 50.0, i * 10.0, i * 10.0 + 120.0),
                "y": VariableBox(j * 10.0, j * 10.0 + 50.0, j * 10.0, j * 10.0 + 120.0),
            }
        )
        for i in range(20)
        for j in range(20)
    ]

    def run():
        total = 0.0
        for domains in boxes:
            lo, hi = objective.score_range(domains.endpoint_domains())
            total += hi - lo
        return total

    benchmark(run)


def bench_joint_branch_and_bound(benchmark):
    objective = AggregateObjective(
        edges=(
            EdgeObjective.from_edge("x", "y", starts(P1)),
            EdgeObjective.from_edge("y", "z", meets(P1)),
        ),
        aggregation=AverageScore(num_edges=2),
    )
    domains = DomainSet.from_mapping(
        {
            "x": VariableBox(0, 100, 0, 200),
            "y": VariableBox(50, 150, 100, 300),
            "z": VariableBox(200, 300, 250, 400),
        }
    )
    solver = BranchAndBoundSolver(max_nodes=64)

    benchmark(lambda: solver.bounds(objective, domains))
