"""Figure 11 — scalability of TKIJ against All-Matrix and RCCIS.

Paper setting: |Ci| in [1M, 5M], g = 40, k = 100; TKIJ with Boolean (PB) and scored
(P1) parameters against All-Matrix (Qb,b) and RCCIS (Qo,o, Qs,m), all Boolean.
Expected shape: on Qb,b TKIJ stays nearly flat (TopBuckets selects a single
combination) while All-Matrix grows with |Ci|; on Qo,o / Qs,m the baselines' cost
grows with |Ci| because their planning/replication work scales with the input,
while TKIJ's selection step depends only on the statistics.
"""

from repro.experiments import figure11_scalability

SIZES = (250, 500, 1_000)
QUERIES = ("Qb,b", "Qo,o", "Qs,m")
K = 50
GRANULES = 10


def bench_figure11(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure11_scalability(sizes=SIZES, queries=QUERIES, k=K, num_granules=GRANULES),
        rounds=1,
        iterations=1,
    )
    record_table("fig11_scalability", table)

    def series(query, system, column):
        return {
            row["size"]: row[column]
            for row in table.rows
            if row["query"] == query and row["system"] == system
        }

    # On Qb,b the baseline shuffles (much) more data than TKIJ at the largest size.
    tkij_shuffle = series("Qb,b", "TKIJ-PB", "shuffle_records")
    allmatrix_shuffle = series("Qb,b", "All-Matrix-PB", "shuffle_records")
    assert tkij_shuffle[max(SIZES)] <= allmatrix_shuffle[max(SIZES)]
    # TKIJ's Qb,b running time grows slower than the baseline's.
    tkij_time = series("Qb,b", "TKIJ-PB", "total_seconds")
    allmatrix_time = series("Qb,b", "All-Matrix-PB", "total_seconds")
    tkij_growth = tkij_time[max(SIZES)] / max(tkij_time[min(SIZES)], 1e-9)
    baseline_growth = allmatrix_time[max(SIZES)] / max(allmatrix_time[min(SIZES)], 1e-9)
    assert tkij_growth <= baseline_growth * 2.0
