"""Figure 13 — scalability on the (simulated) network trace.

Paper setting: samples of 5%-35% of one day of firewall logs (0.58M-2.31M
connections), g = 40, k = 100, parameters P3, queries including the network-analysis
predicates QjB,jB and QsM,sM.  Expected shape: running time grows with the sample
fraction, faster than on synthetic data because larger samples populate more
buckets (more non-empty bucket combinations for TopBuckets to process), and the
query with the most predicates (Qs,f,m) is dominated by TopBuckets.
"""

from repro.datagen import NetworkTraceConfig
from repro.experiments import figure13_network_scalability

CONFIG = NetworkTraceConfig(num_sessions=1_200)
FRACTIONS = (0.5, 1.0)
QUERIES = ("Qb,b", "Qo,m", "QjB,jB", "QsM,sM")
K = 100
GRANULES = 10


def bench_figure13(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure13_network_scalability(
            fractions=FRACTIONS,
            queries=QUERIES,
            k=K,
            num_granules=GRANULES,
            config=CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("fig13_network_scalability", table)

    # Larger samples populate more bucket combinations (the paper's explanation for
    # the steeper growth on real data).
    qbb = {row["fraction"]: row["nonempty_buckets"] for row in table.rows if row["query"] == "Qb,b"}
    assert qbb[max(FRACTIONS)] >= qbb[min(FRACTIONS)]
