"""Statistics collection time (Section 4, "Statistics collection").

Paper numbers: 28 s for |Ci| = 2e5 up to 36 s for |Ci| = 5e6 on the 6-worker
cluster — i.e. the offline phase grows slowly and is negligible compared to query
evaluation.  Expected shape here: near-linear in the input size and much cheaper
than the join benchmarks.
"""

from repro.experiments import statistics_collection_times

SIZES = (2_000, 10_000, 40_000)
GRANULES = 20


def bench_statistics_collection(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: statistics_collection_times(sizes=SIZES, num_granules=GRANULES),
        rounds=1,
        iterations=1,
    )
    record_table("statistics_collection", table)

    seconds = dict(zip(table.column("size"), table.column("seconds")))
    # Near-linear growth: 20x more data should cost far less than 100x more time.
    assert seconds[SIZES[-1]] <= max(seconds[SIZES[0]], 1e-3) * 100
