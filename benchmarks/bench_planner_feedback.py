"""Planner feedback loop — plan-cache hit latency versus a cold probed plan.

The feedback tentpole's measurable promise: a warm repeat of the same auto
query must skip the planner's statistics probe entirely, returning the
memoized plan in a small fraction of the cold planning time.  The benchmark
times both paths over the same query and context — cold rounds clear the plan
cache and lazily invalidate the statistics cache (``bump_generation``), warm
rounds replay the exact (query, dataset state) pair — and gates on the warm
path being at least ``MIN_SPEEDUP``× faster.  ``extra_info`` carries
``plan_cold_seconds`` / ``plan_warm_seconds`` (ratio-watched) and
``plan_cache_speedup`` (bigger-is-better) for the regression gate.
"""

from __future__ import annotations

import statistics
import time

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.plan import (
    CostStore,
    ExecutionContext,
    PlanCache,
    PlanFeedback,
    get_algorithm,
)

SIZE = 6_000
QUERY = "Qo,m"
K = 20
ROUNDS = 5
MIN_SPEEDUP = 3.0


def run_matrix():
    """Median cold (probed) and warm (memoized) auto-plan latencies."""
    config = SyntheticConfig(size=SIZE, start_max=20_000.0)
    collections = list(generate_collections(3, config, seed=17).values())
    context = ExecutionContext(
        cluster=ClusterConfig(num_reducers=8, num_mappers=4, backend="serial")
    )
    feedback = PlanFeedback(plan_cache=PlanCache(max_entries=16), cost_store=CostStore())
    context.feedback = feedback
    query = build_query(QUERY, collections, "P1", k=K)
    algorithm = get_algorithm("tkij")

    cold, warm = [], []
    with context:
        for _ in range(ROUNDS):
            feedback.plan_cache.clear()
            context.statistics.bump_generation()  # next probe recollects
            started = time.perf_counter()
            algorithm.plan(query, context, mode="auto")
            cold.append(time.perf_counter() - started)

            started = time.perf_counter()
            plan = algorithm.plan(query, context, mode="auto")
            warm.append(time.perf_counter() - started)
            assert any("plan cache" in reason for reason in plan.explanation.reasons)

    summary = feedback.plan_cache.describe()
    assert summary["hits"] == ROUNDS
    assert summary["misses"] == ROUNDS
    return statistics.median(cold), statistics.median(warm)


def bench_planner_feedback(benchmark):
    cold_seconds, warm_seconds = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    speedup = cold_seconds / max(warm_seconds, 1e-9)
    # The gate: a memoized plan must skip the probe, not merely shave it.
    assert speedup >= MIN_SPEEDUP, (
        f"plan-cache hit only {speedup:.1f}x faster than a cold plan "
        f"(cold={cold_seconds:.6f}s warm={warm_seconds:.6f}s); expected >= {MIN_SPEEDUP}x"
    )

    benchmark.extra_info.update(
        workload="planner_feedback",
        backend="serial",
        size=SIZE,
        query=QUERY,
        k=K,
        plan_cold_seconds=cold_seconds,
        plan_warm_seconds=warm_seconds,
        plan_cache_speedup=speedup,
    )
