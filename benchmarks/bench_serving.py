"""Serving-layer load generator — throughput, tail latency and admission control.

Starts an in-process query server on one warm ``ExecutionContext``, loads
synthetic collections through the ``load`` verb, then drives it from several
client threads issuing the same TKIJ query over and over.  The recorded
``extra_info`` carries the quantities the regression gate watches: sustained
``qps``, client-observed ``p50_latency_seconds`` / ``p99_latency_seconds``, and
the ``rejected`` count (zero for the throughput arm — the queue is deep enough
to absorb the burst).  The admission arm measures nothing timing-wise; it pins
the server to one slot and no queue and asserts the BUSY rejection path is
deterministic under contention.

Repeat queries exercise the warm path: the first request pays statistics
collection, every later one must report ``statistics_cached`` and raise the
shared cache's hit counter (asserted via the ``stats`` verb).
"""

from __future__ import annotations

import threading
import time

from repro.serving import BackgroundServer, QueryClient, QueryServer, ServingError

SIZE = 200
CLIENTS = 4
QUERIES_PER_CLIENT = 8
QUERY = "Qo,m"
K = 20
NAMES = ["R", "S", "T"]


def run_load(host: str, port: int, clients: int, queries_per_client: int):
    """Drive the server from ``clients`` threads; return per-query latencies."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []

    def worker(slot: int) -> None:
        try:
            with QueryClient(host, port) as client:
                for _ in range(queries_per_client):
                    started = time.perf_counter()
                    response = client.query(QUERY, NAMES, k=K)
                    latencies[slot].append(time.perf_counter() - started)
                    assert len(response["results"]) == K
        except BaseException as error:  # noqa: BLE001 - surfaced to the caller
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return [latency for slot in latencies for latency in slot], elapsed


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def bench_serving_throughput(benchmark):
    server = QueryServer(max_inflight=CLIENTS, max_queue=CLIENTS * QUERIES_PER_CLIENT)
    with BackgroundServer(server) as (host, port):
        with QueryClient(host, port) as client:
            client.load(NAMES, size=SIZE, seed=7)
            # One cold query so the measured burst runs entirely warm.
            client.query(QUERY, NAMES, k=K)

        latencies, elapsed = benchmark.pedantic(
            run_load, args=(host, port, CLIENTS, QUERIES_PER_CLIENT), rounds=1, iterations=1
        )

        with QueryClient(host, port) as client:
            stats = client.stats()

    total = CLIENTS * QUERIES_PER_CLIENT
    assert len(latencies) == total
    assert stats["queries"]["ok"] == total + 1
    assert stats["queries"]["errors"] == {}
    # The warm statistics cache served every query after the cold one.
    assert stats["statistics_cache"]["hits"] >= total
    assert stats["admission"]["rejected"] == 0

    benchmark.extra_info.update(
        workload="serving_throughput",
        backend="serial",
        clients=CLIENTS,
        queries=total,
        qps=total / elapsed,
        p50_latency_seconds=percentile(latencies, 0.50),
        p99_latency_seconds=percentile(latencies, 0.99),
        rejected=stats["admission"]["rejected"],
        statistics_cache_hits=stats["statistics_cache"]["hits"],
    )


def bench_serving_admission_control(benchmark):
    """One slot, no queue: a saturating burst must draw deterministic BUSY errors."""

    def burst():
        server = QueryServer(max_inflight=1, max_queue=0)
        with BackgroundServer(server) as (host, port):
            with QueryClient(host, port) as client:
                client.load(NAMES, size=SIZE, seed=7)
                client.query(QUERY, NAMES, k=K)  # warm the cache

            accepted, rejected = 0, 0
            lock = threading.Lock()
            barrier = threading.Barrier(CLIENTS)

            def worker() -> None:
                nonlocal accepted, rejected
                with QueryClient(host, port) as client:
                    barrier.wait()
                    for _ in range(QUERIES_PER_CLIENT):
                        try:
                            client.query(QUERY, NAMES, k=K)
                            with lock:
                                accepted += 1
                        except ServingError as error:
                            assert error.code == "BUSY"
                            with lock:
                                rejected += 1

            threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            with QueryClient(host, port) as client:
                stats = client.stats()
        return accepted, rejected, stats

    accepted, rejected, stats = benchmark.pedantic(burst, rounds=1, iterations=1)

    total = CLIENTS * QUERIES_PER_CLIENT
    assert accepted + rejected == total
    # At least one query per client lands (each retriable slot frees up), and
    # with a single slot and zero queue the burst cannot be fully admitted.
    assert accepted >= 1
    assert rejected >= 1
    assert stats["admission"]["rejected"] == rejected
    assert stats["queries"]["errors"].get("BUSY") == rejected

    benchmark.extra_info.update(
        workload="serving_admission",
        backend="serial",
        accepted=accepted,
        rejected=rejected,
    )
