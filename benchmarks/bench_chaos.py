"""Chaos-soak benchmark — crash-safe serving under deterministic wire chaos.

A supervised two-worker server sits behind a :class:`ChaosProxy` that drops
connections mid-response, truncates frames and delays writes on a seeded
keyed-hash schedule; on top of that, both workers are SIGKILLed at fixed
points of the run.  Four retrying clients (two static ``tkij`` sessions, two
``tkij-streaming`` sessions with seq-numbered mid-run ingest) drive a
200-query mixed load through the proxy.

The gates are deterministic and blocking: **zero lost responses** (every one
of the 200 queries gets an answer within its retry budget) and **zero
incorrect responses** (each answer is identical to the same step of a
fault-free run of the same scripted session against a plain in-process
server).  Recovery cost lands in ``extra_info`` for the regression check:
``recovery_p99_seconds`` is the p99 client-observed latency — the slowest
queries are the ones that sat out a worker respawn — ratio-compared against
the committed baseline like every other measurement key.
"""

from __future__ import annotations

import threading
import time

from repro.datagen.synthetic import SyntheticConfig, generate_uniform_collection
from repro.serving import (
    BackgroundServer,
    ChaosPlan,
    ChaosProxy,
    QueryClient,
    QueryServer,
    RetryPolicy,
    ServerSupervisor,
)
from repro.serving.protocol import encode_intervals

SIZE = 120
CLIENTS = 4
QUERIES_PER_CLIENT = 50  # 4 * 50 = 200 queries total
QUERY = "Qo,m"
K = 10
INITIAL = 80  # intervals registered up front; the rest arrives via ingest
KILL_AFTER = (60, 130)  # total completed queries before each worker SIGKILL

PLAN = ChaosPlan(
    seed=11,
    drop_rate=0.05,
    truncate_rate=0.05,
    delay_rate=0.05,
    delay_seconds=0.01,
    skip_frames=1,
)


def session_collections(slot: int):
    """Each client works on its own collection namespace (no cross-talk)."""
    return [
        generate_uniform_collection(
            f"{name}{slot}", SyntheticConfig(size=SIZE), seed=7 + 10 * slot + offset
        )
        for offset, name in enumerate(("R", "S", "T"))
    ]


def run_session(client: QueryClient, slot: int, on_done=None) -> list:
    """One client's scripted mixed workload; returns the per-query results.

    Even slots are static ``tkij`` sessions; odd slots are ``tkij-streaming``
    sessions that register a prefix, ingest the remainder mid-run with
    client-chosen ``seq`` numbers (exactly-once under retries), and read their
    top-k through a pinned ``stream_id``.
    """
    streaming = slot % 2 == 1
    collections = session_collections(slot)
    names = [collection.name for collection in collections]
    for collection in collections:
        intervals = collection.intervals[:INITIAL] if streaming else collection.intervals
        client.register(collection.name, encode_intervals(intervals), streaming=streaming)

    responses = []
    for step in range(QUERIES_PER_CLIENT):
        if streaming and step == QUERIES_PER_CLIENT // 2:
            for seq, collection in enumerate(collections, start=1):
                batch = encode_intervals(collection.intervals[INITIAL:])
                client.ingest(collection.name, batch, seq=seq)
        fields = (
            {"algorithm": "tkij-streaming", "options": {"stream_id": f"soak-{slot}"}}
            if streaming
            else {}
        )
        responses.append(client.query(QUERY, names, k=K, **fields)["results"])
        if on_done is not None:
            on_done()
    return responses


def fault_free_reference() -> list[list]:
    """The same four scripted sessions against a plain in-process server."""
    server = QueryServer(max_inflight=CLIENTS, max_queue=4 * CLIENTS)
    with BackgroundServer(server) as (host, port):
        reference = []
        for slot in range(CLIENTS):
            with QueryClient(host, port) as client:
                reference.append(run_session(client, slot))
    return reference


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def bench_chaos_soak(benchmark):
    expected = fault_free_reference()

    def soak():
        supervisor = ServerSupervisor(
            num_workers=2,
            max_inflight=CLIENTS,
            max_queue=4 * CLIENTS,
            drain_timeout=10.0,
            heartbeat_interval=0.1,
            restart_base=0.05,
            restart_cap=0.5,
        )
        background = BackgroundServer(supervisor)
        frontend = background.start()
        proxy = ChaosProxy(*frontend, PLAN)
        proxy_background = BackgroundServer(proxy)
        proxied = proxy_background.start()
        try:
            completed = 0
            kills = list(KILL_AFTER)
            latencies: list[float] = []
            lock = threading.Lock()
            outcomes: list = [None] * CLIENTS
            errors: list[BaseException] = []

            def on_done():
                # SIGKILL the next worker once the load crosses each mark.
                nonlocal completed
                with lock:
                    completed += 1
                    due = kills and completed >= kills[0]
                    if due:
                        kills.pop(0)
                if due:
                    victim = supervisor.workers[len(KILL_AFTER) - len(kills) - 1]
                    if victim.alive():
                        victim.process.kill()

            def drive(slot: int) -> None:
                try:
                    retry = RetryPolicy(
                        max_attempts=12, base_delay=0.05, max_delay=0.5, seed=slot
                    )
                    with QueryClient(
                        *proxied, retry=retry, affinity=f"soak-{slot}"
                    ) as client:
                        timed: list = []

                        def timed_done():
                            latencies.append(time.perf_counter() - timed.pop())
                            on_done()

                        def timed_session():
                            original = client.request

                            def request(verb, **fields):
                                if verb == "query":
                                    timed.append(time.perf_counter())
                                return original(verb, **fields)

                            client.request = request
                            return run_session(client, slot, on_done=timed_done)

                        outcomes[slot] = timed_session()
                except BaseException as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=drive, args=(slot,)) for slot in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            return outcomes, latencies, supervisor.describe(), proxy.stats
        finally:
            proxy_background.stop()
            background.stop()

    outcomes, latencies, supervision, chaos_stats = benchmark.pedantic(
        soak, rounds=1, iterations=1
    )

    total = CLIENTS * QUERIES_PER_CLIENT
    lost = sum(
        QUERIES_PER_CLIENT - len(responses or []) for responses in outcomes
    )
    incorrect = sum(
        1
        for slot in range(CLIENTS)
        for got, want in zip(outcomes[slot] or [], expected[slot])
        if got != want
    )
    # The blocking gates: nothing lost, nothing wrong, and the chaos was real.
    assert lost == 0, f"{lost} of {total} responses lost"
    assert incorrect == 0, f"{incorrect} of {total} responses incorrect"
    assert len(latencies) == total
    assert supervision["respawns"] >= len(KILL_AFTER)
    assert chaos_stats["drops"] + chaos_stats["truncates"] > 0

    benchmark.extra_info.update(
        workload="chaos_soak",
        backend="serial",
        clients=CLIENTS,
        queries=total,
        chaos_seed=PLAN.seed,
        lost_responses=lost,
        incorrect_responses=incorrect,
        respawns=supervision["respawns"],
        chaos_drops=chaos_stats["drops"],
        chaos_truncates=chaos_stats["truncates"],
        recovery_p50_seconds=percentile(latencies, 0.50),
        recovery_p99_seconds=percentile(latencies, 0.99),
    )
