"""Ablation — local-join design choices (not a paper figure; see DESIGN.md §5).

Two knobs of the per-reducer join are switched off one at a time:

* early termination on the per-combination score upper bound,
* R-tree threshold lookups (falling back to scanning the whole bucket).

Expected shape: both optimisations reduce the number of candidate tuples examined
without changing the returned results (the correctness part is covered by the test
suite; here the work counters are recorded).
"""

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import ResultTable, TKIJRunConfig, build_query, run_tkij

SIZE = 250
QUERY = "Qs,m"
K = 50
GRANULES = 12

_VARIANTS = {
    "full": TKIJRunConfig(num_granules=GRANULES),
    "no-early-termination": TKIJRunConfig(num_granules=GRANULES, early_termination=False),
    "no-index": TKIJRunConfig(num_granules=GRANULES, use_index=False),
    "no-index-no-termination": TKIJRunConfig(
        num_granules=GRANULES, use_index=False, early_termination=False
    ),
}


def _run_ablation() -> ResultTable:
    collections = list(generate_collections(3, SyntheticConfig(size=SIZE), seed=7).values())
    table = ResultTable(
        title=f"Ablation — local join pruning ({QUERY}, |Ci|={SIZE}, k={K})",
        columns=["variant", "join_seconds", "candidates_examined", "tuples_scored", "top_score"],
    )
    for name, config in _VARIANTS.items():
        query = build_query(QUERY, collections, "P1", k=K)
        result = run_tkij(query, config)
        table.add_row(
            variant=name,
            join_seconds=result.phase_seconds["join"],
            candidates_examined=result.local_join_stats.candidates_examined,
            tuples_scored=result.local_join_stats.tuples_scored,
            top_score=result.results[0].score if result.results else 0.0,
        )
    return table


def bench_local_join_ablation(benchmark, record_table):
    table = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    record_table("ablation_local_join", table)

    work = {row["variant"]: row["candidates_examined"] for row in table.rows}
    assert work["full"] <= work["no-index-no-termination"]
    scores = {row["variant"]: row["top_score"] for row in table.rows}
    assert len(set(round(s, 9) for s in scores.values())) == 1
