"""Section 4.2.6 — effect of k on synthetic data (text-only experiment in the paper).

Paper setting: |Ci| = 2e6, k in [10, 1e5].  Expected shape: the running time is
almost constant in k because each bucket combination holds a huge number of
potential results, so the set of selected combinations barely changes with k.
"""

from repro.experiments import effect_of_k_synthetic

KS = (10, 100, 1_000, 10_000)
QUERIES = ("Qb,b", "Qo,m", "Qf,b")
SIZE = 500
GRANULES = 10


def bench_effect_of_k(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: effect_of_k_synthetic(ks=KS, queries=QUERIES, size=SIZE, num_granules=GRANULES),
        rounds=1,
        iterations=1,
    )
    record_table("effect_k_synthetic", table)

    # The number of selected combinations stays identical (or nearly so) across k
    # for the sequence query, which is the mechanism behind the flat curve.
    qbb = {
        row["k"]: row["selected_combinations"] for row in table.rows if row["query"] == "Qb,b"
    }
    assert max(qbb.values()) <= min(qbb.values()) * 3
