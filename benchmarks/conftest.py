"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale and
records the resulting series under ``benchmarks/results/`` so the numbers can be
compared against the paper's shapes (see EXPERIMENTS.md).  The pytest-benchmark
timings measure the end-to-end driver; the interesting quantities (per-phase times,
shuffle volume, pruning rates) are inside the recorded tables.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Persist a ResultTable under benchmarks/results/ and echo it to stdout."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, table) -> None:
        text = table.to_text()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(autouse=True)
def _default_benchmark_meta(request):
    """Stamp workload/kernel/backend metadata into every BENCH_*.json payload.

    The regression gate (``check_regression.py``) only compares benchmarks
    whose ``extra_info`` matches the baseline's, so every payload must say
    what configuration it measured.  Defaults describe the common case (the
    benchmark's own workload on the scalar kernel over the serial backend);
    benchmarks that sweep kernels or backends override them explicitly.
    """
    if "benchmark" in request.fixturenames:
        benchmark = request.getfixturevalue("benchmark")
        benchmark.extra_info.setdefault(
            "workload", request.node.name.removeprefix("bench_")
        )
        benchmark.extra_info.setdefault("kernel", "scalar")
        benchmark.extra_info.setdefault("backend", "serial")
    yield
