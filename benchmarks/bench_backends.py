"""Execution backends — serial vs. thread vs. process on the join workload.

Runs the Figure 11 scalability workload (Qo,o, the join-heavy colocation
query) through TKIJ once per execution backend at increasing collection
sizes, recording join-phase and end-to-end wall-clock plus the speedup over
the serial backend.  The join phase is CPU-bound (local top-k joins on every
reducer), so on a multi-core machine the process backend's speedup should
exceed 1x once the per-task compute dominates pickling overhead; the thread
backend stays near 1x because the join is pure Python under the GIL.

All backends must return identical results — that parity is asserted here on
every run.  The speedup assertion is only enforced when the machine actually
has more than one usable core (a single-core container cannot physically
demonstrate parallel speedup; the table still records the measured ratios).
"""

from __future__ import annotations

import os

from repro.core import TKIJ
from repro.datagen.synthetic import SyntheticConfig, generate_collections
from repro.experiments import ResultTable, build_query
from repro.mapreduce import ClusterConfig

SIZES = (400, 800)
BACKENDS = ("serial", "thread", "process")
QUERY = "Qo,o"
K = 100
GRANULES = 10
NUM_REDUCERS = 8
MAX_WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def backend_speedup_table(
    sizes=SIZES, backends=BACKENDS, query_name=QUERY, seed=7
) -> ResultTable:
    """Join-phase wall-clock and speedup per backend at increasing sizes."""
    table = ResultTable(
        title=f"Execution backends — {query_name}, g={GRANULES}, k={K}, "
        f"workers={MAX_WORKERS}, cores={_usable_cores()}",
        columns=["size", "backend", "join_seconds", "total_seconds", "join_speedup"],
    )
    for size in sizes:
        collections = list(
            generate_collections(3, SyntheticConfig(size=size), seed=seed).values()
        )
        query = build_query(query_name, collections, "P1", k=K)
        reports = {}
        for backend in backends:
            cluster = ClusterConfig(
                num_reducers=NUM_REDUCERS,
                backend=backend,
                max_workers=MAX_WORKERS,
            )
            with TKIJ(num_granules=GRANULES, cluster=cluster) as tkij:
                reports[backend] = tkij.execute(query)

        reference = reports["serial"]
        for backend in backends:
            report = reports[backend]
            # Parity: every backend returns byte-identical results and shuffle.
            assert [(r.uids, r.score) for r in report.results] == [
                (r.uids, r.score) for r in reference.results
            ], f"{backend} results diverge from serial at size {size}"
            assert (
                report.join_metrics.shuffle_records
                == reference.join_metrics.shuffle_records
            ), f"{backend} shuffle diverges from serial at size {size}"
            table.add_row(
                size=size,
                backend=backend,
                join_seconds=report.phase_seconds["join"],
                total_seconds=report.total_seconds,
                join_speedup=reference.phase_seconds["join"]
                / max(report.phase_seconds["join"], 1e-9),
            )
    return table


def bench_backend_speedup(benchmark, record_table):
    benchmark.extra_info.update(
        workload="fig11", kernel="scalar", backend="serial+thread+process"
    )
    table = benchmark.pedantic(backend_speedup_table, rounds=1, iterations=1)
    record_table("backends_speedup", table)

    largest = max(SIZES)
    speedups = {
        row["backend"]: row["join_speedup"]
        for row in table.rows
        if row["size"] == largest
    }
    # On a multi-core machine the CPU-bound join must get faster on processes.
    if _usable_cores() > 1:
        assert speedups["process"] > 1.0, speedups
    # Parallel overhead must stay bounded even on a single core.
    assert speedups["process"] > 0.5, speedups
    assert speedups["thread"] > 0.5, speedups
