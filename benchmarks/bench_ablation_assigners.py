"""Ablation — workload-assignment policies (DTB vs LPT vs round-robin).

Extends Figure 8's DTB/LPT comparison with a naive round-robin arm to isolate the
two ingredients of DTB: visiting combinations in descending score order and the
replication-aware tie-break.
"""

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import ResultTable, TKIJRunConfig, build_query, run_tkij

SIZE = 450
QUERIES = ("Qs,s", "Qo,o")
K = 100
GRANULES = 12
ASSIGNERS = ("dtb", "lpt", "round-robin")


def _run() -> ResultTable:
    collections = list(generate_collections(3, SyntheticConfig(size=SIZE), seed=11).values())
    table = ResultTable(
        title=f"Ablation — workload assignment (|Ci|={SIZE}, k={K}, g={GRANULES})",
        columns=[
            "query",
            "assigner",
            "join_seconds",
            "max_reduce_seconds",
            "shuffle_records",
            "min_kth_score",
        ],
    )
    for query_name in QUERIES:
        for assigner in ASSIGNERS:
            query = build_query(query_name, collections, "P2", k=K)
            result = run_tkij(query, TKIJRunConfig(num_granules=GRANULES, assigner=assigner))
            table.add_row(
                query=query_name,
                assigner=assigner,
                join_seconds=result.phase_seconds["join"],
                max_reduce_seconds=result.join_metrics.max_reduce_seconds,
                shuffle_records=result.join_metrics.shuffle_records,
                min_kth_score=result.min_kth_score,
            )
    return table


def bench_assigner_ablation(benchmark, record_table):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    record_table("ablation_assigners", table)

    # DTB's replication-aware tie-break should not shuffle more than round-robin.
    for query_name in QUERIES:
        shuffle = {
            row["assigner"]: row["shuffle_records"]
            for row in table.rows
            if row["query"] == query_name
        }
        assert shuffle["dtb"] <= shuffle["round-robin"] * 1.2
