"""Out-of-core shuffle — memory budget, disk spill and transfer strategies.

Three claims of DESIGN.md §10 are measured and enforced here:

1. **Flat peak RSS under a budget.**  A columnar workload ~9x the budget is
   pushed through the engine twice — unbounded and with
   ``memory_budget_bytes`` — in *fresh child processes* (``ru_maxrss`` is a
   per-process high-water mark, so each arm must own its process).  The
   mappers generate their batches, so the only driver-resident data is the
   shuffle itself: unbounded, the peak tracks the working set; budgeted, it
   must stay within 1.5x of the budget plus one streamed reducer's runs.
2. **Spilling never changes an answer.**  Both the synthetic arms and a
   Figure 11-style top-k join (network trace, vector kernel) must return
   byte-identical outputs and shuffle counters with and without a budget.
3. **Shared-memory beats pickling across the process boundary.**  The same
   join on the process backend under ``transfer=shm`` vs ``transfer=pickle``.
   Like the backend benchmark, the wall-clock ratio is advisory on a
   single-core runner; the parity and segment-hygiene assertions always hold.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.columnar import IntervalColumns
from repro.columnar.shm import SEGMENT_PREFIX
from repro.core import TKIJ
from repro.core.local_join import LocalJoinConfig
from repro.datagen.network import NetworkTraceConfig, generate_network_collection
from repro.experiments import ResultTable, build_query
from repro.mapreduce import (
    ClusterConfig,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
)
from repro.mapreduce.spill import SPILL_DIR_PREFIX
from repro.temporal import IntervalCollection

# Synthetic out-of-core workload: mappers *generate* their columnar batches,
# so the dataset never exists up front and the driver's footprint is the
# shuffle itself — the quantity the budget is supposed to bound.
N_BATCHES = 384
ROWS_PER_BATCH = 8192
NUM_KEYS = 32
NUM_REDUCERS = 8
WORKING_SET_BYTES = N_BATCHES * ROWS_PER_BATCH * 24  # transfer_nbytes per row
MEMORY_BUDGET_BYTES = 8 << 20  # ~1/9 of the working set

# Figure 11-style join arms (network trace, vector kernel).
TKIJ_SESSIONS = 400
TKIJ_BUDGET_BYTES = 32 << 10
QUERY = "Qo,o"
K = 20
GRANULES = 10


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _assert_no_litter() -> None:
    assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []
    assert glob.glob(os.path.join(tempfile.gettempdir(), f"{SPILL_DIR_PREFIX}*")) == []


# ------------------------------------------------------- out-of-core workload
class BatchGenMapper(Mapper):
    """Generates one deterministic columnar batch per input record."""

    def map(self, key, value):
        uids = np.arange(ROWS_PER_BATCH, dtype=np.int64) + value * ROWS_PER_BATCH
        starts = uids.astype(float)
        yield value % NUM_KEYS, IntervalColumns(uids, starts, starts + 1.0)


class ChecksumReducer(Reducer):
    """Collapses each key's batches to (row count, float checksum)."""

    def reduce(self, key, values):
        total = 0.0
        count = 0
        for batch in values:
            total += float(batch.uids.sum()) + float(batch.starts.sum())
            count += len(batch)
        yield key, (count, total)


def _run_out_of_core(memory_budget_bytes: int | None) -> dict:
    """One arm of the RSS experiment; runs inside a fresh child process."""
    cluster = ClusterConfig(
        num_mappers=N_BATCHES,
        num_reducers=NUM_REDUCERS,
        backend="serial",
        memory_budget_bytes=memory_budget_bytes,
    )
    job = MapReduceJob(
        name="out-of-core",
        mapper_factory=BatchGenMapper,
        reducer_factory=ChecksumReducer,
        num_reducers=NUM_REDUCERS,
    )
    records = [(index, index) for index in range(N_BATCHES)]
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    started = time.perf_counter()
    with MapReduceEngine(cluster) as engine:
        result = engine.run(job, records)
    seconds = time.perf_counter() - started
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    digest = hashlib.sha256(repr(sorted(result.outputs)).encode()).hexdigest()
    return {
        # ru_maxrss is KiB on Linux; the delta over the pre-job high-water
        # mark is what the job itself added.
        "peak_rss_delta_bytes": (rss_after - rss_before) * 1024,
        "digest": digest,
        "seconds": seconds,
        "shuffle_records": result.metrics.shuffle_records,
        "shuffle_bytes": result.metrics.shuffle_bytes,
        "bytes_spilled": result.metrics.bytes_spilled,
        "spill_runs": result.metrics.spill_runs,
    }


def _run_out_of_core_in_child(memory_budget_bytes: int | None) -> dict:
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(src), env.get("PYTHONPATH")) if part
    )
    proc = subprocess.run(
        [sys.executable, __file__, "--child", json.dumps(memory_budget_bytes)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def out_of_core_table() -> ResultTable:
    """Unbounded vs budgeted shuffle of a working set ~9x the budget."""
    assert 4 * MEMORY_BUDGET_BYTES <= WORKING_SET_BYTES
    table = ResultTable(
        title=(
            f"Out-of-core shuffle — {N_BATCHES} generated batches, "
            f"working set {WORKING_SET_BYTES / 2**20:.0f} MiB, "
            f"budget {MEMORY_BUDGET_BYTES / 2**20:.0f} MiB"
        ),
        columns=[
            "arm", "seconds", "peak_rss_delta_mib", "shuffle_mib",
            "spilled_mib", "spill_runs",
        ],
    )
    arms = {
        "unbounded": _run_out_of_core_in_child(None),
        "budgeted": _run_out_of_core_in_child(MEMORY_BUDGET_BYTES),
    }
    for arm, data in arms.items():
        table.add_row(
            arm=arm,
            seconds=data["seconds"],
            peak_rss_delta_mib=data["peak_rss_delta_bytes"] / 2**20,
            shuffle_mib=data["shuffle_bytes"] / 2**20,
            spilled_mib=data["bytes_spilled"] / 2**20,
            spill_runs=data["spill_runs"],
        )

    unbounded, budgeted = arms["unbounded"], arms["budgeted"]
    # Spilling must be exercised — and must not change a single byte.
    assert budgeted["digest"] == unbounded["digest"]
    assert budgeted["shuffle_records"] == unbounded["shuffle_records"]
    assert budgeted["shuffle_bytes"] == unbounded["shuffle_bytes"]
    assert budgeted["bytes_spilled"] > 0 and budgeted["spill_runs"] > 0
    assert unbounded["bytes_spilled"] == 0 and unbounded["spill_runs"] == 0

    # The unbounded arm must actually see the working set (measurement sanity).
    assert unbounded["peak_rss_delta_bytes"] >= 0.5 * WORKING_SET_BYTES
    # The budgeted peak is bounded by the budget plus one streamed reducer's
    # memmapped runs — not by the dataset.  1.5x headroom absorbs allocator
    # and page-cache noise.
    budgeted_target = MEMORY_BUDGET_BYTES + WORKING_SET_BYTES / NUM_REDUCERS
    assert budgeted["peak_rss_delta_bytes"] <= 1.5 * budgeted_target
    assert budgeted["peak_rss_delta_bytes"] <= 0.5 * unbounded["peak_rss_delta_bytes"]
    _assert_no_litter()
    return table


def bench_shuffle_out_of_core(benchmark, record_table):
    benchmark.extra_info.update(
        workload="out_of_core", kernel="columnar", backend="serial"
    )
    table = benchmark.pedantic(out_of_core_table, rounds=1, iterations=1)
    record_table("shuffle_out_of_core", table)
    by_arm = {row["arm"]: row for row in table.rows}
    # Measurement keys: ratio-compared like-for-like by check_regression.py
    # instead of gating the metadata-equality match.
    benchmark.extra_info.update(
        peak_rss_bytes=int(by_arm["budgeted"]["peak_rss_delta_mib"] * 2**20),
        bytes_spilled=int(by_arm["budgeted"]["spilled_mib"] * 2**20),
    )


# ------------------------------------------------------------- top-k parity
def _network_query():
    base = generate_network_collection(
        NetworkTraceConfig(num_sessions=TKIJ_SESSIONS), seed=13
    )
    collections = [
        IntervalCollection(f"{base.name}-{index + 1}", list(base.intervals))
        for index in range(3)
    ]
    return build_query(QUERY, collections, "P3", k=K)


def _run_tkij(query, backend, transfer=None, memory_budget_bytes=None, max_workers=2):
    cluster = ClusterConfig(
        num_reducers=NUM_REDUCERS,
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with TKIJ(
        num_granules=GRANULES,
        cluster=cluster,
        join_config=LocalJoinConfig(kernel="vector"),
    ) as tkij:
        return tkij.execute(query)


def topk_parity_table() -> ResultTable:
    """Budgeted top-k join must match the in-memory run byte for byte."""
    query = _network_query()
    table = ResultTable(
        title=(
            f"Budgeted top-k join — {QUERY} (P3), k={K}, g={GRANULES}, "
            f"budget {TKIJ_BUDGET_BYTES >> 10} KiB"
        ),
        columns=[
            "arm", "total_seconds", "join_seconds", "shuffle_mib",
            "spilled_mib", "spill_runs",
        ],
    )
    reports = {
        "unbounded": _run_tkij(query, "serial"),
        "budgeted": _run_tkij(query, "serial", memory_budget_bytes=TKIJ_BUDGET_BYTES),
    }
    for arm, report in reports.items():
        metrics = report.join_metrics
        table.add_row(
            arm=arm,
            total_seconds=report.total_seconds,
            join_seconds=report.phase_seconds["join"],
            shuffle_mib=metrics.shuffle_bytes / 2**20,
            spilled_mib=metrics.bytes_spilled / 2**20,
            spill_runs=metrics.spill_runs,
        )

    unbounded, budgeted = reports["unbounded"], reports["budgeted"]
    assert [(r.uids, r.score) for r in budgeted.results] == [
        (r.uids, r.score) for r in unbounded.results
    ]
    assert budgeted.join_metrics.shuffle_bytes == unbounded.join_metrics.shuffle_bytes
    assert budgeted.join_metrics.bytes_spilled > 0
    assert budgeted.join_metrics.spill_runs > 0
    _assert_no_litter()
    return table


def bench_shuffle_topk_parity(benchmark, record_table):
    benchmark.extra_info.update(
        workload="fig11-network", kernel="vector", backend="serial"
    )
    table = benchmark.pedantic(topk_parity_table, rounds=1, iterations=1)
    record_table("shuffle_topk_parity", table)
    by_arm = {row["arm"]: row for row in table.rows}
    benchmark.extra_info.update(
        bytes_spilled=int(by_arm["budgeted"]["spilled_mib"] * 2**20),
    )


# -------------------------------------------------------- transfer strategies
def transfer_table() -> ResultTable:
    """shm vs pickle on the process backend (serial inline as ground truth)."""
    query = _network_query()
    table = ResultTable(
        title=(
            f"Transfer strategies — {QUERY} (P3), k={K}, g={GRANULES}, "
            f"process backend, cores={_usable_cores()}"
        ),
        columns=[
            "backend", "transfer", "join_seconds", "total_seconds",
            "shuffle_mib", "shm_segments", "speedup_vs_pickle",
        ],
    )
    reports = {
        ("serial", "inline"): _run_tkij(query, "serial"),
        ("process", "pickle"): _run_tkij(query, "process", transfer="pickle"),
        ("process", "shm"): _run_tkij(query, "process", transfer="shm"),
    }
    reference = reports[("serial", "inline")]
    pickle_join = reports[("process", "pickle")].phase_seconds["join"]
    for (backend, transfer), report in reports.items():
        assert [(r.uids, r.score) for r in report.results] == [
            (r.uids, r.score) for r in reference.results
        ], f"{backend}/{transfer} results diverge from serial"
        assert (
            report.join_metrics.shuffle_bytes == reference.join_metrics.shuffle_bytes
        ), f"{backend}/{transfer} shuffle accounting diverges from serial"
        segments = report.join_metrics.shm_segments
        assert (segments > 0) == (transfer == "shm"), (transfer, segments)
        table.add_row(
            backend=backend,
            transfer=transfer,
            join_seconds=report.phase_seconds["join"],
            total_seconds=report.total_seconds,
            shuffle_mib=report.join_metrics.shuffle_bytes / 2**20,
            shm_segments=segments,
            speedup_vs_pickle=pickle_join / max(report.phase_seconds["join"], 1e-9),
        )
    _assert_no_litter()
    return table


def bench_shuffle_transfer(benchmark, record_table):
    benchmark.extra_info.update(
        workload="fig11-network", kernel="vector", backend="process"
    )
    table = benchmark.pedantic(transfer_table, rounds=1, iterations=1)
    record_table("shuffle_transfer", table)
    speedups = {
        row["transfer"]: row["speedup_vs_pickle"]
        for row in table.rows
        if row["backend"] == "process"
    }
    # Descriptor-sized pickles should beat payload-sized ones; the wall-clock
    # ratio is only enforced where the machine can show it (like the backend
    # speedup gate, single-core runners record the ratio without gating).
    if _usable_cores() > 1:
        assert speedups["shm"] > 1.0, speedups
    # Even a single-core run must keep the shm overhead bounded.
    assert speedups["shm"] > 0.5, speedups


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        print(json.dumps(_run_out_of_core(json.loads(sys.argv[2]))))
    else:  # pragma: no cover - manual invocation guard
        sys.exit("usage: bench_shuffle.py --child <memory-budget-json>")
