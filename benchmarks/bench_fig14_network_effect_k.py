"""Figure 14 — effect of k on the (simulated) network trace.

Paper setting: |Ci| = 1.03e6 connections, g = 40, P3, k in [10, 1e5].  Expected
shape: running time is nearly flat for small-to-moderate k and increases slowly for
very large k as more intermediate results must be materialised before termination.
"""

from repro.datagen import NetworkTraceConfig
from repro.experiments import figure14_network_effect_k

CONFIG = NetworkTraceConfig(num_sessions=1_000)
KS = (10, 100, 1_000)
QUERIES = ("Qb,b", "Qo,m", "QjB,jB")
GRANULES = 10


def bench_figure14(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure14_network_effect_k(
            ks=KS, queries=QUERIES, num_granules=GRANULES, config=CONFIG
        ),
        rounds=1,
        iterations=1,
    )
    record_table("fig14_network_effect_k", table)

    # Moderate k values should not blow up the running time (near-flat curve).
    for query in QUERIES:
        times = {row["k"]: row["total_seconds"] for row in table.rows if row["query"] == query}
        assert times[100] <= times[10] * 5 + 0.5
