"""Figure 8 — workload distribution: DTB against the LPT baseline.

Paper setting: |Ci| in [1M, 1.6M], g = 20, k = 1000, parameters P2, loose strategy.
Expected shape: identical times on Qb,b (a single bucket combination); on the other
queries DTB shuffles less data than LPT and keeps the slowest reducer shorter,
and the minimum k-th-result score across reducers is at least as high with DTB.
"""

from repro.experiments import figure8_workload_distribution

SIZES = (300, 500)
QUERIES = ("Qb,b", "Qo,o", "Qf,f", "Qs,s", "Qs,f,m")
K = 100
GRANULES = 12


def bench_figure8(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure8_workload_distribution(
            sizes=SIZES, queries=QUERIES, k=K, num_granules=GRANULES
        ),
        rounds=1,
        iterations=1,
    )
    record_table("fig08_workload_distribution", table)

    # Shuffle cost (the paper reports LPT shuffling ~43% more on average): compare
    # the aggregate shuffle volume of the two assignment policies.
    shuffle = {"DTB": 0.0, "LPT": 0.0}
    for row in table.rows:
        shuffle[row["assigner"]] += row["shuffle_records"]
    assert shuffle["DTB"] <= shuffle["LPT"]
