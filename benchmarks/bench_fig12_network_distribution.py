"""Figure 12 — distribution of the (simulated) network-trace connections.

Paper data: 3.6M connections built from one day of firewall logs; start points are
skewed and lengths are heavily right-tailed (min 1 s, avg 54 s, max 86 459 s).  The
simulated trace must show the same qualitative marginals.
"""

import numpy as np

from repro.datagen import NetworkTraceConfig, generate_network_collection
from repro.experiments import figure12_network_distribution

CONFIG = NetworkTraceConfig(num_sessions=4_000)


def bench_figure12(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure12_network_distribution(CONFIG, seed=13),
        rounds=1,
        iterations=1,
    )
    record_table("fig12_network_distribution", table)

    collection = generate_network_collection(CONFIG, seed=13)
    lengths = collection.ends - collection.starts
    # Heavy right tail: the longest connection dwarfs the average, and the bulk of
    # connections sit in the shortest length decile (Figure 12b is log-scale).
    assert lengths.max() > 10 * lengths.mean()
    assert np.percentile(lengths, 75) < lengths.mean() * 2
    # Start points are skewed: the busiest decile holds more than a uniform share.
    histogram, _ = np.histogram(collection.starts, bins=10)
    assert histogram.max() > 1.3 * len(collection) / 10
