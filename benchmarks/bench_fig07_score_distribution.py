"""Figure 7 — score distribution of scored Allen predicates on synthetic data.

Paper setting: |Ci| = 1e4, parameters P1, all |C1| x |C2| pairs scored, the score of
the top-50 000 results plotted per predicate.  Expected shape: s-before has by far
the most high-scoring results, then s-overlaps, then s-meets, then s-starts.
"""

from repro.experiments import figure7_score_distribution

SIZE = 600
RANKS = (1, 10, 100, 1_000, 10_000, 50_000)


def bench_figure7(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure7_score_distribution(size=SIZE, ranks=RANKS),
        rounds=1,
        iterations=1,
    )
    record_table("fig07_score_distribution", table)

    perfect = dict(zip(table.column("predicate"), table.column("perfect_scores")))
    # The ordering of high-scoring result counts reported in the paper.
    assert perfect["s-before"] > perfect["s-overlaps"]
    assert perfect["s-overlaps"] >= perfect["s-meets"]
    assert perfect["s-meets"] >= perfect["s-starts"]
