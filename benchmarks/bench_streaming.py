"""Streaming evaluation — incremental maintenance vs. per-batch full recompute.

Replays a 10-batch append-only workload through ``tkij-streaming`` and, after
every batch, re-evaluates the accumulated snapshot with the static ``tkij``
algorithm.  The recorded table is the per-batch series (latency, candidate and
pruned bucket-pair counts, join work, speedup, parity); the assertions are the
streaming layer's contract:

* every batch's incremental answer is equivalent to full recomputation;
* the candidate pruning actually fires (pruned bucket pairs > 0);
* the incremental evaluation does strictly less join work (tuples scored)
  than recomputing from scratch on every batch.
"""

from __future__ import annotations

from repro.experiments import ResultTable, figure_streaming

NUM_BATCHES = 10
BATCH_SIZE = 30
QUERY = "Qo,m"
K = 20
GRANULES = 8


def streaming_table(
    num_batches: int = NUM_BATCHES,
    batch_size: int = BATCH_SIZE,
    query_name: str = QUERY,
    k: int = K,
    num_granules: int = GRANULES,
) -> ResultTable:
    """The per-batch incremental-vs-full series of one streamed workload."""
    return figure_streaming(
        batch_counts=(num_batches,),
        batch_sizes=(batch_size,),
        query_name=query_name,
        k=k,
        num_granules=num_granules,
        compare_full=True,
    )


def bench_streaming_incremental(benchmark, record_table):
    benchmark.extra_info.update(workload="streaming", kernel="scalar", backend="serial")
    table = benchmark.pedantic(streaming_table, rounds=1, iterations=1)
    record_table("streaming_incremental", table)

    assert len(table.rows) == NUM_BATCHES
    # Parity: every batch's incremental top-k is equivalent to full recompute.
    assert all(row["matches_full"] for row in table.rows), [
        row["batch"] for row in table.rows if not row["matches_full"]
    ]
    # The candidate pruning must fire on the incremental batches.
    pruned_pairs = sum(row["pruned_pairs"] for row in table.rows)
    assert pruned_pairs > 0
    # Strictly less join work than recomputing from scratch on every batch.
    incremental_work = sum(row["tuples_scored"] for row in table.rows)
    full_work = sum(row["full_tuples_scored"] for row in table.rows)
    assert incremental_work < full_work, (incremental_work, full_work)
