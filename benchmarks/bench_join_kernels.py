"""Scalar vs vector join kernel — Figure 7 and streaming workloads.

Two workloads exercise the columnar kernel where it matters:

* the **Figure 7 workload** (one scored Allen predicate over two collections,
  the paper's score-distribution setting) is the large-bucket regime the
  vector kernel was built for: the local join binds the second vertex by
  scoring whole candidate batches, so the interpreted per-tuple loop is
  replaced by a handful of numpy kernels per bucket combination.  The
  benchmark asserts the kernel-level speedup (>= 3x single-core) together
  with the parity contract: tie-aware-identical top-k and exactly matching
  work counters across kernels and backends;
* the **streaming workload** (the bench_streaming batch series) replays the
  same append-only stream under both kernels and asserts per-batch parity —
  the vector kernel must prune and score exactly like the scalar one when
  seeded with the persistent k-th score.

Results land in the recorded tables; the pytest-benchmark JSON additionally
carries ``extra_info`` metadata (workload/kernel/backend) so the regression
gate compares like-for-like.
"""

from __future__ import annotations

import time

from repro.core import (
    TKIJ,
    CombinationSpace,
    LocalJoinConfig,
    LocalTopKJoin,
    TopBucketsSelector,
    collect_statistics,
)
from repro.datagen.synthetic import SyntheticConfig, generate_collections
from repro.experiments import PARAMETERS, ResultTable, figure_streaming
from repro.mapreduce import ClusterConfig
from repro.query.graph import QueryEdge, RTJQuery
from repro.streaming.parity import equivalent_top_k
from repro.temporal.predicates import predicate_by_name

# Figure 7 setting scaled to laptop size: one scored predicate, two
# collections, P1 parameters, |Ci| = 1500 over a [0, 10*|Ci|] range.
FIG7_SIZE = 1_500
FIG7_PREDICATE = "before"
FIG7_GRANULES = 6
FIG7_K = 100
MIN_SPEEDUP = 3.0
ROUNDS = 3

STREAM_BATCHES = 8
STREAM_BATCH_SIZE = 30
STREAM_QUERY = "Qo,m"
STREAM_K = 20
STREAM_GRANULES = 8


def _fig7_workload():
    """The Figure 7 query with its selected combinations and bucket contents."""
    left, right = generate_collections(
        2, SyntheticConfig(size=FIG7_SIZE, start_max=10.0 * FIG7_SIZE), seed=7
    ).values()
    predicate = predicate_by_name(
        FIG7_PREDICATE, PARAMETERS["P1"], avg_length=left.average_length()
    )
    query = RTJQuery(
        vertices=("x1", "x2"),
        collections={"x1": left, "x2": right},
        edges=(QueryEdge("x1", "x2", predicate),),
        k=FIG7_K,
        name="fig7-kernel",
    )
    statistics = collect_statistics(
        {left.name: left, right.name: right}, num_granules=FIG7_GRANULES
    )
    space = CombinationSpace(query, statistics)
    selected = TopBucketsSelector(strategy="loose").run(query, statistics, space).selected
    intervals = {}
    for vertex in query.vertices:
        matrix = statistics.matrix(query.collections[vertex].name)
        for interval in query.collections[vertex]:
            key = (vertex, matrix.granularity.bucket_of(interval))
            intervals.setdefault(key, []).append(interval)
    return query, selected, intervals


def _time_kernel(query, selected, intervals, kernel: str):
    """Best-of-ROUNDS wall clock of one LocalTopKJoin execution."""
    best = float("inf")
    results = stats = None
    for _ in range(ROUNDS):
        join = LocalTopKJoin(query, LocalJoinConfig(kernel=kernel))
        started = time.perf_counter()
        results, stats = join.run(selected, intervals)
        best = min(best, time.perf_counter() - started)
    return best, results, stats


def kernel_fig7_table() -> ResultTable:
    """Kernel-level comparison plus the cross-backend counter matrix."""
    query, selected, intervals = _fig7_workload()
    table = ResultTable(
        title=(
            f"Join kernels — Figure 7 workload (s-{FIG7_PREDICATE}, "
            f"|Ci|={FIG7_SIZE}, g={FIG7_GRANULES}, k={FIG7_K})"
        ),
        columns=[
            "kernel", "backend", "join_seconds", "speedup",
            "tuples_scored", "candidates_examined", "matches_scalar",
        ],
    )
    timed = {
        kernel: _time_kernel(query, selected, intervals, kernel)
        for kernel in ("scalar", "vector")
    }
    scalar_seconds = timed["scalar"][0]
    for kernel, (seconds, results, stats) in timed.items():
        table.add_row(
            kernel=kernel,
            backend="(local)",
            join_seconds=seconds,
            speedup=scalar_seconds / max(seconds, 1e-9),
            tuples_scored=stats.tuples_scored,
            candidates_examined=stats.candidates_examined,
            matches_scalar=equivalent_top_k(timed["scalar"][1], results),
        )
    # The same workload through the full pipeline on every backend: within the
    # distributed topology, every (kernel, backend) cell must do identical work.
    for backend in ("serial", "thread", "process"):
        for kernel in ("scalar", "vector"):
            cluster = ClusterConfig(num_reducers=4, backend=backend, max_workers=2)
            with TKIJ(
                num_granules=FIG7_GRANULES,
                cluster=cluster,
                join_config=LocalJoinConfig(kernel=kernel),
            ) as evaluator:
                report = evaluator.execute(query)
            table.add_row(
                kernel=kernel,
                backend=backend,
                join_seconds=report.phase_seconds["join"],
                speedup=float("nan"),
                tuples_scored=report.local_join_stats.tuples_scored,
                candidates_examined=report.local_join_stats.candidates_examined,
                matches_scalar=equivalent_top_k(timed["scalar"][1], report.results),
            )
    return table


def bench_join_kernels_fig7(benchmark, record_table):
    benchmark.extra_info.update(
        workload="fig7", kernel="scalar+vector", backend="serial"
    )
    table = benchmark.pedantic(kernel_fig7_table, rounds=1, iterations=1)
    record_table("kernels_fig7", table)

    local = [row for row in table.rows if row["backend"] == "(local)"]
    distributed = [row for row in table.rows if row["backend"] != "(local)"]
    # Parity: every cell returns the tie-aware-identical top-k, and the work
    # counters match exactly across kernels and backends (within each
    # execution topology — one local join vs. the 4-reducer pipeline).
    assert all(row["matches_scalar"] for row in table.rows)
    assert len({row["tuples_scored"] for row in local}) == 1
    assert len({row["candidates_examined"] for row in local}) == 1
    assert len({row["tuples_scored"] for row in distributed}) == 1
    assert len({row["candidates_examined"] for row in distributed}) == 1
    # Perf: the vector kernel must beat the scalar one >= 3x on one core.
    by_kernel = {row["kernel"]: row for row in local}
    assert by_kernel["vector"]["speedup"] >= MIN_SPEEDUP, by_kernel["vector"]["speedup"]


def kernel_streaming_tables() -> dict[str, ResultTable]:
    """The bench_streaming batch series replayed under both kernels."""
    return {
        kernel: figure_streaming(
            batch_counts=(STREAM_BATCHES,),
            batch_sizes=(STREAM_BATCH_SIZE,),
            query_name=STREAM_QUERY,
            k=STREAM_K,
            num_granules=STREAM_GRANULES,
            kernel=kernel,
            compare_full=True,
        )
        for kernel in ("scalar", "vector")
    }


def bench_join_kernels_streaming(benchmark, record_table):
    benchmark.extra_info.update(
        workload="streaming", kernel="scalar+vector", backend="serial"
    )
    tables = benchmark.pedantic(kernel_streaming_tables, rounds=1, iterations=1)
    record_table("kernels_streaming_scalar", tables["scalar"])
    record_table("kernels_streaming_vector", tables["vector"])

    scalar_rows, vector_rows = tables["scalar"].rows, tables["vector"].rows
    assert len(scalar_rows) == len(vector_rows) == STREAM_BATCHES
    for scalar_row, vector_row in zip(scalar_rows, vector_rows):
        # Each batch's incremental answer matches full recomputation under
        # both kernels, and the kernels do identical join work per batch.
        assert scalar_row["matches_full"] and vector_row["matches_full"]
        assert scalar_row["tuples_scored"] == vector_row["tuples_scored"], (
            scalar_row["batch"], scalar_row["tuples_scored"], vector_row["tuples_scored"],
        )
