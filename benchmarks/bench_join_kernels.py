"""Scalar vs vector vs sweep join kernels — Figure 7, sweep and streaming workloads.

Three workloads exercise the columnar kernels where they matter:

* the **Figure 7 workload** (one scored Allen predicate over two collections,
  the paper's score-distribution setting) is the large-bucket regime the
  vector kernel was built for: the local join binds the second vertex by
  scoring whole candidate batches, so the interpreted per-tuple loop is
  replaced by a handful of numpy kernels per bucket combination.  The
  benchmark asserts the kernel-level speedup (>= 2.5x single-core) together
  with the parity contract: tie-aware-identical top-k and exactly matching
  work counters across kernels and backends;
* the **sweep workload** (one equality-shaped Allen predicate over two large
  coarsely-bucketed collections, small k) is the large-bucket selective-
  threshold regime the sweep kernel was built for: threshold boxes pin an
  endpoint into a narrow range of a huge bucket, so resolving candidates via
  ``searchsorted`` windows on endpoint-sorted views beats the vector kernel's
  full-bucket ``box_mask`` scans.  The deterministic parity/planner arm
  (``sweep_parity``, a blocking CI gate) asserts the three-kernel parity
  matrix plus the AutoPlanner contract (sweep chosen with a recorded reason,
  explicit kernel always winning); the wall-clock arm asserts the >= 1.5x
  single-core speedup over vector (advisory in CI, like every ratio gate);
* the **streaming workload** (the bench_streaming batch series) replays the
  same append-only stream under both columnar kernels and asserts per-batch
  parity — each must prune and score exactly like the scalar one when seeded
  with the persistent k-th score.

Results land in the recorded tables; the pytest-benchmark JSON additionally
carries ``extra_info`` metadata (workload/kernel/backend) so the regression
gate compares like-for-like.
"""

from __future__ import annotations

import time

from repro.core import (
    KERNELS,
    TKIJ,
    CombinationSpace,
    LocalJoinConfig,
    LocalTopKJoin,
    TopBucketsSelector,
    collect_statistics,
)
from repro.datagen.synthetic import SyntheticConfig, generate_collections
from repro.experiments import PARAMETERS, ResultTable, figure_streaming
from repro.mapreduce import ClusterConfig
from repro.plan import ExecutionContext, get_algorithm
from repro.query.graph import QueryEdge, RTJQuery
from repro.streaming.parity import equivalent_top_k
from repro.temporal.predicates import predicate_by_name

# Figure 7 setting scaled to laptop size: one scored predicate, two
# collections, P1 parameters, |Ci| = 1500 over a [0, 10*|Ci|] range.
FIG7_SIZE = 1_500
FIG7_PREDICATE = "before"
FIG7_GRANULES = 6
FIG7_K = 100
# Was 3.0 against the original scalar kernel; hoisting the per-candidate
# score-vector copies out of the scalar extension loop made the baseline
# ~16% faster (0.089s -> 0.075s on this workload), which lowers the
# attainable ratio to ~3.1x on an idle core.
MIN_SPEEDUP = 2.5
ROUNDS = 3

# Sweep-kernel setting: an equality-shaped predicate whose threshold boxes pin
# y's endpoints into narrow ranges, over two coarsely-bucketed collections.
# The parity arm keeps the scalar kernel feasible; the speedup arm scales the
# same shape until full-bucket box_mask scans dominate the vector kernel.
SWEEP_PREDICATE = "equals"
SWEEP_PARITY_SIZE = 4_000
SWEEP_PARITY_GRANULES = 4
SWEEP_PARITY_K = 10
SWEEP_SIZE = 60_000
SWEEP_GRANULES = 2
SWEEP_K = 5
SWEEP_MIN_SPEEDUP = 1.5
SWEEP_ROUNDS = 2

STREAM_BATCHES = 8
STREAM_BATCH_SIZE = 30
STREAM_QUERY = "Qo,m"
STREAM_K = 20
STREAM_GRANULES = 8


def _bucketed_workload(predicate_name, size, granules, k, name, seed):
    """A binary query with its selected combinations and bucket contents."""
    left, right = generate_collections(
        2, SyntheticConfig(size=size, start_max=10.0 * size), seed=seed
    ).values()
    predicate = predicate_by_name(
        predicate_name, PARAMETERS["P1"], avg_length=left.average_length()
    )
    query = RTJQuery(
        vertices=("x1", "x2"),
        collections={"x1": left, "x2": right},
        edges=(QueryEdge("x1", "x2", predicate),),
        k=k,
        name=name,
    )
    statistics = collect_statistics(
        {left.name: left, right.name: right}, num_granules=granules
    )
    space = CombinationSpace(query, statistics)
    selected = TopBucketsSelector(strategy="loose").run(query, statistics, space).selected
    intervals = {}
    for vertex in query.vertices:
        matrix = statistics.matrix(query.collections[vertex].name)
        for interval in query.collections[vertex]:
            key = (vertex, matrix.granularity.bucket_of(interval))
            intervals.setdefault(key, []).append(interval)
    return query, selected, intervals


def _fig7_workload():
    """The Figure 7 query with its selected combinations and bucket contents."""
    return _bucketed_workload(
        FIG7_PREDICATE, FIG7_SIZE, FIG7_GRANULES, FIG7_K, "fig7-kernel", seed=7
    )


def _time_kernel(query, selected, intervals, kernel: str, rounds: int = ROUNDS):
    """Best-of-``rounds`` wall clock of one LocalTopKJoin execution."""
    best = float("inf")
    results = stats = None
    for _ in range(rounds):
        join = LocalTopKJoin(query, LocalJoinConfig(kernel=kernel))
        started = time.perf_counter()
        results, stats = join.run(selected, intervals)
        best = min(best, time.perf_counter() - started)
    return best, results, stats


def kernel_fig7_table() -> ResultTable:
    """Kernel-level comparison plus the cross-backend counter matrix."""
    query, selected, intervals = _fig7_workload()
    table = ResultTable(
        title=(
            f"Join kernels — Figure 7 workload (s-{FIG7_PREDICATE}, "
            f"|Ci|={FIG7_SIZE}, g={FIG7_GRANULES}, k={FIG7_K})"
        ),
        columns=[
            "kernel", "backend", "join_seconds", "speedup",
            "tuples_scored", "candidates_examined", "matches_scalar",
        ],
    )
    timed = {
        kernel: _time_kernel(query, selected, intervals, kernel)
        for kernel in ("scalar", "vector")
    }
    scalar_seconds = timed["scalar"][0]
    for kernel, (seconds, results, stats) in timed.items():
        table.add_row(
            kernel=kernel,
            backend="(local)",
            join_seconds=seconds,
            speedup=scalar_seconds / max(seconds, 1e-9),
            tuples_scored=stats.tuples_scored,
            candidates_examined=stats.candidates_examined,
            matches_scalar=equivalent_top_k(timed["scalar"][1], results),
        )
    # The same workload through the full pipeline on every backend: within the
    # distributed topology, every (kernel, backend) cell must do identical work.
    for backend in ("serial", "thread", "process"):
        for kernel in ("scalar", "vector"):
            cluster = ClusterConfig(num_reducers=4, backend=backend, max_workers=2)
            with TKIJ(
                num_granules=FIG7_GRANULES,
                cluster=cluster,
                join_config=LocalJoinConfig(kernel=kernel),
            ) as evaluator:
                report = evaluator.execute(query)
            table.add_row(
                kernel=kernel,
                backend=backend,
                join_seconds=report.phase_seconds["join"],
                speedup=float("nan"),
                tuples_scored=report.local_join_stats.tuples_scored,
                candidates_examined=report.local_join_stats.candidates_examined,
                matches_scalar=equivalent_top_k(timed["scalar"][1], report.results),
            )
    return table


def bench_join_kernels_fig7(benchmark, record_table):
    benchmark.extra_info.update(
        workload="fig7", kernel="scalar+vector", backend="serial"
    )
    table = benchmark.pedantic(kernel_fig7_table, rounds=1, iterations=1)
    record_table("kernels_fig7", table)

    local = [row for row in table.rows if row["backend"] == "(local)"]
    distributed = [row for row in table.rows if row["backend"] != "(local)"]
    # Parity: every cell returns the tie-aware-identical top-k, and the work
    # counters match exactly across kernels and backends (within each
    # execution topology — one local join vs. the 4-reducer pipeline).
    assert all(row["matches_scalar"] for row in table.rows)
    assert len({row["tuples_scored"] for row in local}) == 1
    assert len({row["candidates_examined"] for row in local}) == 1
    assert len({row["tuples_scored"] for row in distributed}) == 1
    assert len({row["candidates_examined"] for row in distributed}) == 1
    # Perf: the vector kernel must beat the scalar one >= 2.5x on one core.
    by_kernel = {row["kernel"]: row for row in local}
    assert by_kernel["vector"]["speedup"] >= MIN_SPEEDUP, by_kernel["vector"]["speedup"]


def sweep_parity_table() -> ResultTable:
    """Three-kernel matrix on the sweep workload, plus the planner contract."""
    query, selected, intervals = _bucketed_workload(
        SWEEP_PREDICATE,
        SWEEP_PARITY_SIZE,
        SWEEP_PARITY_GRANULES,
        SWEEP_PARITY_K,
        "sweep-parity",
        seed=11,
    )
    table = ResultTable(
        title=(
            f"Sweep kernel parity — s-{SWEEP_PREDICATE}, |Ci|={SWEEP_PARITY_SIZE}, "
            f"g={SWEEP_PARITY_GRANULES}, k={SWEEP_PARITY_K}"
        ),
        columns=[
            "kernel", "join_seconds", "tuples_scored", "candidates_examined",
            "combinations_processed", "matches_scalar",
        ],
    )
    timed = {
        kernel: _time_kernel(query, selected, intervals, kernel, rounds=1)
        for kernel in KERNELS
    }
    for kernel, (seconds, results, stats) in timed.items():
        table.add_row(
            kernel=kernel,
            join_seconds=seconds,
            tuples_scored=stats.tuples_scored,
            candidates_examined=stats.candidates_examined,
            combinations_processed=stats.combinations_processed,
            matches_scalar=equivalent_top_k(timed["scalar"][1], results),
        )
    return table


def bench_join_kernels_sweep_parity(benchmark, record_table):
    """Blocking CI gate: deterministic sweep parity + AutoPlanner contract."""
    benchmark.extra_info.update(
        workload="sweep_parity", kernel="scalar+vector+sweep", backend="serial"
    )
    table = benchmark.pedantic(sweep_parity_table, rounds=1, iterations=1)
    record_table("kernels_sweep_parity", table)

    # Parity: tie-aware-identical top-k and exactly matching work counters
    # across all three kernels (the contract tests/test_local_join.py enforces
    # on tiny inputs, re-checked here at benchmark scale).
    assert all(row["matches_scalar"] for row in table.rows)
    for counter in ("tuples_scored", "candidates_examined", "combinations_processed"):
        assert len({row[counter] for row in table.rows}) == 1, counter

    # Planner contract on the large sweep workload: auto mode picks the sweep
    # kernel for a recorded reason, and an explicit kernel always wins.
    left, right = generate_collections(
        2, SyntheticConfig(size=SWEEP_SIZE, start_max=10.0 * SWEEP_SIZE), seed=11
    ).values()
    predicate = predicate_by_name(
        SWEEP_PREDICATE, PARAMETERS["P1"], avg_length=left.average_length()
    )
    query = RTJQuery(
        vertices=("x1", "x2"),
        collections={"x1": left, "x2": right},
        edges=(QueryEdge("x1", "x2", predicate),),
        k=SWEEP_K,
        name="sweep-planner",
    )
    algorithm = get_algorithm("tkij")
    with ExecutionContext() as context:
        auto = algorithm.plan(query, context, mode="auto")
        assert auto.explanation.kernel == "sweep"
        assert any("kernel=sweep" in reason for reason in auto.explanation.reasons)
        forced = algorithm.plan(query, context, mode="auto", kernel="scalar")
        assert forced.explanation.kernel == "scalar"
        assert forced.knobs["kernel"] == "scalar"


def kernel_sweep_speedup_table() -> ResultTable:
    """Sweep vs vector wall clock on the large-bucket selective workload."""
    query, selected, intervals = _bucketed_workload(
        SWEEP_PREDICATE, SWEEP_SIZE, SWEEP_GRANULES, SWEEP_K, "sweep-kernel", seed=11
    )
    table = ResultTable(
        title=(
            f"Sweep kernel speedup — s-{SWEEP_PREDICATE}, |Ci|={SWEEP_SIZE}, "
            f"g={SWEEP_GRANULES}, k={SWEEP_K}"
        ),
        columns=[
            "kernel", "join_seconds", "speedup_vs_vector",
            "tuples_scored", "candidates_examined", "matches_vector",
        ],
    )
    timed = {
        kernel: _time_kernel(
            query, selected, intervals, kernel, rounds=SWEEP_ROUNDS
        )
        for kernel in ("vector", "sweep")
    }
    vector_seconds = timed["vector"][0]
    for kernel, (seconds, results, stats) in timed.items():
        table.add_row(
            kernel=kernel,
            join_seconds=seconds,
            speedup_vs_vector=vector_seconds / max(seconds, 1e-9),
            tuples_scored=stats.tuples_scored,
            candidates_examined=stats.candidates_examined,
            matches_vector=equivalent_top_k(timed["vector"][1], results),
        )
    return table


def bench_join_kernels_sweep_speedup(benchmark, record_table):
    """Advisory wall-clock gate: sweep >= 1.5x over vector on its home workload."""
    benchmark.extra_info.update(
        workload="sweep_speedup", kernel="vector+sweep", backend="serial"
    )
    table = benchmark.pedantic(kernel_sweep_speedup_table, rounds=1, iterations=1)
    record_table("kernels_sweep_speedup", table)

    assert all(row["matches_vector"] for row in table.rows)
    assert len({row["tuples_scored"] for row in table.rows}) == 1
    by_kernel = {row["kernel"]: row for row in table.rows}
    speedup = by_kernel["sweep"]["speedup_vs_vector"]
    assert speedup >= SWEEP_MIN_SPEEDUP, speedup


def kernel_streaming_tables() -> dict[str, ResultTable]:
    """The bench_streaming batch series replayed under every kernel."""
    return {
        kernel: figure_streaming(
            batch_counts=(STREAM_BATCHES,),
            batch_sizes=(STREAM_BATCH_SIZE,),
            query_name=STREAM_QUERY,
            k=STREAM_K,
            num_granules=STREAM_GRANULES,
            kernel=kernel,
            compare_full=True,
        )
        for kernel in KERNELS
    }


def bench_join_kernels_streaming(benchmark, record_table):
    benchmark.extra_info.update(
        workload="streaming", kernel="scalar+vector+sweep", backend="serial"
    )
    tables = benchmark.pedantic(kernel_streaming_tables, rounds=1, iterations=1)
    for kernel in KERNELS:
        record_table(f"kernels_streaming_{kernel}", tables[kernel])

    scalar_rows = tables["scalar"].rows
    assert len(scalar_rows) == STREAM_BATCHES
    for kernel in ("vector", "sweep"):
        kernel_rows = tables[kernel].rows
        assert len(kernel_rows) == STREAM_BATCHES
        for scalar_row, kernel_row in zip(scalar_rows, kernel_rows):
            # Each batch's incremental answer matches full recomputation under
            # every kernel, and the kernels do identical join work per batch.
            assert scalar_row["matches_full"] and kernel_row["matches_full"]
            assert scalar_row["tuples_scored"] == kernel_row["tuples_scored"], (
                kernel, scalar_row["batch"],
                scalar_row["tuples_scored"], kernel_row["tuples_scored"],
            )
