#!/usr/bin/env python
"""Fail CI when a benchmark regresses past a threshold vs. a committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json \
        [--baseline benchmarks/baseline/BENCH_baseline.json] [--threshold 2.0]

Both files are ``pytest-benchmark --benchmark-json`` outputs.  Benchmarks are
matched by ``fullname``; a benchmark whose mean time exceeds ``threshold``
times its baseline mean fails the check.  Benchmarks present on only one side
are reported but never fail (new benchmarks have no baseline yet; deleted ones
no longer matter).  A missing baseline file skips the check entirely (exit 0)
so the job stays green until a baseline is committed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline" / "BENCH_baseline.json"


def load_means(path: Path) -> dict[str, float]:
    """Map benchmark fullname -> mean seconds from a pytest-benchmark JSON."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="benchmark JSON of this run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean > threshold * baseline mean (default: 2.0)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0
    if not args.current.exists():
        print(f"error: current benchmark JSON {args.current} not found")
        return 2

    baseline = load_means(args.baseline)
    current = load_means(args.current)

    failures = []
    for fullname, mean in sorted(current.items()):
        reference = baseline.get(fullname)
        if reference is None:
            print(f"NEW      {fullname}: {mean:.4f}s (no baseline)")
            continue
        ratio = mean / reference if reference > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{status:8} {fullname}: {mean:.4f}s vs baseline {reference:.4f}s "
            f"({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append((fullname, ratio))
    for fullname in sorted(set(baseline) - set(current)):
        print(f"MISSING  {fullname}: present in baseline only")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed past "
            f"{args.threshold:.1f}x the baseline"
        )
        return 1
    print("\nno benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
