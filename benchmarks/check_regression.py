#!/usr/bin/env python
"""Fail CI when a benchmark regresses past a threshold vs. a committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json [MORE.json ...] \
        [--baseline benchmarks/baseline/BENCH_baseline.json] [--threshold 2.0]

All files are ``pytest-benchmark --benchmark-json`` outputs; several current
files may be passed (e.g. the streaming and kernel jobs) and are merged.
Benchmarks are matched by ``fullname`` and compared **like for like**: each
benchmark's ``extra_info`` *configuration* metadata (kernel, backend,
workload, ...) must equal the baseline's, otherwise the pair measures
different configurations and is reported but not compared.  The
``extra_info`` keys named in :data:`MEASUREMENT_KEYS` (peak RSS, spilled
bytes) are measurements, not configuration: they never gate the metadata
match and are instead ratio-compared against the baseline's values exactly
like the mean time.  A benchmark whose mean time — or any shared measurement
key — exceeds ``threshold`` times its baseline fails the check.  Benchmarks present on
only one side are reported but never fail (new benchmarks have no baseline
yet; deleted ones no longer matter).  A missing baseline file skips the check
entirely (exit 0) so the job stays green until a baseline is committed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baseline" / "BENCH_baseline.json"

MEASUREMENT_KEYS = (
    "peak_rss_bytes",
    "bytes_spilled",
    "p50_latency_seconds",
    "p99_latency_seconds",
    "rejected",
    "recovery_p50_seconds",
    "recovery_p99_seconds",
    "respawns",
    "chaos_drops",
    "chaos_truncates",
    "lost_responses",
    "incorrect_responses",
    "plan_cold_seconds",
    "plan_warm_seconds",
)
"""``extra_info`` keys that carry measured quantities, not configuration.

They are excluded from the like-for-like metadata match and ratio-compared
against the baseline like the mean time (bench_shuffle.py records the memory
keys, bench_serving.py the latency/rejection ones, bench_chaos.py the
recovery-latency/respawn/injury counts — its hard zeroes, lost and incorrect
responses, are asserted inside the benchmark itself and recorded here so a
baseline of 0 stays visible — and bench_planner_feedback.py the cold/warm
auto-plan latencies).
"""

INVERSE_MEASUREMENT_KEYS = ("qps", "statistics_cache_hits", "plan_cache_speedup")
"""Measured quantities where **bigger is better** (bench_serving.py).

Compared in the opposite direction: the check fails when the current value
drops below ``baseline / threshold``.
"""

Entry = tuple[float, dict]


def split_meta(meta: dict) -> tuple[dict, dict, dict]:
    """Split ``extra_info`` into (configuration, measurements, inverse measurements)."""
    measured = set(MEASUREMENT_KEYS) | set(INVERSE_MEASUREMENT_KEYS)
    config = {key: value for key, value in meta.items() if key not in measured}
    measures = {key: meta[key] for key in MEASUREMENT_KEYS if key in meta}
    inverse = {key: meta[key] for key in INVERSE_MEASUREMENT_KEYS if key in meta}
    return config, measures, inverse


def load_entries(path: Path) -> dict[str, Entry]:
    """Map benchmark fullname -> (mean seconds, extra_info) from one JSON."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: (
            float(bench["stats"]["mean"]),
            bench.get("extra_info") or {},
        )
        for bench in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", type=Path, nargs="+", help="benchmark JSON file(s) of this run"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current mean > threshold * baseline mean (default: 2.0)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0
    current: dict[str, Entry] = {}
    loaded = 0
    for path in args.current:
        if not path.exists():
            # Advisory benchmark steps may fail before writing their JSON; a
            # missing file must not turn their failure into a blocking one.
            print(f"warning: current benchmark JSON {path} not found; skipping it")
            continue
        current.update(load_entries(path))
        loaded += 1
    if loaded == 0:
        print("error: none of the current benchmark JSON files exist")
        return 2

    baseline = load_entries(args.baseline)

    failures = []
    for fullname, (mean, meta) in sorted(current.items()):
        reference = baseline.get(fullname)
        if reference is None:
            print(f"NEW      {fullname}: {mean:.4f}s (no baseline)")
            continue
        reference_mean, reference_meta = reference
        config, measures, inverse = split_meta(meta)
        reference_config, reference_measures, reference_inverse = split_meta(reference_meta)
        if config != reference_config:
            # Different kernel/backend/workload: not the same experiment, so a
            # time comparison would be meaningless. Reported, never failed.
            print(
                f"META     {fullname}: metadata changed "
                f"({reference_config!r} -> {config!r}); skipping comparison"
            )
            continue
        ratio = mean / reference_mean if reference_mean > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{status:8} {fullname}: {mean:.4f}s vs baseline {reference_mean:.4f}s "
            f"({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append((fullname, ratio))
        for key in sorted(measures.keys() & reference_measures.keys()):
            reference_value = float(reference_measures[key])
            value = float(measures[key])
            if reference_value <= 0:
                # A baseline that never spilled (or recorded 0) has no scale
                # to compare against; report the new value without gating.
                print(f"NEW      {fullname}[{key}]: {value:.0f} (baseline 0)")
                continue
            key_ratio = value / reference_value
            key_status = "FAIL" if key_ratio > args.threshold else "ok"
            print(
                f"{key_status:8} {fullname}[{key}]: {value:.0f} vs baseline "
                f"{reference_value:.0f} ({key_ratio:.2f}x)"
            )
            if key_ratio > args.threshold:
                failures.append((f"{fullname}[{key}]", key_ratio))
        for key in sorted(inverse.keys() & reference_inverse.keys()):
            reference_value = float(reference_inverse[key])
            value = float(inverse[key])
            if reference_value <= 0:
                print(f"NEW      {fullname}[{key}]: {value:.2f} (baseline 0)")
                continue
            # Bigger is better: fail when throughput drops below 1/threshold
            # of the baseline.  Expressed as baseline/current so that, like
            # above, ratios over the threshold fail.
            key_ratio = reference_value / value if value > 0 else float("inf")
            key_status = "FAIL" if key_ratio > args.threshold else "ok"
            print(
                f"{key_status:8} {fullname}[{key}]: {value:.2f} vs baseline "
                f"{reference_value:.2f} ({key_ratio:.2f}x slowdown)"
            )
            if key_ratio > args.threshold:
                failures.append((f"{fullname}[{key}]", key_ratio))
    for fullname in sorted(set(baseline) - set(current)):
        print(f"MISSING  {fullname}: present in baseline only")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed past "
            f"{args.threshold:.1f}x the baseline"
        )
        return 1
    print("\nno benchmark regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
