"""Figure 9 — TopBuckets strategies (brute-force, two-phase, loose) on Qb*, Qo*, Qm*.

Paper setting: |Ci| = 2e5, g = 15, k = 100, P1, n in 3..5.  Expected shape: the
TopBuckets phase of brute-force grows rapidly with n (the solver bounds every
n-tuple of buckets); loose stays cheap because only bucket *pairs* are bounded;
two-phase only helps on Qb* where the loose phase prunes almost everything.
"""

from repro.experiments import figure9_topbuckets_strategies

NUM_VERTICES = (3, 4)
FAMILIES = ("Qb*", "Qo*", "Qm*")
SIZE = 200
GRANULES = 5
K = 100


def bench_figure9(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure9_topbuckets_strategies(
            num_vertices=NUM_VERTICES,
            families=FAMILIES,
            size=SIZE,
            num_granules=GRANULES,
            k=K,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("fig09_topbuckets_strategies", table)

    # loose must spend less time in TopBuckets than brute-force for every (family, n).
    per_config = {}
    for row in table.rows:
        per_config[(row["query"], row["n"], row["strategy"])] = row["topbuckets_seconds"]
    for family in FAMILIES:
        for n in NUM_VERTICES:
            assert per_config[(family, n, "loose")] <= per_config[(family, n, "brute-force")]
