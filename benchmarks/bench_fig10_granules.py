"""Figure 10 — effect of the number of granules g.

Paper setting: |Ci| = 2e6, k = 100, P1, loose, g in [5, 160].  Expected shape: finer
statistics prune more candidate results and speed up the join, but make the
TopBuckets phase itself slower; the sweet spot is at an intermediate g (~40 in the
paper).  Queries with few high-scoring results (Qo,m, Qs,f,m) suffer the most from
coarse statistics.
"""

from repro.experiments import figure10_granules

GRANULES = (5, 10, 20, 30)
QUERIES = ("Qb,b", "Qf,b", "Qo,m")
SIZE = 500
K = 100


def bench_figure10(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: figure10_granules(granules=GRANULES, queries=QUERIES, size=SIZE, k=K),
        rounds=1,
        iterations=1,
    )
    record_table("fig10_granules", table)

    # Finer granularity prunes at least as much of the candidate space on Qo,m
    # (the query Figure 10c details).
    qom = {row["g"]: row["pruned_fraction"] for row in table.rows if row["query"] == "Qo,m"}
    assert qom[max(GRANULES)] >= qom[min(GRANULES)]
    # TopBuckets gets more expensive as g grows.
    qom_topbuckets = {
        row["g"]: row["topbuckets_seconds"] for row in table.rows if row["query"] == "Qo,m"
    }
    assert qom_topbuckets[max(GRANULES)] >= qom_topbuckets[min(GRANULES)]
