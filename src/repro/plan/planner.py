"""Cost-based planning: choose TKIJ's knobs from collected statistics.

The paper's experiments show that no single configuration dominates: the best
granularity ``g`` depends on data volume and skew (Figure 10), the best
TopBuckets strategy on the size of the combination space (Figure 9), and the
best workload assigner on whether scores are informative (Figure 8).  The
:class:`AutoPlanner` encodes those regimes as an explicit cost heuristic over
:class:`~repro.core.statistics.DatasetStatistics` — collected once through the
context's :class:`~repro.plan.StatisticsCache`, so probing is amortised — and
records *why* each knob was chosen in a :class:`PlanExplanation`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..core.operators import collections_by_name
from ..core.statistics import DatasetStatistics
from ..query.graph import RTJQuery
from ..temporal.comparators import PredicateParams
from .context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .feedback import CostStore

__all__ = ["AutoPlanner", "PlanExplanation"]


@dataclass
class PlanExplanation:
    """The planner's chosen knobs, the statistics they were derived from, and why."""

    algorithm: str
    num_granules: int
    strategy: str
    assigner: str
    kernel: str = "scalar"
    transfer: str | None = None
    """Chosen shuffle transfer strategy (``None`` leaves the engine's
    backend-derived default in place)."""
    inputs: dict[str, float] = field(default_factory=dict)
    reasons: list[str] = field(default_factory=list)

    def describe(self) -> dict[str, Any]:
        """Flat summary merged into result tables (prefixed ``plan_`` by callers)."""
        summary: dict[str, Any] = {
            "num_granules": self.num_granules,
            "strategy": self.strategy,
            "assigner": self.assigner,
            "kernel": self.kernel,
        }
        if self.transfer is not None:
            summary["transfer"] = self.transfer
        summary.update(self.inputs)
        return summary

    def summary(self) -> str:
        """One-line human-readable account of the plan."""
        choices = (
            f"g={self.num_granules} strategy={self.strategy} assigner={self.assigner} "
            f"kernel={self.kernel}"
        )
        if self.transfer is not None:
            choices += f" transfer={self.transfer}"
        if not self.reasons:
            return choices
        return f"{choices} ({'; '.join(self.reasons)})"


def _bucket_skew(statistics: DatasetStatistics) -> float:
    """Max/mean cardinality over non-empty buckets, across collections (>= 1)."""
    skew = 1.0
    for matrix in statistics.matrices.values():
        counts = [count for count in matrix.counts.values() if count > 0]
        if not counts:
            continue
        mean = sum(counts) / len(counts)
        if mean > 0:
            skew = max(skew, max(counts) / mean)
    return skew


def _is_boolean(query: RTJQuery) -> bool:
    """Whether every edge predicate carries the Boolean parameter set (PB)."""
    boolean = PredicateParams.boolean()
    return all(edge.predicate.params == boolean for edge in query.edges)


@dataclass
class AutoPlanner:
    """Chooses granularity, TopBuckets strategy and assigner from statistics.

    The planner probes the dataset once at ``probe_granules`` (through the
    context's statistics cache, so the probe is free when the dataset was seen
    before) and extrapolates the non-empty bucket count to each candidate
    granularity: buckets are 2-D (start granule, end granule), so the count
    scales roughly with ``g**2`` until it saturates at the collection size.
    """

    probe_granules: int = 10
    granule_candidates: tuple[int, ...] = (5, 10, 20, 40)
    combination_budget: int = 20_000
    """Upper bound on the estimated combination count phase (b) may enumerate."""
    brute_force_budget: int = 64
    """Combination spaces at most this large get joint (tight) bounds outright."""
    skew_threshold: float = 4.0
    """Bucket skew above which finer granularities are favoured."""
    vector_candidate_threshold: float = 64.0
    """Expected candidate tuples per bucket combination above which the local
    join switches to the vectorized columnar kernel.  Small combinations are
    dominated by per-batch numpy dispatch overhead; large ones by per-candidate
    Python interpretation, which is exactly what the vector kernel removes."""
    sweep_candidate_threshold: float = 4096.0
    """Expected candidate tuples per bucket combination above which the
    full-column ``box_mask`` scans of the vector kernel start to dominate and
    the sweep kernel's sorted-window resolution pays for its per-bucket sort."""
    sweep_selectivity: float = 0.01
    """``k / est_candidates`` ratio below which threshold boxes are expected to
    stay selective: a small k over a huge candidate space keeps the pruning
    windows narrow, which is where sweeping beats re-scanning.  A large k
    relative to the candidates means most extension steps scan most of the
    bucket anyway, so the vector kernel's single fused mask wins."""
    replan_cost_factor: float = 2.0
    """Full replan threshold: replan once the projected incremental cost of the
    next batches exceeds this multiple of a fresh phase (a)+(b) pass."""
    replan_out_of_range_fraction: float = 0.25
    """Fraction of a batch outside the cached granule range that forces a replan
    (clamped border buckets inflate bounds and erode streaming selectivity)."""
    cost_store: "CostStore | None" = None
    """Optional observed-cost store (:class:`~repro.plan.CostStore`).  When it
    holds enough observations for the query's workload fingerprint, learned
    per-candidate kernel cost ratios replace the static
    :attr:`vector_candidate_threshold`/:attr:`sweep_candidate_threshold`
    heuristic; cold workloads fall back to the static rules.  The chosen
    source is recorded in :attr:`PlanExplanation.reasons` either way."""
    calibration_min_observations: int = 3
    """Observations a kernel needs (per workload fingerprint) before its
    observed cost participates in calibration — the cold-start threshold."""

    def plan(
        self, query: RTJQuery, context: ExecutionContext
    ) -> tuple[dict[str, Any], PlanExplanation]:
        """Return ``(knobs, explanation)`` for evaluating ``query`` in ``context``."""
        collections = collections_by_name(query)
        probe_started = time.perf_counter()
        statistics, probe_cached = context.statistics.get_or_collect(
            collections, self.probe_granules
        )
        probe_seconds = time.perf_counter() - probe_started

        sizes = {name: len(collection) for name, collection in collections.items()}
        nonempty = {
            name: max(1, statistics.nonempty_bucket_count(name)) for name in collections
        }
        skew = _bucket_skew(statistics)
        reasons: list[str] = []

        workload: str | None = None
        if self.cost_store is not None:
            from .feedback import workload_fingerprint

            workload = workload_fingerprint(query, collections)

        num_granules, est_combos = self._choose_granularity(
            query, sizes, nonempty, skew, reasons
        )
        strategy = self._choose_strategy(query, est_combos, reasons)
        assigner = self._choose_assigner(query, skew, reasons)
        kernel, est_candidates = self._choose_kernel(
            query, sizes, nonempty, num_granules, reasons, workload=workload
        )
        transfer = self._choose_transfer(context, kernel, reasons)

        inputs = {
            "total_intervals": float(sum(sizes.values())),
            "num_vertices": float(len(query.vertices)),
            "num_edges": float(len(query.edges)),
            "k": float(query.k),
            "bucket_skew": skew,
            "estimated_combinations": float(est_combos),
            "estimated_candidates_per_combination": est_candidates,
            "probe_granules": float(self.probe_granules),
            # Phase (a) work spent probing (attributed to the statistics phase
            # by TKIJAlgorithm.execute, so auto-planned reports stay honest).
            "probe_seconds": probe_seconds,
            "probe_cached": 1.0 if probe_cached else 0.0,
        }
        knobs = {
            "num_granules": num_granules,
            "strategy": strategy,
            "assigner": assigner,
            "kernel": kernel,
        }
        if transfer is not None:
            knobs["transfer"] = transfer
        explanation = PlanExplanation(
            algorithm="tkij",
            num_granules=num_granules,
            strategy=strategy,
            assigner=assigner,
            kernel=kernel,
            transfer=transfer,
            inputs=inputs,
            reasons=reasons,
        )
        return knobs, explanation

    # --------------------------------------------------------------- streaming
    def should_replan(
        self,
        *,
        base_size: int,
        appended_since_plan: int,
        batch_size: int,
        out_of_range: int = 0,
    ) -> tuple[bool, str]:
        """Decide between incremental evaluation and a full replan for one batch.

        Batch-size-aware cost term: a full replan costs one fresh phase
        (a)+(b) pass over ``total = base + appended`` intervals, while an
        incremental batch costs roughly ``batch_size * (1 + growth)`` — the
        batch itself plus candidate work that degrades as the dataset outgrows
        the granule boundaries the plan was built on (appended intervals clamp
        into ever-fatter border buckets, so ``growth = appended/base`` measures
        the lost selectivity).  Projected over a dataset-doubling horizon of
        ``total/batch_size`` batches, incremental evaluation stays cheaper
        while ``1 + growth < replan_cost_factor``; past that the amortised
        replan wins, which yields the classic doubling schedule (O(log n)
        replans over an append-only stream).  A batch that mostly falls outside
        the cached granule range forces the replan immediately — clamped
        statistics cannot discriminate such data at all.
        """
        if base_size <= 0:
            return True, "no base plan yet: full evaluation required"
        if (
            batch_size > 0
            and out_of_range / batch_size > self.replan_out_of_range_fraction
        ):
            return True, (
                f"replan: {out_of_range}/{batch_size} batch intervals fall outside "
                f"the cached granule range (> {self.replan_out_of_range_fraction:.0%})"
            )
        growth = appended_since_plan / base_size
        if 1.0 + growth >= self.replan_cost_factor:
            return True, (
                f"replan: appended {appended_since_plan} intervals on a base of "
                f"{base_size} (growth {growth:.2f}); incremental cost "
                f"~batch*(1+growth) now exceeds an amortised fresh pass "
                f"(factor {self.replan_cost_factor})"
            )
        return False, (
            f"incremental: growth {growth:.2f} and batch {batch_size} keep "
            f"per-batch cost under {self.replan_cost_factor}x of an amortised replan"
        )

    # ----------------------------------------------------------------- choices
    def _estimated_buckets(
        self, name: str, sizes: Mapping[str, int], nonempty: Mapping[str, int], num_granules: int
    ) -> int:
        """Extrapolated non-empty bucket count of one collection at ``num_granules``."""
        scale = (num_granules / self.probe_granules) ** 2
        return max(
            1,
            min(
                sizes[name],
                num_granules * (num_granules + 1) // 2,
                max(1, round(nonempty[name] * scale)),
            ),
        )

    def _estimated_combinations(
        self,
        query: RTJQuery,
        sizes: Mapping[str, int],
        nonempty: Mapping[str, int],
        num_granules: int,
    ) -> int:
        """Estimated size of the bucket-combination space at ``num_granules``."""
        est = 1
        for vertex in query.vertices:
            name = query.collections[vertex].name
            est *= self._estimated_buckets(name, sizes, nonempty, num_granules)
        return est

    def _choose_kernel(
        self,
        query: RTJQuery,
        sizes: Mapping[str, int],
        nonempty: Mapping[str, int],
        num_granules: int,
        reasons: list[str],
        workload: str | None = None,
    ) -> tuple[str, float]:
        """Pick the local-join kernel from the expected per-combination work.

        The expected candidate-tuple count of one bucket combination is the
        product of the mean bucket cardinalities at the chosen granularity.
        Above :attr:`vector_candidate_threshold` the interpreted per-candidate
        loop dominates and the columnar kernel wins; below it the per-batch
        numpy dispatch overhead does, and the scalar kernel stays faster.
        Very large combinations with a selective top-k (small ``k`` relative to
        the candidate space, :attr:`sweep_selectivity`) go further: there the
        vector kernel's per-step full-column scans dominate and the sweep
        kernel resolves the same threshold boxes as ``O(log n + window)``
        searchsorted windows over endpoint-sorted views (DESIGN.md §11).
        Hybrid queries stay scalar: attribute constraints force a per-candidate
        Python filter inside the columnar kernels, which voids their premise.
        """
        if query.has_attribute_constraints:
            reasons.append(
                "kernel=scalar: attribute constraints require per-candidate "
                "Python filtering, which the columnar kernels cannot amortise"
            )
            return "scalar", 0.0
        est_candidates = 1.0
        for vertex in query.vertices:
            name = query.collections[vertex].name
            buckets = self._estimated_buckets(name, sizes, nonempty, num_granules)
            est_candidates *= sizes[name] / buckets
        if workload is not None and self.cost_store is not None:
            calibration = self.cost_store.calibrated_kernel(
                workload, self.calibration_min_observations
            )
            if calibration is not None:
                kernel, costs = calibration
                ranking = ", ".join(
                    f"{name}={costs[name]:.3g}s" for name in sorted(costs)
                )
                reasons.append(
                    f"kernel={kernel}: observed calibration — lowest mean "
                    f"per-candidate join cost over {len(costs)} observed kernels "
                    f"({ranking}; >= {self.calibration_min_observations} "
                    f"observations each for this workload fingerprint)"
                )
                return kernel, est_candidates
            reasons.append(
                "kernel cost model: static heuristic (cost store cold for this "
                "workload fingerprint)"
            )
        if (
            est_candidates >= self.sweep_candidate_threshold
            and query.k <= self.sweep_selectivity * est_candidates
        ):
            reasons.append(
                f"kernel=sweep: ~{est_candidates:.0f} candidate tuples per "
                f"combination (>= {self.sweep_candidate_threshold:.0f}) with "
                f"k={query.k} keeping threshold boxes selective "
                f"(k/candidates {query.k / est_candidates:.4f} <= "
                f"{self.sweep_selectivity}); sorted-window resolution replaces "
                f"full-bucket scans"
            )
            return "sweep", est_candidates
        if est_candidates >= self.vector_candidate_threshold:
            reasons.append(
                f"kernel=vector: ~{est_candidates:.0f} candidate tuples per "
                f"combination (>= {self.vector_candidate_threshold:.0f}), batch "
                f"scoring amortises the numpy dispatch"
            )
            return "vector", est_candidates
        reasons.append(
            f"kernel=scalar: ~{est_candidates:.0f} candidate tuples per combination "
            f"(< {self.vector_candidate_threshold:.0f}), batches too small to "
            f"amortise vectorization"
        )
        return "scalar", est_candidates

    def _choose_transfer(
        self, context: ExecutionContext, kernel: str, reasons: list[str]
    ) -> str | None:
        """Pick the shuffle transfer strategy, or defer to the engine's default.

        Shared-memory transfer only pays on the process backend (elsewhere the
        inline zero-copy path already wins) and only when the vector kernel
        keeps records in columnar batches — scalar jobs shuffle individual
        intervals, which ``shm`` would ship by value anyway while paying the
        segment bookkeeping.  Sweep jobs ship columnar batches too but stay on
        the pickle default: a segment descriptor carries only the raw columns,
        so ``shm`` would make every reducer replica re-sort its buckets, while
        a pickle ships the map-side endpoint-sorted views with the batch.  An
        explicit ``ClusterConfig.transfer`` is the user's call and is never
        overridden.
        """
        cluster = context.cluster
        if cluster.transfer is not None:
            reasons.append(
                f"transfer={cluster.transfer}: fixed by the cluster configuration"
            )
            return None
        if cluster.backend == "process" and kernel == "vector":
            reasons.append(
                "transfer=shm: process backend with columnar batches, segment "
                "descriptors replace per-record pickles across the boundary"
            )
            return "shm"
        return None

    def _choose_granularity(
        self,
        query: RTJQuery,
        sizes: Mapping[str, int],
        nonempty: Mapping[str, int],
        skew: float,
        reasons: list[str],
    ) -> tuple[int, int]:
        # Enough combinations that the top-k work can be isolated and pruned
        # (skewed data benefits from finer buckets), but never past the budget
        # phase (b) can afford to enumerate.
        target = max(256, 4 * query.k)
        if skew >= self.skew_threshold:
            target *= 4
        best_g, best_est, best_distance = None, None, None
        for candidate in self.granule_candidates:
            est = self._estimated_combinations(query, sizes, nonempty, candidate)
            if est > self.combination_budget:
                continue
            distance = abs(est - target)
            # Tie-break towards the smaller granularity: phase (b) is cheaper.
            if best_distance is None or distance < best_distance:
                best_g, best_est, best_distance = candidate, est, distance
        if best_g is None:
            best_g = min(self.granule_candidates)
            best_est = self._estimated_combinations(query, sizes, nonempty, best_g)
            reasons.append(
                f"g={best_g}: every candidate granularity exceeds the combination "
                f"budget {self.combination_budget}; falling back to the coarsest"
            )
        else:
            reasons.append(
                f"g={best_g}: ~{best_est} combinations, closest to target {target} "
                f"(skew {skew:.1f}) within budget {self.combination_budget}"
            )
        return best_g, int(best_est)

    def _choose_strategy(
        self, query: RTJQuery, est_combos: int, reasons: list[str]
    ) -> str:
        if est_combos <= self.brute_force_budget:
            reasons.append(
                f"strategy=brute-force: ~{est_combos} combinations fit the tight-bounds "
                f"budget {self.brute_force_budget}"
            )
            return "brute-force"
        if len(query.edges) >= 3 or len(query.vertices) >= 4:
            reasons.append(
                "strategy=two-phase: multi-edge query, loose pairwise bounds compound "
                "slack so tight refinement of the survivors pays off (Figure 9)"
            )
            return "two-phase"
        reasons.append(
            "strategy=loose: pairwise bounds suffice for small query graphs (Figure 9)"
        )
        return "loose"

    def _choose_assigner(
        self, query: RTJQuery, skew: float, reasons: list[str]
    ) -> str:
        if _is_boolean(query):
            reasons.append(
                "assigner=lpt: Boolean predicates make every score 0/1, so DTB's "
                "score-ordered assignment carries no information"
            )
            return "lpt"
        reasons.append(
            f"assigner=dtb: scored predicates, spread high-scoring work evenly "
            f"(bucket skew {skew:.1f}, Figure 8)"
        )
        return "dtb"
