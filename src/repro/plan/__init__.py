"""Plan/operator layer: unified algorithm registry, cost-based planner, caches.

This package is the dispatch substrate of the evaluation stack:

* :class:`Algorithm` — the plan/execute protocol every strategy implements;
* :data:`REGISTRY` / :func:`get_algorithm` — the unified algorithm registry
  (``tkij``, ``tkij-streaming``, ``naive``, ``allmatrix``, ``rccis``,
  ``sql-oracle``) the harness, figure drivers, CLI and query server dispatch
  through;
* :class:`ExecutionContext` — cluster config, shared execution backend and the
  :class:`StatisticsCache` reusing TKIJ's query-independent phase (a) across
  queries (incrementally maintained on updates);
* :class:`AutoPlanner` — cost-based choice of granularity, TopBuckets strategy
  and workload assigner from collected statistics, recorded as a
  :class:`PlanExplanation`;
* :class:`PlanFeedback` — the feedback loop around the planner: a
  :class:`PlanCache` memoizing auto plans by (query, statistics) fingerprint
  and a :class:`CostStore` of observed execution outcomes that calibrates the
  planner's kernel choice once enough evidence accumulates.

The composable phase operators themselves (StatisticsOp ... MergeOp) live in
:mod:`repro.core.operators`; algorithms here assemble them.
"""

from .algorithm import Algorithm, ExecutionPlan, RunReport
from .algorithms import (
    PLAN_MODES,
    AllMatrixAlgorithm,
    NaiveAlgorithm,
    RCCISAlgorithm,
    TKIJAlgorithm,
    resolve_join_config,
)
from .context import ExecutionContext, StatisticsCache, atomic_pickle_dump
from .feedback import (
    CostStore,
    PlanCache,
    PlanFeedback,
    query_fingerprint,
    statistics_fingerprint,
    workload_fingerprint,
)
from .planner import AutoPlanner, PlanExplanation
from .registry import REGISTRY, available_algorithms, get_algorithm, register
from .sql_oracle import SQLOracleAlgorithm

__all__ = [
    "Algorithm",
    "ExecutionPlan",
    "RunReport",
    "PLAN_MODES",
    "TKIJAlgorithm",
    "NaiveAlgorithm",
    "AllMatrixAlgorithm",
    "RCCISAlgorithm",
    "SQLOracleAlgorithm",
    "resolve_join_config",
    "ExecutionContext",
    "StatisticsCache",
    "atomic_pickle_dump",
    "AutoPlanner",
    "PlanExplanation",
    "CostStore",
    "PlanCache",
    "PlanFeedback",
    "query_fingerprint",
    "statistics_fingerprint",
    "workload_fingerprint",
    "REGISTRY",
    "available_algorithms",
    "get_algorithm",
    "register",
]
