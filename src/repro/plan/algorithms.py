"""Registered algorithms: TKIJ plus the three baselines behind one interface.

Each wrapper translates the generic plan/execute protocol onto the underlying
implementation (:class:`repro.core.TKIJ`, :func:`repro.baselines.naive_top_k`,
:class:`repro.baselines.AllMatrixJoin`, :class:`repro.baselines.RCCISJoin`) and
reports through the common :class:`~repro.plan.RunReport`.  All of them draw
the cluster shape and the shared execution backend from the
:class:`~repro.plan.ExecutionContext`; TKIJ additionally reuses the context's
statistics cache so phase (a) runs once per (dataset, granularity).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Mapping

from ..baselines.allmatrix import AllMatrixConfig, AllMatrixJoin
from ..baselines.common import BaselineResult
from ..baselines.naive import naive_top_k
from ..baselines.rccis import RCCISConfig, RCCISJoin
from ..core.local_join import LocalJoinConfig
from ..core.operators import collections_by_name
from ..core.tkij import TKIJ
from ..query.graph import RTJQuery
from ..solver import BranchAndBoundSolver
from .algorithm import Algorithm, ExecutionPlan, RunReport
from .context import ExecutionContext
from .feedback import query_fingerprint, statistics_fingerprint, workload_fingerprint
from .planner import AutoPlanner
from .registry import register

__all__ = [
    "TKIJAlgorithm",
    "NaiveAlgorithm",
    "AllMatrixAlgorithm",
    "RCCISAlgorithm",
    "resolve_join_config",
]

PLAN_MODES = ("manual", "auto")
"""Valid values of the TKIJ ``mode`` knob (and the CLI ``--plan`` option)."""


def resolve_join_config(knobs: Mapping[str, Any]) -> LocalJoinConfig:
    """The plan's local-join configuration with the ``kernel`` knob applied.

    ``kernel`` may come from the CLI/driver (explicit) or from the planner
    (auto mode); either way it overrides whatever the ``join_config`` object
    carries, so one knob controls the kernel everywhere.
    """
    join_config: LocalJoinConfig = knobs["join_config"]
    kernel = knobs.get("kernel")
    if kernel is not None and kernel != join_config.kernel:
        join_config = replace(join_config, kernel=kernel)
    return join_config


class TKIJAlgorithm(Algorithm):
    """The paper's contribution, planned manually or by the cost-based planner."""

    name = "tkij"
    title = "TKIJ"
    scored = True

    def plan(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        mode: str = "manual",
        num_granules: int = 20,
        strategy: str = "loose",
        assigner: str = "dtb",
        kernel: str | None = None,
        transfer: str | None = None,
        memory_budget_bytes: int | None = None,
        join_config: LocalJoinConfig | None = None,
        solver: BranchAndBoundSolver | None = None,
        statistics_on_mapreduce: bool = False,
        planner: AutoPlanner | None = None,
    ) -> ExecutionPlan:
        if mode not in PLAN_MODES:
            raise ValueError(f"unknown plan mode {mode!r}; expected one of {PLAN_MODES}")
        knobs: dict[str, Any] = {
            "num_granules": num_granules,
            "strategy": strategy,
            "assigner": assigner,
            "join_config": join_config or LocalJoinConfig(),
            "solver": solver or BranchAndBoundSolver(),
            "statistics_on_mapreduce": statistics_on_mapreduce,
        }
        explanation = None
        if mode == "auto":
            planner = planner or AutoPlanner()
            feedback = context.feedback
            fingerprints: tuple[str, str] | None = None
            cached_plan = None
            if feedback is not None:
                # The plan-cache key is (query fingerprint, statistics
                # fingerprint) — exact planning problem over the exact dataset
                # state; volatile explanation inputs (probe_seconds,
                # probe_cached) never participate.
                fingerprints = (
                    query_fingerprint(query),
                    statistics_fingerprint(collections_by_name(query)),
                )
                cached_plan = feedback.plan_cache.lookup(*fingerprints)
            if cached_plan is not None:
                # Hot path: the memoized plan is served without re-probing.
                chosen, explanation = cached_plan
                explanation.reasons.append(
                    "plan reused from the plan cache (query and statistics "
                    "fingerprints matched; probe skipped)"
                )
            else:
                if (
                    feedback is not None
                    and feedback.cost_store is not None
                    and planner.cost_store is None
                ):
                    planner = replace(planner, cost_store=feedback.cost_store)
                chosen, explanation = planner.plan(query, context)
                if fingerprints is not None:
                    feedback.plan_cache.store(*fingerprints, chosen, explanation)
            knobs.update(chosen)
        if kernel is not None:
            # An explicit kernel always wins over the planner's pick.
            knobs["kernel"] = kernel
            if explanation is not None:
                explanation.kernel = kernel
        if transfer is not None:
            # Same precedence for the shuffle transfer strategy.
            knobs["transfer"] = transfer
            if explanation is not None:
                explanation.transfer = transfer
        if memory_budget_bytes is not None:
            knobs["memory_budget_bytes"] = memory_budget_bytes
        return ExecutionPlan(self.name, query, context, knobs, explanation)

    @staticmethod
    def _resolve_cluster(plan: ExecutionPlan):
        """The context's cluster with the plan's transfer/budget knobs applied.

        The context owns the cluster shape (reducers, mappers, backend); the
        plan may override only how shuffled data moves and when it spills, so
        several plans can share one context (and its worker pool) while
        choosing different transfer strategies.
        """
        cluster = plan.context.cluster
        overrides = {
            knob: plan.knobs[knob]
            for knob in ("transfer", "memory_budget_bytes")
            if plan.knobs.get(knob) is not None
        }
        return replace(cluster, **overrides) if overrides else cluster

    def execute(self, plan: ExecutionPlan) -> RunReport:
        context, knobs = plan.context, plan.knobs
        evaluator = TKIJ(
            num_granules=knobs["num_granules"],
            strategy=knobs["strategy"],
            assigner=knobs["assigner"],
            cluster=self._resolve_cluster(plan),
            join_config=resolve_join_config(knobs),
            solver=knobs["solver"],
            statistics_on_mapreduce=knobs["statistics_on_mapreduce"],
            backend=context.get_backend(),
        )
        with evaluator:
            # Phase (a) through the context's cache: collected once per
            # (dataset, granularity), reused and incrementally maintained across
            # queries.  The fetch is timed as the statistics phase (~0 on a hit).
            started = time.perf_counter()
            statistics, cached = context.statistics.get_or_collect(
                collections_by_name(plan.query),
                knobs["num_granules"],
                lambda collections, _: evaluator.collect_statistics(collections),
            )
            statistics_seconds = time.perf_counter() - started
            result = evaluator.execute(plan.query, statistics=statistics)
        # Auto mode: the planner's probe did (or reused) phase (a) work before
        # this fetch — attribute it to the statistics phase, and report the run
        # as cached only if the probe hit as well.
        if plan.explanation is not None:
            statistics_seconds += plan.explanation.inputs.get("probe_seconds", 0.0)
            cached = cached and plan.explanation.inputs.get("probe_cached", 1.0) >= 1.0
        result.phase_seconds["statistics"] = statistics_seconds
        result.plan_explanation = plan.explanation
        feedback = context.feedback
        if feedback is not None and feedback.cost_store is not None:
            # Close the loop: the observed outcome of this (workload, knobs)
            # pair feeds the planner's calibration on later plans.
            knob_signature = {
                "num_granules": knobs["num_granules"],
                "strategy": knobs["strategy"],
                "assigner": knobs["assigner"],
                "kernel": resolve_join_config(knobs).kernel,
            }
            outcome = {
                "elapsed_seconds": result.total_seconds,
                "join_seconds": result.phase_seconds.get("join", 0.0),
                **result.join_metrics.observed_costs(),
            }
            feedback.cost_store.record(
                workload_fingerprint(plan.query, collections_by_name(plan.query)),
                knob_signature,
                outcome,
            )
        return RunReport(
            algorithm=self.name,
            title=self.title,
            results=result.results,
            phase_seconds=dict(result.phase_seconds),
            metrics=[result.join_metrics, result.merge_metrics],
            explanation=plan.explanation,
            statistics_cached=cached,
            elapsed_seconds=result.total_seconds,
            raw=result,
        )

    def plan_knobs(self, options: Mapping[str, Any]) -> dict[str, Any]:
        picked = {}
        for knob in (
            "mode",
            "num_granules",
            "strategy",
            "assigner",
            "kernel",
            "transfer",
            "memory_budget_bytes",
        ):
            if options.get(knob) is not None:
                picked[knob] = options[knob]
        return picked


class NaiveAlgorithm(Algorithm):
    """Exhaustive in-process enumeration: the exact oracle, usable on small inputs."""

    name = "naive"
    title = "Naive"
    scored = True

    def plan(self, query: RTJQuery, context: ExecutionContext, **knobs: Any) -> ExecutionPlan:
        if knobs:
            raise ValueError(f"naive accepts no knobs, got {sorted(knobs)}")
        return ExecutionPlan(self.name, query, context)

    def execute(self, plan: ExecutionPlan) -> RunReport:
        started = time.perf_counter()
        results = naive_top_k(plan.query)
        elapsed = time.perf_counter() - started
        return RunReport(
            algorithm=self.name,
            title=self.title,
            results=results,
            phase_seconds={"join": elapsed},
            elapsed_seconds=elapsed,
        )


class _BaselineAlgorithm(Algorithm):
    """Common plumbing of the Boolean Map-Reduce baselines."""

    scored = False

    def _make_join(self, plan: ExecutionPlan):
        raise NotImplementedError

    def execute(self, plan: ExecutionPlan) -> RunReport:
        join = self._make_join(plan)
        with join:
            result: BaselineResult = join.execute(plan.query)
        return RunReport(
            algorithm=self.name,
            title=self.title,
            results=result.results,
            phase_seconds=result.phase_seconds(),
            metrics=list(result.phase_metrics),
            elapsed_seconds=result.elapsed_seconds,
            raw=result,
        )


class AllMatrixAlgorithm(_BaselineAlgorithm):
    """All-Matrix (Chawda et al.): Boolean sequence joins over partition tuples."""

    name = "allmatrix"
    title = "All-Matrix"

    def plan(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        num_partitions: int = 4,
    ) -> ExecutionPlan:
        return ExecutionPlan(
            self.name, query, context, {"num_partitions": num_partitions}
        )

    def _make_join(self, plan: ExecutionPlan) -> AllMatrixJoin:
        return AllMatrixJoin(
            cluster=plan.context.cluster,
            config=AllMatrixConfig(num_partitions=plan.knobs["num_partitions"]),
            backend=plan.context.get_backend(),
        )

    def plan_knobs(self, options: Mapping[str, Any]) -> dict[str, Any]:
        if options.get("num_partitions") is not None:
            return {"num_partitions": options["num_partitions"]}
        return {}


class RCCISAlgorithm(_BaselineAlgorithm):
    """RCCIS (Chawda et al.): Boolean colocation joins over time granules."""

    name = "rccis"
    title = "RCCIS"

    def plan(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        num_granules: int | None = None,
    ) -> ExecutionPlan:
        # Default to one granule per reducer, matching the paper's protocol.
        granules = num_granules if num_granules is not None else context.cluster.num_reducers
        return ExecutionPlan(self.name, query, context, {"num_granules": granules})

    def _make_join(self, plan: ExecutionPlan) -> RCCISJoin:
        return RCCISJoin(
            cluster=plan.context.cluster,
            config=RCCISConfig(num_granules=plan.knobs["num_granules"]),
            backend=plan.context.get_backend(),
        )

    def plan_knobs(self, options: Mapping[str, Any]) -> dict[str, Any]:
        if options.get("num_granules") is not None:
            return {"num_granules": options["num_granules"]}
        return {}


register(TKIJAlgorithm())
register(NaiveAlgorithm())
register(AllMatrixAlgorithm())
register(RCCISAlgorithm())
