"""Feedback-driven planning: observed costs, memoized plans, fingerprints.

The :class:`~repro.plan.AutoPlanner` costs plans from *static* bucket
statistics; this module closes the loop with what actually happened
(DESIGN.md §14):

* :func:`workload_fingerprint` / :func:`query_fingerprint` /
  :func:`statistics_fingerprint` — deterministic blake2b identities at three
  granularities: the coarse workload *shape* observations generalise over,
  the exact planning problem, and the exact dataset state;
* :class:`CostStore` — a small append-friendly store (JSON lines, atomic
  appends) keyed by ``(workload fingerprint, knob tuple)`` accumulating
  observed :meth:`~repro.mapreduce.JobMetrics.observed_costs` outcomes per
  executed plan, from which the planner derives learned per-candidate kernel
  cost ratios (falling back to the static heuristic cold);
* :class:`PlanCache` — a bounded LRU of whole auto plans keyed by
  ``(query fingerprint, statistics fingerprint)``, so the serving hot path
  returns a memoized plan without re-probing.  The key deliberately excludes
  the non-deterministic ``PlanExplanation.inputs`` fields (``probe_seconds``,
  ``probe_cached``): two plannings of the same query over the same data are
  the *same* plan however long the probe took;
* :class:`PlanFeedback` — the bundle an :class:`~repro.plan.ExecutionContext`
  carries to opt its queries into both.

Everything here is thread-safe: the serving layer shares one feedback bundle
across concurrent executor threads, exactly like the statistics cache.
"""

from __future__ import annotations

import copy
import json
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..query.graph import RTJQuery
from ..temporal.interval import IntervalCollection
from .context import _collection_checksum

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports us)
    from .planner import PlanExplanation

__all__ = [
    "CostStore",
    "PlanCache",
    "PlanFeedback",
    "query_fingerprint",
    "statistics_fingerprint",
    "workload_fingerprint",
]


def _digest(kind: str, tokens: Any) -> str:
    """Keyed blake2b hex digest of a canonical token tree (the repo's idiom)."""
    payload = repr(tokens).encode("utf-8")
    return blake2b(payload, digest_size=16, key=kind.encode("utf-8")[:16]).hexdigest()


def _edge_identity(query: RTJQuery) -> tuple[tuple[str, str, str, str, tuple[str, ...]], ...]:
    """Exact edge identities: endpoints, predicate, scoring params, attributes."""
    return tuple(
        (
            edge.source,
            edge.target,
            edge.predicate.name,
            repr(edge.predicate.params),
            tuple(attribute.describe() for attribute in edge.attributes),
        )
        for edge in query.edges
    )


def query_fingerprint(query: RTJQuery) -> str:
    """The exact identity of a planning problem (dataset contents excluded).

    Two queries share a fingerprint iff they bind the same collection names to
    the same vertices, carry the same edges (predicates, parameter sets and
    attribute constraints included), the same ``k`` and the same aggregation —
    i.e. iff a memoized plan for one is a valid plan for the other given equal
    statistics.
    """
    tokens = (
        query.vertices,
        tuple(query.collections[vertex].name for vertex in query.vertices),
        _edge_identity(query),
        query.k,
        type(query.aggregation).__name__,
    )
    return _digest("rtj-query", tokens)


def statistics_fingerprint(collections: Mapping[str, IntervalCollection]) -> str:
    """The exact identity of a dataset state, as the statistics cache sees it.

    Built from each collection's name, size, time range and endpoint checksum
    (the same drift detectors :class:`~repro.plan.StatisticsCache` validates
    entries with), so any append/delete/edit that would invalidate cached
    statistics also misses the plan cache.  Cheap: two numpy sums per
    collection, no statistics collection.
    """
    tokens = tuple(
        sorted(
            (name, len(collection), collection.time_range(), _collection_checksum(collection))
            for name, collection in collections.items()
        )
    )
    return _digest("statistics", tokens)


def _magnitude(value: float) -> int:
    """Decimal order of magnitude (>= 0) — the coarse size bucket observations pool over."""
    return int(math.log10(max(float(value), 1.0)))


def workload_fingerprint(
    query: RTJQuery, collections: Mapping[str, IntervalCollection]
) -> str:
    """The coarse *shape* of a workload, under which observations generalise.

    Deliberately coarser than :func:`query_fingerprint`: collection names and
    exact sizes are reduced to sorted size magnitudes, and ``k`` to its
    magnitude, so repeat queries over regenerated or slightly grown data feed
    the same calibration pool.  Predicates and their parameter sets stay exact
    — kernel economics differ between Boolean and scored scoring.
    """
    tokens = (
        len(query.vertices),
        tuple(sorted((e.predicate.name, repr(e.predicate.params)) for e in query.edges)),
        type(query.aggregation).__name__,
        _magnitude(query.k),
        tuple(sorted(_magnitude(len(c)) for c in collections.values())),
        query.has_attribute_constraints,
    )
    return _digest("workload", tokens)


class CostStore:
    """Observed plan outcomes keyed by (workload fingerprint, knob tuple).

    With a ``path`` the store is durable: every :meth:`record` appends one
    JSON line (a single buffered write in append mode, so concurrent writers
    interleave whole lines, not bytes) and a new store loads the log back on
    construction, skipping — and counting — any corrupt line a crash left
    behind.  Without a path it is a process-local memory.

    Calibration is deterministic: the same observation log always yields the
    same :meth:`kernel_costs` / :meth:`calibrated_kernel` answers (plain
    means, name-tie-broken argmin, no sampling).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._outcomes: dict[tuple[str, str], list[dict[str, float]]] = {}
        self._knobs: dict[str, dict[str, Any]] = {}
        self.recorded = 0
        self.loaded = 0
        self.corrupt_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------ basics
    @staticmethod
    def knob_key(knobs: Mapping[str, Any]) -> str:
        """Canonical identity of a knob tuple (sorted, compact JSON)."""
        return json.dumps(dict(knobs), sort_keys=True, separators=(",", ":"))

    def __len__(self) -> int:
        with self._lock:
            return sum(len(outcomes) for outcomes in self._outcomes.values())

    def describe(self) -> dict[str, int]:
        """Counters for reports and the serving ``stats`` verb."""
        with self._lock:
            return {
                "observations": sum(len(o) for o in self._outcomes.values()),
                "workloads": len({workload for workload, _ in self._outcomes}),
                "recorded": self.recorded,
                "loaded": self.loaded,
                "corrupt_lines": self.corrupt_lines,
            }

    # --------------------------------------------------------------- recording
    def record(
        self,
        workload: str,
        knobs: Mapping[str, Any],
        outcome: Mapping[str, float],
    ) -> None:
        """Append one observed outcome of executing ``knobs`` on ``workload``."""
        clean_knobs = dict(knobs)
        clean_outcome = {name: float(value) for name, value in outcome.items()}
        key = self.knob_key(clean_knobs)
        with self._lock:
            self._knobs.setdefault(key, clean_knobs)
            self._outcomes.setdefault((workload, key), []).append(clean_outcome)
            self.recorded += 1
            if self.path is not None:
                line = json.dumps(
                    {"workload": workload, "knobs": clean_knobs, "outcome": clean_outcome},
                    sort_keys=True,
                )
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                workload = entry["workload"]
                knobs = dict(entry["knobs"])
                outcome = {name: float(value) for name, value in entry["outcome"].items()}
            except (ValueError, KeyError, TypeError, AttributeError):
                # A crash mid-append leaves at most one torn line; tolerate any.
                self.corrupt_lines += 1
                continue
            key = self.knob_key(knobs)
            self._knobs.setdefault(key, knobs)
            self._outcomes.setdefault((workload, key), []).append(outcome)
            self.loaded += 1

    # ------------------------------------------------------------- calibration
    def observations(self, workload: str) -> dict[str, list[dict[str, float]]]:
        """Observed outcomes of ``workload``, keyed by canonical knob tuple."""
        with self._lock:
            return {
                key: [dict(outcome) for outcome in outcomes]
                for (seen, key), outcomes in self._outcomes.items()
                if seen == workload
            }

    def kernel_costs(
        self, workload: str, min_observations: int = 3
    ) -> dict[str, float]:
        """Mean observed per-candidate join cost by kernel, for ``workload``.

        Only kernels with at least ``min_observations`` usable observations
        (positive ``candidates_examined``) participate — the cold-start
        threshold below which the planner keeps its static heuristic.
        """
        samples: dict[str, list[float]] = {}
        with self._lock:
            for (seen, key), outcomes in self._outcomes.items():
                if seen != workload:
                    continue
                kernel = self._knobs.get(key, {}).get("kernel")
                if not isinstance(kernel, str):
                    continue
                for outcome in outcomes:
                    candidates = outcome.get("candidates_examined", 0.0)
                    seconds = outcome.get("join_seconds", 0.0)
                    if candidates > 0 and seconds >= 0:
                        samples.setdefault(kernel, []).append(seconds / candidates)
        return {
            kernel: sum(costs) / len(costs)
            for kernel, costs in samples.items()
            if len(costs) >= min_observations
        }

    def calibrated_kernel(
        self, workload: str, min_observations: int = 3
    ) -> tuple[str, dict[str, float]] | None:
        """The observed-cheapest kernel for ``workload``, or ``None`` cold.

        Requires at least two kernels past the observation threshold — a
        single observed kernel carries no *ratio* to replace the static
        thresholds with.  Ties break towards the lexicographically smaller
        kernel name, keeping calibration deterministic for a given log.
        """
        costs = self.kernel_costs(workload, min_observations)
        if len(costs) < 2:
            return None
        kernel = min(sorted(costs), key=lambda name: (costs[name], name))
        return kernel, costs


class PlanCache:
    """A bounded LRU of auto plans keyed by (query, statistics) fingerprints.

    A hit returns deep copies of the memoized ``(knobs, explanation)`` so
    callers may annotate their explanation freely; the stored explanation has
    its volatile probe inputs normalised (``probe_seconds=0``,
    ``probe_cached=1``) — a memoized plan *is* the probe-free path, and the
    cache key never includes those fields.  ``hits`` / ``misses`` /
    ``evictions`` counters feed the serving ``stats`` verb.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[
            tuple[str, str], tuple[dict[str, Any], "PlanExplanation"]
        ] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, query_fp: str, stats_fp: str
    ) -> tuple[dict[str, Any], "PlanExplanation"] | None:
        """The memoized plan of this (query, dataset state), or ``None``."""
        with self._lock:
            entry = self._entries.get((query_fp, stats_fp))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((query_fp, stats_fp))
            self.hits += 1
            knobs, explanation = entry
            return dict(knobs), copy.deepcopy(explanation)

    def store(
        self,
        query_fp: str,
        stats_fp: str,
        knobs: Mapping[str, Any],
        explanation: "PlanExplanation",
    ) -> None:
        """Memoize a freshly planned ``(knobs, explanation)``, evicting LRU past the bound."""
        explanation = copy.deepcopy(explanation)
        if "probe_seconds" in explanation.inputs:
            explanation.inputs["probe_seconds"] = 0.0
        if "probe_cached" in explanation.inputs:
            explanation.inputs["probe_cached"] = 1.0
        with self._lock:
            self._entries[(query_fp, stats_fp)] = (dict(knobs), explanation)
            self._entries.move_to_end((query_fp, stats_fp))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, query_fp: str | None = None) -> int:
        """Drop every entry of one query fingerprint (or all), returning the count."""
        with self._lock:
            if query_fp is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [key for key in self._entries if key[0] == query_fp]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop every memoized plan (counters are kept)."""
        self.invalidate()

    def describe(self) -> dict[str, int]:
        """Counters for reports and the serving ``stats`` verb."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }


@dataclass
class PlanFeedback:
    """The feedback bundle an :class:`~repro.plan.ExecutionContext` carries.

    ``plan_cache`` memoizes whole auto plans; ``cost_store`` (optional)
    accumulates observed outcomes and feeds planner calibration.  Shared by
    reference across :meth:`~repro.plan.ExecutionContext.session_view`s, like
    the statistics cache.
    """

    plan_cache: PlanCache = field(default_factory=PlanCache)
    cost_store: CostStore | None = None

    def describe(self) -> dict[str, Any]:
        """Nested counters for reports and the serving ``stats`` verb."""
        summary: dict[str, Any] = {"plan_cache": self.plan_cache.describe()}
        if self.cost_store is not None:
            summary["cost_store"] = self.cost_store.describe()
        return summary
