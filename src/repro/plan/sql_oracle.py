"""SQLite correctness oracle: the RTJ top-k join evaluated as one SQL query.

``sql-oracle`` loads every bound collection into an in-memory stdlib
``sqlite3`` database as a plain ``(uid, s, e)`` endpoint table and evaluates
the whole query as a single cross join with a computed score column::

    SELECT v0.uid, v1.uid, <aggregate of per-edge CASE cascades> AS score
    FROM c0 AS v0, c1 AS v1
    ORDER BY score DESC, v0.uid ASC, v1.uid ASC LIMIT k

The score expressions are generated from the same
:meth:`~repro.temporal.predicates.ScoredPredicate.compiled_comparisons` plans
the scalar and vector kernels compile from, but the *evaluation* is SQLite's —
no scoring code is shared with the engine, so agreement across the parity
matrix is evidence of correctness rather than of shared bugs.  Every generated
expression replays the scalar closure's branch structure and left-associative
float arithmetic (both engines evaluate IEEE doubles in the same operation
order), so scores come out bit-identical, and the ``ORDER BY`` above matches
the engine's ``(-score, uids)`` result order exactly.

The oracle doubles as a perf baseline: it is what a row-store SQL engine pays
for the same join without TKIJ's bucket pruning — a full O(n^m) cross product
ordered by score.  Keep it on parity-sized workloads.

Hybrid queries raise :class:`NotImplementedError` from :meth:`plan`: attribute
constraints compare opaque Python payloads, which have no SQL column form.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any, Mapping, Sequence

from ..core.operators import collections_by_name
from ..query.graph import QueryEdge, ResultTuple, RTJQuery
from ..temporal.aggregation import (
    Aggregation,
    AverageScore,
    MinScore,
    SumScore,
    WeightedSum,
)
from .algorithm import Algorithm, ExecutionPlan, RunReport
from .context import ExecutionContext
from .registry import register

__all__ = ["SQLOracleAlgorithm", "compile_query_sql"]


def _literal(value: float) -> str:
    """A float as a SQL literal parsing back to the same double (repr round-trips)."""
    return repr(float(value))


def _comparison_sql(
    plan: tuple[bool, tuple[float, float, float, float], float, float, float],
    x_alias: str,
    y_alias: str,
) -> str:
    """One comparison plan as a CASE cascade over the two rows' endpoints.

    The branches (and their order) mirror the scalar ``compile`` closure's
    ``if`` cascade, with the ``rho == 0`` degenerate case resolved here at
    generation time exactly like the closure resolves it per call; ``lam + rho``
    is pre-added in Python so the slope's numerator subtracts the identical
    double the closure uses.
    """
    is_equals, (a, b, c, d), constant, lam, rho = plan
    value = (
        f"({_literal(a)}*{x_alias}.s + {_literal(b)}*{x_alias}.e + "
        f"{_literal(c)}*{y_alias}.s + {_literal(d)}*{y_alias}.e + "
        f"{_literal(constant)})"
    )
    if is_equals:
        if rho == 0.0:
            return f"(CASE WHEN ABS{value} <= {_literal(lam)} THEN 1.0 ELSE 0.0 END)"
        edge = lam + rho
        return (
            f"(CASE WHEN ABS{value} <= {_literal(lam)} THEN 1.0 "
            f"WHEN ABS{value} >= {_literal(edge)} THEN 0.0 "
            f"ELSE ({_literal(edge)} - ABS{value}) / {_literal(rho)} END)"
        )
    if rho == 0.0:
        return f"(CASE WHEN {value} > {_literal(lam)} THEN 1.0 ELSE 0.0 END)"
    edge = lam + rho
    return (
        f"(CASE WHEN {value} <= {_literal(lam)} THEN 0.0 "
        f"WHEN {value} >= {_literal(edge)} THEN 1.0 "
        f"ELSE ({value} - {_literal(lam)}) / {_literal(rho)} END)"
    )


def _edge_sql(edge: QueryEdge, x_alias: str, y_alias: str) -> str:
    """One edge's predicate score: the minimum over its conjunct comparisons.

    Comparator scores never exceed 1.0, so the scalar closure's ``best = 1.0``
    seed is redundant under ``MIN`` and omitted.  SQLite's multi-argument
    ``MIN`` is the scalar minimum; a single conjunct must stay bare (one
    argument would select the *aggregate* ``MIN``).
    """
    parts = [
        _comparison_sql(plan, x_alias, y_alias)
        for plan in edge.predicate.compiled_comparisons()
    ]
    if len(parts) == 1:
        return parts[0]
    return f"MIN({', '.join(parts)})"


def _aggregate_sql(aggregation: Aggregation, edge_exprs: Sequence[str]) -> str:
    """The tuple score: ``aggregation.combine`` as left-associative SQL.

    Python's ``sum`` folds left from ``0``; ``0.0 + s`` is bit-identical to
    ``s`` for the non-negative scores comparators produce, so the leading zero
    is omitted.  Aggregations without a closed SQL form are refused — the
    oracle must never approximate.
    """
    if isinstance(aggregation, AverageScore):
        if len(edge_exprs) != aggregation.num_edges:
            raise ValueError(
                f"expected {aggregation.num_edges} edge scores, got {len(edge_exprs)}"
            )
        return f"(({' + '.join(edge_exprs)}) / {_literal(aggregation.num_edges)})"
    if isinstance(aggregation, SumScore):
        return f"({' + '.join(edge_exprs)})"
    if isinstance(aggregation, WeightedSum):
        if len(edge_exprs) != len(aggregation.weights):
            raise ValueError(
                f"expected {len(aggregation.weights)} edge scores, got {len(edge_exprs)}"
            )
        terms = [
            f"{_literal(weight)}*{expr}"
            for weight, expr in zip(aggregation.weights, edge_exprs)
        ]
        return f"({' + '.join(terms)})"
    if isinstance(aggregation, MinScore):
        if len(edge_exprs) == 1:
            return edge_exprs[0]
        return f"MIN({', '.join(edge_exprs)})"
    raise NotImplementedError(
        f"sql-oracle has no SQL form for aggregation {type(aggregation).__name__}"
    )


def _table_names(query: RTJQuery) -> dict[str, str]:
    """Deterministic table name per distinct collection (names are arbitrary text)."""
    names: dict[str, str] = {}
    for vertex in query.vertices:
        name = query.collections[vertex].name
        if name not in names:
            names[name] = f"c{len(names)}"
    return names


def compile_query_sql(query: RTJQuery, tables: Mapping[str, str]) -> str:
    """The whole RTJ query as one SELECT (see the module docstring).

    ``tables`` maps collection names to their SQL table names (one table per
    distinct collection; two vertices over the same collection self-join
    through aliases).
    """
    if not query.edges:
        raise NotImplementedError("sql-oracle requires at least one scored edge")
    aliases = {vertex: f"v{position}" for position, vertex in enumerate(query.vertices)}
    edge_exprs = [
        _edge_sql(edge, aliases[edge.source], aliases[edge.target])
        for edge in query.edges
    ]
    score = _aggregate_sql(query.aggregation, edge_exprs)
    select_uids = ", ".join(f"{aliases[vertex]}.uid" for vertex in query.vertices)
    from_clause = ", ".join(
        f"{tables[query.collections[vertex].name]} AS {aliases[vertex]}"
        for vertex in query.vertices
    )
    order = ", ".join(
        ["score DESC"] + [f"{aliases[vertex]}.uid ASC" for vertex in query.vertices]
    )
    return (
        f"SELECT {select_uids}, {score} AS score FROM {from_clause} "
        f"ORDER BY {order} LIMIT {int(query.k)}"
    )


class SQLOracleAlgorithm(Algorithm):
    """The join as SQL over endpoint tables: independent oracle, naive-SQL baseline."""

    name = "sql-oracle"
    title = "SQL oracle"
    scored = True

    def plan(self, query: RTJQuery, context: ExecutionContext, **knobs: Any) -> ExecutionPlan:
        if knobs:
            raise ValueError(f"sql-oracle accepts no knobs, got {sorted(knobs)}")
        if query.has_attribute_constraints:
            raise NotImplementedError(
                "sql-oracle does not support hybrid attribute constraints: "
                "payloads are opaque Python objects with no SQL column form"
            )
        # Fail fast on unsupported shapes (unknown aggregations, zero edges):
        # generating the SQL exercises every refusal path without touching data.
        compile_query_sql(query, _table_names(query))
        return ExecutionPlan(self.name, query, context)

    def execute(self, plan: ExecutionPlan) -> RunReport:
        query = plan.query
        tables = _table_names(query)
        collections = collections_by_name(query)
        load_started = time.perf_counter()
        connection = sqlite3.connect(":memory:")
        try:
            for collection_name, table in tables.items():
                connection.execute(f"CREATE TABLE {table} (uid INTEGER, s REAL, e REAL)")
                connection.executemany(
                    f"INSERT INTO {table} VALUES (?, ?, ?)",
                    (
                        (interval.uid, interval.start, interval.end)
                        for interval in collections[collection_name]
                    ),
                )
            load_seconds = time.perf_counter() - load_started
            join_started = time.perf_counter()
            rows = connection.execute(compile_query_sql(query, tables)).fetchall()
            join_seconds = time.perf_counter() - join_started
        finally:
            connection.close()
        results = [
            ResultTuple(
                uids=tuple(int(uid) for uid in row[:-1]), score=float(row[-1])
            )
            for row in rows
        ]
        return RunReport(
            algorithm=self.name,
            title=self.title,
            results=results,
            phase_seconds={"load": load_seconds, "join": join_seconds},
        )


register(SQLOracleAlgorithm())
