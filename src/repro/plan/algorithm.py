"""The ``Algorithm`` protocol: plan an execution, then execute the plan.

Every evaluation strategy in the repository — TKIJ and the three baselines —
implements the same two-step interface so that the experiment harness, figure
drivers and CLI can dispatch through the registry without per-algorithm
branches:

* :meth:`Algorithm.plan` turns a query plus an :class:`ExecutionContext` (and
  optional knobs) into an :class:`ExecutionPlan`, possibly consulting the
  cost-based :class:`~repro.plan.AutoPlanner`;
* :meth:`Algorithm.execute` runs the plan and returns a :class:`RunReport`, the
  algorithm-agnostic execution summary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..mapreduce.cluster import JobMetrics
from ..query.graph import ResultTuple, RTJQuery
from .context import ExecutionContext

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .planner import PlanExplanation

__all__ = ["Algorithm", "ExecutionPlan", "RunReport"]


@dataclass
class ExecutionPlan:
    """A fully-resolved execution: which algorithm, on what, with which knobs."""

    algorithm: str
    query: RTJQuery
    context: ExecutionContext
    knobs: dict[str, Any] = field(default_factory=dict)
    explanation: "PlanExplanation | None" = None


@dataclass
class RunReport:
    """Algorithm-agnostic execution report (the registry's common currency).

    ``raw`` keeps the algorithm-specific report (a
    :class:`~repro.core.TKIJResult` or a
    :class:`~repro.baselines.BaselineResult`) for callers that need the full
    detail; everything the harness tabulates is available uniformly here.
    """

    algorithm: str
    title: str
    results: list[ResultTuple]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    metrics: list[JobMetrics] = field(default_factory=list)
    explanation: "PlanExplanation | None" = None
    statistics_cached: bool | None = None
    elapsed_seconds: float | None = None
    raw: object | None = None

    @property
    def total_seconds(self) -> float:
        """End-to-end query time (statistics excluded, as in the paper)."""
        if self.elapsed_seconds is not None:
            return self.elapsed_seconds
        return sum(
            seconds for phase, seconds in self.phase_seconds.items() if phase != "statistics"
        )

    @property
    def shuffle_records(self) -> int:
        """Total records shuffled across all Map-Reduce phases."""
        return sum(metrics.shuffle_records for metrics in self.metrics)

    @property
    def shuffle_bytes(self) -> int:
        """Total estimated shuffle bytes across all Map-Reduce phases."""
        return sum(metrics.shuffle_bytes for metrics in self.metrics)

    @property
    def bytes_spilled(self) -> int:
        """Total bytes written to on-disk spill runs across all phases."""
        return sum(metrics.bytes_spilled for metrics in self.metrics)

    @property
    def spill_runs(self) -> int:
        """Total sorted runs spilled to disk across all phases."""
        return sum(metrics.spill_runs for metrics in self.metrics)

    @property
    def shm_segments(self) -> int:
        """Total shared-memory segments created across all phases."""
        return sum(metrics.shm_segments for metrics in self.metrics)

    def describe(self) -> dict[str, Any]:
        """Flat summary used by the experiment reports."""
        summary: dict[str, Any] = {
            "algorithm": self.algorithm,
            "results": float(len(self.results)),
            "total_seconds": self.total_seconds,
            "shuffle_records": float(self.shuffle_records),
            "shuffle_bytes": float(self.shuffle_bytes),
            "bytes_spilled": float(self.bytes_spilled),
            "spill_runs": float(self.spill_runs),
            "shm_segments": float(self.shm_segments),
        }
        summary.update(
            {f"seconds_{phase}": seconds for phase, seconds in self.phase_seconds.items()}
        )
        if self.statistics_cached is not None:
            summary["statistics_cached"] = self.statistics_cached
        if self.explanation is not None:
            summary.update(
                {f"plan_{key}": value for key, value in self.explanation.describe().items()}
            )
        return summary


class Algorithm(ABC):
    """One registered evaluation strategy (see :mod:`repro.plan.registry`).

    Class attributes describe the algorithm to generic callers: ``name`` is the
    registry key, ``title`` the display name used in result tables, ``scored``
    whether the algorithm evaluates the scored semantics of a query (``False``
    for the Boolean baselines, which force parameter set PB).
    """

    name: str = "algorithm"
    title: str = "Algorithm"
    scored: bool = True

    @abstractmethod
    def plan(self, query: RTJQuery, context: ExecutionContext, **knobs: Any) -> ExecutionPlan:
        """Resolve a query into an executable plan (validating the knobs)."""

    @abstractmethod
    def execute(self, plan: ExecutionPlan) -> RunReport:
        """Run a plan produced by :meth:`plan` and report the execution."""

    def run(self, query: RTJQuery, context: ExecutionContext, **knobs: Any) -> RunReport:
        """Convenience: plan then execute in one call."""
        return self.execute(self.plan(query, context, **knobs))

    def plan_knobs(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """The subset of generic CLI/driver options this algorithm understands.

        Generic dispatchers (the CLI's ``run`` experiment) collect options that
        not every algorithm accepts; each algorithm picks out its own here so
        the dispatcher stays free of per-algorithm branches.  The default is to
        ignore everything.
        """
        return {}
