"""The unified algorithm registry.

``REGISTRY`` maps algorithm names to :class:`~repro.plan.Algorithm` instances;
the experiment harness, figure drivers and CLI dispatch exclusively through it,
so adding a new distributed strategy is one ``register`` call — no driver or
CLI change.
"""

from __future__ import annotations

from .algorithm import Algorithm

__all__ = ["REGISTRY", "available_algorithms", "get_algorithm", "register"]

REGISTRY: dict[str, Algorithm] = {}
"""Algorithm name -> registered instance (populated by :mod:`repro.plan.algorithms`)."""


def register(algorithm: Algorithm) -> Algorithm:
    """Register an algorithm under its ``name`` (replacing any previous holder)."""
    if not algorithm.name or algorithm.name == Algorithm.name:
        raise ValueError(f"algorithm {algorithm!r} must define a distinctive name")
    REGISTRY[algorithm.name] = algorithm
    return algorithm


def get_algorithm(name: str) -> Algorithm:
    """Look up a registered algorithm by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(REGISTRY)}"
        ) from None


def available_algorithms() -> list[str]:
    """Sorted names of every registered algorithm."""
    return sorted(REGISTRY)
