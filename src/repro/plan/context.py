"""Execution context shared by every registered algorithm.

:class:`ExecutionContext` bundles what an :class:`~repro.plan.Algorithm` needs
beyond the query itself: the simulated cluster shape, a shared execution
backend (one worker pool amortised across many queries), and the
:class:`StatisticsCache` that makes TKIJ's query-independent phase (a) run once
per (dataset, granularity) and be *incrementally maintained* — via the existing
:func:`repro.core.statistics.update_statistics` — instead of recollected when
collections change.
"""

from __future__ import annotations

import copy
import itertools
import math
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..core.statistics import (
    DatasetStatistics,
    collect_statistics,
    update_statistics,
)
from ..mapreduce import ClusterConfig, ExecutionBackend, create_cluster_backend
from ..temporal.interval import Interval, IntervalCollection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (feedback imports us)
    from .feedback import PlanFeedback

__all__ = ["ExecutionContext", "StatisticsCache", "StatisticsKey", "atomic_pickle_dump"]

CHECKPOINT_KIND = "execution-context"
CHECKPOINT_VERSION = 1
_CACHE_SNAPSHOT_KIND = "statistics-cache"

StatisticsKey = tuple[tuple[str, ...], int]
"""Cache key: (sorted collection names, number of granules)."""

Collector = Callable[[Mapping[str, IntervalCollection], int], DatasetStatistics]


@dataclass
class _CacheEntry:
    """One cached statistics object plus the dataset fingerprint it was built from."""

    statistics: DatasetStatistics
    sizes: dict[str, int]
    time_ranges: dict[str, tuple[float, float]]
    checksums: dict[str, float]
    generation: int = 0


_staging_ids = itertools.count()


def atomic_pickle_dump(path: str | Path, payload: Any) -> None:
    """Pickle ``payload`` to ``path`` via a unique staging sibling + rename.

    The staging name carries the writer's pid and a process-local counter, so
    concurrent checkpointers of the *same* path never interleave write/rename
    on a shared staging file (each rename atomically publishes one complete
    snapshot; last writer wins).  A crash mid-write leaves only a staging
    sibling behind, never a torn ``path``; a failed write cleans its staging
    file up before re-raising.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_staging_ids)}")
    try:
        with open(staging, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(staging, path)
    except BaseException:
        staging.unlink(missing_ok=True)
        raise


def _collection_checksum(collection: IntervalCollection) -> float:
    """Cheap content fingerprint: a weighted sum of every interval's endpoints.

    Catches mutations that preserve both the size and the time range (e.g. one
    interior interval replaced by another); collisions require the endpoint
    sums to cancel exactly, which no plausible edit does.
    """
    return float(collection.starts.sum() + 2.0 * collection.ends.sum())


def _intervals_checksum(intervals: Sequence[Interval]) -> float:
    """The checksum contribution of a batch of intervals."""
    return float(sum(interval.start + 2.0 * interval.end for interval in intervals))


def _checksums_match(recorded: float, current: float) -> bool:
    # Incremental maintenance accumulates float error; compare with tolerance
    # (a real content change moves the sum by whole endpoint magnitudes).
    return math.isclose(recorded, current, rel_tol=1e-9, abs_tol=1e-6)


class StatisticsCache:
    """Reusable results of TKIJ phase (a), keyed by (collection ids, granularity).

    A lookup validates the cached entry against the *current* collections: if a
    collection's size, time range or endpoint checksum drifted without a
    matching :meth:`update` call, the entry is considered stale and dropped —
    so mutated data that happens to share names is not served stale statistics
    (the checksum is a weighted endpoint sum; only an edit whose endpoint sums
    cancel exactly could slip through).  ``hits`` / ``misses`` / ``updates``
    counters let tests and reports assert that phase (a) really was skipped.

    Boundedness: ``max_entries`` (``None`` = unbounded, the historical
    behaviour) caps the cache with LRU eviction — a lookup hit or a fresh
    collection marks the entry most-recently-used, and inserting past the
    bound evicts the least-recently-used entry, counted in ``evictions``.
    This is the multi-tenant churn guard: a serving worker cycling through
    many datasets keeps only the hot ones resident.

    Staleness generations: :meth:`bump_generation` lazily invalidates every
    currently cached entry — entries are stamped with the generation they were
    collected under, and a lookup drops (and counts in ``stale_drops``)
    entries from an older generation.  Use it when collections mutate through
    a channel the per-entry fingerprints cannot see.

    Thread safety: every operation takes an internal re-entrant lock, because
    the serving layer shares one cache across concurrent executor threads.
    :meth:`get_or_collect` holds the lock *through* collection, so two
    sessions racing on the same cold dataset collect phase (a) once — the
    loser waits and hits.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self._entries: OrderedDict[StatisticsKey, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.max_entries = max_entries
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.updates = 0
        self.noop_updates = 0
        self.evictions = 0
        self.stale_drops = 0

    # ------------------------------------------------------------------ basics
    @staticmethod
    def key_for(
        collections: Mapping[str, IntervalCollection], num_granules: int
    ) -> StatisticsKey:
        """The cache key of a dataset at one granularity."""
        return (tuple(sorted(collections)), num_granules)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every cached entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def invalidate(
        self, collections: Mapping[str, IntervalCollection], num_granules: int
    ) -> bool:
        """Drop the entry of one (dataset, granularity), returning whether it existed.

        Used when a caller *wants* phase (a) recollected — e.g. a streaming
        replan after the dataset outgrew the granule boundaries the cached
        matrices were built on.
        """
        with self._lock:
            return (
                self._entries.pop(self.key_for(collections, num_granules), None) is not None
            )

    # ------------------------------------------------------------------ lookup
    def lookup(
        self, collections: Mapping[str, IntervalCollection], num_granules: int
    ) -> DatasetStatistics | None:
        """Cached statistics for this dataset/granularity, or ``None`` (no counter side effects)."""
        with self._lock:
            key = self.key_for(collections, num_granules)
            entry = self._entries.get(key)
            if entry is None:
                return None
            if getattr(entry, "generation", 0) != self.generation:
                # Collected under an older generation; bump_generation() said
                # every such entry can no longer be trusted.
                del self._entries[key]
                self.stale_drops += 1
                return None
            for name, collection in collections.items():
                stale = (
                    entry.sizes.get(name) != len(collection)
                    or entry.time_ranges.get(name) != collection.time_range()
                    or not _checksums_match(
                        entry.checksums.get(name, math.nan), _collection_checksum(collection)
                    )
                )
                if stale:
                    # The dataset drifted without update(); drop the entry.
                    del self._entries[key]
                    self.stale_drops += 1
                    return None
            self._entries.move_to_end(key)
            return entry.statistics

    def get_or_collect(
        self,
        collections: Mapping[str, IntervalCollection],
        num_granules: int,
        collector: Collector | None = None,
    ) -> tuple[DatasetStatistics, bool]:
        """Return ``(statistics, was_cached)``, collecting phase (a) only on a miss."""
        with self._lock:
            statistics = self.lookup(collections, num_granules)
            if statistics is not None:
                self.hits += 1
                return statistics, True
            self.misses += 1
            collector = collector or collect_statistics
            statistics = collector(collections, num_granules)
            self._entries[self.key_for(collections, num_granules)] = _CacheEntry(
                statistics=statistics,
                sizes={name: len(collection) for name, collection in collections.items()},
                time_ranges={
                    name: collection.time_range() for name, collection in collections.items()
                },
                checksums={
                    name: _collection_checksum(collection)
                    for name, collection in collections.items()
                },
                generation=self.generation,
            )
            self._evict_over_bound()
            return statistics, False

    def _evict_over_bound(self) -> None:
        """Evict least-recently-used entries past ``max_entries`` (lock held)."""
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def bump_generation(self) -> int:
        """Lazily invalidate every currently cached entry; returns the new generation.

        Entries are not dropped eagerly: the next lookup of each stale entry
        drops it (counted in ``stale_drops``), so the call is O(1) no matter
        how large the cache is.
        """
        with self._lock:
            self.generation += 1
            return self.generation

    # ----------------------------------------------------------------- updates
    def update(
        self,
        inserted: Mapping[str, Sequence[Interval]] | None = None,
        deleted: Mapping[str, Sequence[Interval]] | None = None,
    ) -> int:
        """Incrementally maintain every cached entry touching the named collections.

        Applies :func:`repro.core.statistics.update_statistics` (paper §3.2) to
        each matching entry — at every cached granularity — and adjusts the
        recorded sizes so subsequent lookups of the updated collections still
        hit.  Call this *after* mutating the collections themselves (intervals
        appended/removed), passing the same interval sequences.  Returns the
        number of entries maintained.

        The ``updates`` counter counts only calls that maintained at least one
        entry; calls whose names matched nothing cached land in
        ``noop_updates`` instead, so counter-based assertions measure real
        maintenance work.

        Note: inserted intervals outside an entry's original time range clamp to
        the border granules (like any out-of-range timestamp), so lookups after
        such an update treat the entry as stale unless the collection's range is
        unchanged.
        """
        with self._lock:
            maintained = 0
            for key, entry in self._entries.items():
                names = set(key[0])
                ins = {n: v for n, v in (inserted or {}).items() if n in names}
                dels = {n: v for n, v in (deleted or {}).items() if n in names}
                if not ins and not dels:
                    continue
                update_statistics(entry.statistics, inserted=ins, deleted=dels)
                for name, intervals in ins.items():
                    entry.sizes[name] = entry.sizes.get(name, 0) + len(intervals)
                    entry.checksums[name] = entry.checksums.get(
                        name, 0.0
                    ) + _intervals_checksum(intervals)
                for name, intervals in dels.items():
                    entry.sizes[name] = entry.sizes.get(name, 0) - len(intervals)
                    entry.checksums[name] = entry.checksums.get(
                        name, 0.0
                    ) - _intervals_checksum(intervals)
                maintained += 1
            if maintained:
                self.updates += 1
            else:
                self.noop_updates += 1
            return maintained

    # ------------------------------------------------------------------ report
    def describe(self) -> dict[str, Any]:
        """Flat counter summary (the serving ``stats`` verb reports this)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "updates": self.updates,
                "noop_updates": self.noop_updates,
                "evictions": self.evictions,
                "stale_drops": self.stale_drops,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "generation": self.generation,
            }

    # ------------------------------------------------------------- checkpoints
    def to_snapshot(self) -> dict[str, Any]:
        """A deep-copied, picklable snapshot of every cached entry.

        Value semantics: incremental :meth:`update` calls on the live cache
        never leak into a snapshot already taken (entries are maintained *in
        place*, so a shallow copy would).
        """
        with self._lock:
            return {
                "kind": _CACHE_SNAPSHOT_KIND,
                "version": CHECKPOINT_VERSION,
                "entries": copy.deepcopy(dict(self._entries)),
                "generation": self.generation,
                "counters": {
                    "hits": self.hits,
                    "misses": self.misses,
                    "updates": self.updates,
                    "noop_updates": self.noop_updates,
                    "evictions": self.evictions,
                    "stale_drops": self.stale_drops,
                },
            }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Replace the cache contents with a :meth:`to_snapshot` payload."""
        if not isinstance(snapshot, Mapping) or snapshot.get("kind") != _CACHE_SNAPSHOT_KIND:
            raise ValueError("not a statistics-cache snapshot")
        with self._lock:
            self._entries = OrderedDict(copy.deepcopy(dict(snapshot["entries"])))
            self.generation = snapshot.get("generation", 0)
            counters = snapshot.get("counters", {})
            self.hits = counters.get("hits", 0)
            self.misses = counters.get("misses", 0)
            self.updates = counters.get("updates", 0)
            self.noop_updates = counters.get("noop_updates", 0)
            self.evictions = counters.get("evictions", 0)
            self.stale_drops = counters.get("stale_drops", 0)
            # A snapshot from an unbounded (or larger) cache must still honour
            # this cache's bound.
            self._evict_over_bound()

    def refresh_fingerprints(
        self, collections: Mapping[str, IntervalCollection]
    ) -> None:
        """Re-record the fingerprints of ``collections`` on every matching entry.

        Needed after an :meth:`update` whose inserted intervals extended a
        collection's time range: the bucket counts stay correct (clamped to the
        border granules, per §3.2) but the staleness fingerprint must follow the
        collection, otherwise the next lookup recollects.
        """
        with self._lock:
            for key, entry in self._entries.items():
                for name in key[0]:
                    if name in collections:
                        entry.time_ranges[name] = collections[name].time_range()
                        entry.checksums[name] = _collection_checksum(collections[name])


@dataclass
class ExecutionContext:
    """Everything an algorithm needs to execute a plan.

    ``cluster`` describes the simulated cluster (including which execution
    backend runs map/reduce tasks); ``backend`` optionally injects an
    already-created backend (the caller keeps ownership), otherwise the context
    lazily creates — and on :meth:`close` releases — its own from the cluster
    config; ``statistics`` is the reusable phase (a) cache shared by every query
    executed in this context.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    backend: ExecutionBackend | None = None
    statistics: StatisticsCache = field(default_factory=StatisticsCache)
    streams: dict[object, object] = field(default_factory=dict)
    """Per-stream evaluator state, keyed by the owning algorithm (opaque to the
    context; see :meth:`stream_state`).  Streaming algorithms park their
    persistent top-k and incremental bookkeeping here so it lives exactly as
    long as the statistics cache it depends on."""
    feedback: "PlanFeedback | None" = None
    """Optional planner feedback bundle (:class:`~repro.plan.PlanFeedback`):
    a plan cache memoizing whole auto plans plus an observed-cost store the
    planner calibrates from.  ``None`` keeps planning purely static.  Shared
    by reference across :meth:`session_view`\\ s, like the statistics cache —
    and deliberately *not* checkpointed: memoized plans are derivable and the
    cost store persists itself (JSON-lines appends) when given a path."""
    _owned_backend: ExecutionBackend | None = field(
        default=None, repr=False, compare=False
    )
    _backend_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def stream_state(self, key: object, factory: Callable[[], object]) -> object:
        """The per-stream state stored under ``key`` (created via ``factory`` once)."""
        if key not in self.streams:
            self.streams[key] = factory()
        return self.streams[key]

    def get_backend(self) -> ExecutionBackend:
        """The shared execution backend (created from the cluster config on first use).

        Built through :func:`repro.mapreduce.create_cluster_backend`, so a
        cluster config carrying speculation knobs or a fault plan shapes every
        algorithm dispatched through this context, not just raw engines.
        Creation is locked: concurrent first callers (serving sessions racing
        on a cold context) get the same pool, never two.
        """
        if self.backend is not None:
            return self.backend
        with self._backend_lock:
            if self._owned_backend is None:
                self._owned_backend = create_cluster_backend(self.cluster)
            return self._owned_backend

    def session_view(
        self,
        cluster: ClusterConfig | None = None,
        backend: ExecutionBackend | None = None,
    ) -> "ExecutionContext":
        """A per-session context sharing this one's warm state.

        The view shares the *same* :class:`StatisticsCache` and ``streams``
        dict (warm phase (a) results and streaming top-k state are amortised
        across sessions) while letting the session override the cluster config
        and/or backend — e.g. a per-request fault plan wrapping the shared
        worker pool in a :class:`~repro.mapreduce.FaultInjectingBackend`
        without the injection leaking into sibling queries.

        With no ``backend`` override the view *borrows* the parent's backend
        (creating the parent's owned pool on demand), so closing a view never
        tears down the shared pool.
        """
        return replace(
            self,
            cluster=cluster or self.cluster,
            backend=backend if backend is not None else self.get_backend(),
            _owned_backend=None,
            _backend_lock=threading.Lock(),
        )

    # ------------------------------------------------------------- checkpoints
    def checkpoint(self, path: str | Path | None = None) -> dict[str, Any]:
        """Snapshot the context's durable query state (and optionally persist it).

        The snapshot captures the statistics cache and every per-stream
        evaluator state — everything a streaming evaluator needs to resume from
        the last committed batch after the process dies.  With ``path`` the
        snapshot is additionally pickled to disk via :func:`atomic_pickle_dump`
        (unique staging sibling, then rename), so a crash *during*
        checkpointing leaves the previous checkpoint intact and concurrent
        checkpointers of one path never tear each other's staging file.
        Cluster shape, worker pools and planner feedback are *not* captured: a
        restored context keeps its own.
        """
        snapshot: dict[str, Any] = {
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "statistics": self.statistics.to_snapshot(),
            "streams": {
                key: state.to_snapshot() if hasattr(state, "to_snapshot") else copy.deepcopy(state)
                for key, state in self.streams.items()
            },
        }
        if path is not None:
            atomic_pickle_dump(path, snapshot)
        return snapshot

    def restore(self, source: "Mapping[str, Any] | str | Path") -> "ExecutionContext":
        """Restore a :meth:`checkpoint` (an in-memory snapshot or a file path).

        Replaces the statistics cache contents and the per-stream states;
        stream-state payloads are rebuilt through
        :meth:`repro.streaming.StreamState.from_snapshot`.  Returns ``self``
        for chaining (``ExecutionContext().restore(path)``).
        """
        if isinstance(source, (str, Path)):
            try:
                with open(source, "rb") as handle:
                    snapshot = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
                # A truncated/corrupted file surfaces as an unpickling or EOF
                # error; report all of them under the one documented contract.
                raise ValueError(f"cannot read checkpoint {str(source)!r}: {error}") from error
        else:
            snapshot = source
        if not isinstance(snapshot, Mapping) or snapshot.get("kind") != CHECKPOINT_KIND:
            raise ValueError("not an execution-context checkpoint")
        if snapshot.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {snapshot.get('version')!r}")
        if "statistics" not in snapshot or "streams" not in snapshot:
            raise ValueError("checkpoint is missing its statistics/streams sections")
        # Imported lazily: repro.streaming imports the plan package at load time.
        from ..streaming.state import STREAM_STATE_KIND, StreamState

        self.statistics.restore(snapshot["statistics"])
        self.streams = {}
        for key, payload in dict(snapshot["streams"]).items():
            if isinstance(payload, Mapping) and payload.get("kind") == STREAM_STATE_KIND:
                self.streams[key] = StreamState.from_snapshot(payload)
            else:
                self.streams[key] = copy.deepcopy(payload)
        return self

    def close(self) -> None:
        """Release the context's own backend workers (injected backends stay up)."""
        if self._owned_backend is not None:
            self._owned_backend.close()
            self._owned_backend = None

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
