"""Merging local top-k results into the final answer (TKIJ phase e).

Each reducer of the join phase emits its local top-k list; a final Map-Reduce job
with a single reduce task merges them and keeps the global top-k.  A direct
in-process helper is provided as well (used by tests and by callers that do not
need the job metrics).
"""

from __future__ import annotations

from functools import partial
from typing import Iterable, Sequence

from ..mapreduce import MapReduceEngine, MapReduceJob, Mapper, Reducer
from ..mapreduce.engine import JobResult
from ..query.graph import ResultTuple

__all__ = ["merge_top_k", "run_merge_job"]


def merge_top_k(result_lists: Iterable[Sequence[ResultTuple]], k: int) -> list[ResultTuple]:
    """Merge several locally-sorted top-k lists into the global top-k.

    Duplicate tuples (same interval ids) are collapsed; ordering is by descending
    score with the interval-id tuple as deterministic tie-break.
    """
    best: dict[tuple[int, ...], ResultTuple] = {}
    for results in result_lists:
        for result in results:
            existing = best.get(result.uids)
            if existing is None or result.score > existing.score:
                best[result.uids] = result
    ordered = sorted(best.values(), key=lambda r: r.sort_key())
    return ordered[:k]


class _MergeMapper(Mapper):
    """Routes every local result to the single merge reducer."""

    def map(self, key, value):
        yield 0, value


class _MergeReducer(Reducer):
    """Keeps the global top-k among all local results."""

    def __init__(self, k: int) -> None:
        self._k = k

    def reduce(self, key, values):
        merged = merge_top_k([values], self._k)
        for result in merged:
            yield "top_k", result


def run_merge_job(
    engine: MapReduceEngine,
    local_results: Sequence[Sequence[ResultTuple]],
    k: int,
) -> tuple[list[ResultTuple], JobResult]:
    """Run the merge phase as a Map-Reduce job and return the global top-k."""
    input_pairs = [
        (reducer_id, result)
        for reducer_id, results in enumerate(local_results)
        for result in results
    ]
    job = MapReduceJob(
        name="tkij-merge",
        mapper_factory=_MergeMapper,
        reducer_factory=partial(_MergeReducer, k),
        num_reducers=1,
    )
    job_result = engine.run(job, input_pairs)
    merged = [value for _, value in job_result.outputs]
    ordered = sorted(merged, key=lambda r: r.sort_key())[:k]
    return ordered, job_result
