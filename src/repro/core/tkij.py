"""The TKIJ query evaluator (the paper's contribution, end to end).

``TKIJ`` wires the phases together exactly as Figure 5 describes:

(a) statistics collection over the input collections (offline, reusable);
(b) TopBuckets: score bounds for bucket combinations and pruning to ``Ω_k,S``;
(c) DistributeTopBuckets: assignment of combinations (and hence buckets) to
    reducers;
(d) a Map-Reduce join job: mappers route every interval to the reducers that were
    assigned its bucket, reducers run the RTJ query locally and emit their top-k;
(e) a final Map-Reduce job merging the local lists into the global top-k.

The returned :class:`TKIJResult` carries the per-phase timings, shuffle and
balance metrics, pruning statistics and per-reducer result quality that the
paper's figures report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Iterator, Mapping

from ..mapreduce import (
    ClusterConfig,
    ExecutionBackend,
    FirstElementPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
)
from ..mapreduce.cluster import JobMetrics
from ..query.graph import ResultTuple, RTJQuery
from ..solver import BranchAndBoundSolver
from ..temporal.interval import Interval, IntervalCollection
from .bounds import CombinationSpace
from .distribution import ASSIGNERS, WorkloadAssignment, assign
from .local_join import LocalJoinConfig, LocalJoinStats, LocalTopKJoin
from .merge import merge_top_k, run_merge_job
from .statistics import (
    BucketKey,
    DatasetStatistics,
    collect_statistics,
    collect_statistics_mapreduce,
)
from .top_buckets import STRATEGIES, TopBucketsResult, TopBucketsSelector

__all__ = ["TKIJ", "TKIJResult"]


@dataclass
class TKIJResult:
    """Full execution report of one RTJ query evaluated by TKIJ."""

    results: list[ResultTuple]
    phase_seconds: dict[str, float]
    top_buckets: TopBucketsResult
    assignment: WorkloadAssignment
    join_metrics: JobMetrics
    merge_metrics: JobMetrics
    local_join_stats: LocalJoinStats
    per_reducer_kth_score: dict[int, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """End-to-end query time (statistics excluded, as in the paper)."""
        return sum(
            seconds for phase, seconds in self.phase_seconds.items() if phase != "statistics"
        )

    @property
    def min_kth_score(self) -> float:
        """Minimum k-th-result score across reducers that produced results (Figure 8c)."""
        scores = [s for s in self.per_reducer_kth_score.values() if s is not None]
        return min(scores) if scores else 0.0

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment harness."""
        summary: dict[str, float] = {f"seconds_{k}": v for k, v in self.phase_seconds.items()}
        summary["seconds_total"] = self.total_seconds
        summary.update(self.top_buckets.describe())
        summary.update(
            {f"join_{k}": v for k, v in self.join_metrics.describe().items()}
        )
        summary["min_kth_score"] = self.min_kth_score
        summary["tuples_scored"] = float(self.local_join_stats.tuples_scored)
        summary["candidates_examined"] = float(self.local_join_stats.candidates_examined)
        summary["combinations_processed"] = float(self.local_join_stats.combinations_processed)
        return summary


class _JoinMapper(Mapper):
    """Routes each interval to every reducer that was assigned its bucket."""

    def __init__(
        self,
        bucket_of: Mapping[str, Mapping[int, BucketKey]],
        routing: Mapping[tuple[str, BucketKey], tuple[int, ...]],
    ) -> None:
        self._bucket_of = bucket_of
        self._routing = routing

    def map(self, key, value):
        vertex, interval = key, value
        bucket = self._bucket_of[vertex].get(interval.uid)
        if bucket is None:
            return
        reducers = self._routing.get((vertex, bucket), ())
        for reducer in reducers:
            self.counters.increment("join.intervals_shuffled")
            yield (reducer, vertex, bucket), interval


class _JoinReducer(Reducer):
    """Collects its buckets, then runs the local top-k join in ``cleanup``."""

    def __init__(self, query: RTJQuery, assignment: WorkloadAssignment, config: LocalJoinConfig) -> None:
        self._query = query
        self._assignment = assignment
        self._config = config
        self._reducer_id: int | None = None
        self._intervals: dict[tuple[str, BucketKey], list[Interval]] = {}

    def reduce(self, key, values):
        reducer_id, vertex, bucket = key
        self._reducer_id = reducer_id
        self._intervals[(vertex, bucket)] = list(values)
        return iter(())

    def cleanup(self) -> Iterator:
        if self._reducer_id is None:
            return
        combinations = self._assignment.combinations_per_reducer.get(self._reducer_id, [])
        if not combinations:
            return
        join = LocalTopKJoin(self._query, self._config)
        results, stats = join.run(combinations, self._intervals, k=self._query.k)
        self.counters.increment("join.tuples_scored", stats.tuples_scored)
        self.counters.increment("join.candidates_examined", stats.candidates_examined)
        self.counters.increment("join.combinations_processed", stats.combinations_processed)
        self.counters.increment("join.combinations_skipped", stats.combinations_skipped)
        yield "local_top_k", (self._reducer_id, results, stats)


@dataclass
class TKIJ:
    """Evaluator for Ranked Temporal Join queries on the simulated Map-Reduce cluster.

    Parameters mirror the paper's experimental knobs: the number of granules of the
    statistics, the TopBuckets strategy, the workload-assignment policy, the
    cluster size (including the execution backend running the map/reduce tasks),
    and the local-join configuration.  ``backend`` injects an already-created
    execution backend so several evaluators can share one worker pool (the
    caller keeps ownership and closes it); left ``None``, the engine creates —
    and on ``close()`` releases — its own from the cluster config.
    """

    num_granules: int = 20
    strategy: str = "loose"
    assigner: str = "dtb"
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    join_config: LocalJoinConfig = field(default_factory=LocalJoinConfig)
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)
    statistics_on_mapreduce: bool = False
    backend: "ExecutionBackend | None" = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.assigner not in ASSIGNERS:
            raise ValueError(f"unknown assigner {self.assigner!r}")
        self.engine = MapReduceEngine(self.cluster, self.backend)

    def close(self) -> None:
        """Release the engine's own backend workers (injected backends stay up)."""
        self.engine.close()

    def __enter__(self) -> "TKIJ":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ phases
    def collect_statistics(
        self, collections: Mapping[str, IntervalCollection]
    ) -> DatasetStatistics:
        """Phase (a): bucket matrices for every collection (query-independent)."""
        if self.statistics_on_mapreduce:
            return collect_statistics_mapreduce(collections, self.num_granules, self.engine)
        return collect_statistics(collections, self.num_granules)

    def execute(
        self, query: RTJQuery, statistics: DatasetStatistics | None = None
    ) -> TKIJResult:
        """Evaluate ``query`` end to end and return results plus the execution report."""
        phase_seconds: dict[str, float] = {}

        started = time.perf_counter()
        if statistics is None:
            statistics = self.collect_statistics(self._collections_by_name(query))
        phase_seconds["statistics"] = time.perf_counter() - started

        # Phase (b): TopBuckets.
        started = time.perf_counter()
        space = CombinationSpace(query, statistics)
        selector = TopBucketsSelector(strategy=self.strategy, solver=self.solver)
        top_buckets = selector.run(query, statistics, space)
        phase_seconds["top_buckets"] = time.perf_counter() - started

        # Phase (c): workload assignment.
        started = time.perf_counter()
        assignment = assign(self.assigner, top_buckets.selected, self.cluster.num_reducers)
        phase_seconds["distribution"] = time.perf_counter() - started

        # Phase (d): distributed join.
        started = time.perf_counter()
        local_results, join_metrics, local_stats = self._run_join_job(
            query, statistics, assignment
        )
        phase_seconds["join"] = time.perf_counter() - started

        # Phase (e): merge.
        started = time.perf_counter()
        ordered_locals = [local_results.get(r, []) for r in range(self.cluster.num_reducers)]
        results, merge_job = run_merge_job(self.engine, ordered_locals, query.k)
        phase_seconds["merge"] = time.perf_counter() - started

        per_reducer_kth = {
            reducer: (results_list[-1].score if results_list else None)
            for reducer, results_list in local_results.items()
        }
        return TKIJResult(
            results=results,
            phase_seconds=phase_seconds,
            top_buckets=top_buckets,
            assignment=assignment,
            join_metrics=join_metrics,
            merge_metrics=merge_job.metrics,
            local_join_stats=local_stats,
            per_reducer_kth_score=per_reducer_kth,
        )

    # ----------------------------------------------------------------- internal
    def _run_join_job(
        self,
        query: RTJQuery,
        statistics: DatasetStatistics,
        assignment: WorkloadAssignment,
    ) -> tuple[dict[int, list[ResultTuple]], JobMetrics, LocalJoinStats]:
        bucket_of: dict[str, dict[int, BucketKey]] = {}
        input_pairs = []
        for vertex in query.vertices:
            collection = query.collections[vertex]
            matrix = statistics.matrix(collection.name)
            per_interval: dict[int, BucketKey] = {}
            for interval in collection:
                per_interval[interval.uid] = matrix.granularity.bucket_of(interval)
                input_pairs.append((vertex, interval))
            bucket_of[vertex] = per_interval

        reducers_of: dict[tuple[str, BucketKey], list[int]] = {}
        for reducer, buckets in assignment.buckets_per_reducer.items():
            for item in buckets:
                reducers_of.setdefault(item, []).append(reducer)
        routing: dict[tuple[str, BucketKey], tuple[int, ...]] = {
            item: tuple(reducers) for item, reducers in reducers_of.items()
        }

        job = MapReduceJob(
            name="tkij-join",
            mapper_factory=partial(_JoinMapper, bucket_of, routing),
            reducer_factory=partial(_JoinReducer, query, assignment, self.join_config),
            partitioner=FirstElementPartitioner(),
            num_reducers=self.cluster.num_reducers,
        )
        job_result = self.engine.run(job, input_pairs)

        local_results: dict[int, list[ResultTuple]] = {}
        merged_stats = LocalJoinStats()
        for key, value in job_result.outputs:
            if key != "local_top_k":
                continue
            reducer_id, results, stats = value
            local_results[reducer_id] = results
            merged_stats.merge(stats)
        return local_results, job_result.metrics, merged_stats

    @staticmethod
    def _collections_by_name(query: RTJQuery) -> dict[str, IntervalCollection]:
        """Distinct collections referenced by the query, keyed by collection name."""
        collections: dict[str, IntervalCollection] = {}
        for vertex in query.vertices:
            collection = query.collections[vertex]
            collections[collection.name] = collection
        return collections
