"""The TKIJ query evaluator (the paper's contribution, end to end).

``TKIJ`` composes the phase operators of :mod:`repro.core.operators` exactly as
Figure 5 describes:

(a) statistics collection over the input collections (offline, reusable);
(b) TopBuckets: score bounds for bucket combinations and pruning to ``Ω_k,S``;
(c) DistributeTopBuckets: assignment of combinations (and hence buckets) to
    reducers;
(d) a Map-Reduce join job: mappers route every interval to the reducers that were
    assigned its bucket, reducers run the RTJ query locally and emit their top-k;
(e) a final Map-Reduce job merging the local lists into the global top-k.

The returned :class:`TKIJResult` carries the per-phase timings, shuffle and
balance metrics, pruning statistics and per-reducer result quality that the
paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..mapreduce import ClusterConfig, ExecutionBackend, MapReduceEngine
from ..mapreduce.cluster import JobMetrics
from ..query.graph import ResultTuple, RTJQuery
from ..solver import BranchAndBoundSolver
from ..temporal.interval import IntervalCollection
from .distribution import ASSIGNERS, WorkloadAssignment
from .local_join import LocalJoinConfig, LocalJoinStats
from .operators import (
    DistributeOp,
    JoinOp,
    MergeOp,
    PhaseOperator,
    PhaseState,
    StatisticsOp,
    TopBucketsOp,
    collections_by_name,
    run_pipeline,
)
from .statistics import (
    DatasetStatistics,
    collect_statistics,
    collect_statistics_mapreduce,
)
from .top_buckets import STRATEGIES, TopBucketsResult

__all__ = ["TKIJ", "TKIJResult"]


@dataclass
class TKIJResult:
    """Full execution report of one RTJ query evaluated by TKIJ."""

    results: list[ResultTuple]
    phase_seconds: dict[str, float]
    top_buckets: TopBucketsResult
    assignment: WorkloadAssignment
    join_metrics: JobMetrics
    merge_metrics: JobMetrics
    local_join_stats: LocalJoinStats
    per_reducer_kth_score: dict[int, float] = field(default_factory=dict)
    plan_explanation: object | None = None
    """A :class:`repro.plan.PlanExplanation` when the configuration was chosen by
    the cost-based planner (``None`` for manually-configured runs)."""

    @property
    def total_seconds(self) -> float:
        """End-to-end query time (statistics excluded, as in the paper)."""
        return sum(
            seconds for phase, seconds in self.phase_seconds.items() if phase != "statistics"
        )

    @property
    def min_kth_score(self) -> float:
        """Minimum k-th-result score across reducers that produced results (Figure 8c)."""
        scores = [s for s in self.per_reducer_kth_score.values() if s is not None]
        return min(scores) if scores else 0.0

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment harness."""
        summary: dict[str, float] = {f"seconds_{k}": v for k, v in self.phase_seconds.items()}
        summary["seconds_total"] = self.total_seconds
        summary.update(self.top_buckets.describe())
        summary.update(
            {f"join_{k}": v for k, v in self.join_metrics.describe().items()}
        )
        summary["min_kth_score"] = self.min_kth_score
        summary["tuples_scored"] = float(self.local_join_stats.tuples_scored)
        summary["candidates_examined"] = float(self.local_join_stats.candidates_examined)
        summary["combinations_processed"] = float(self.local_join_stats.combinations_processed)
        explanation = self.plan_explanation
        if explanation is not None and hasattr(explanation, "describe"):
            summary.update(
                {f"plan_{key}": value for key, value in explanation.describe().items()}
            )
        return summary


@dataclass
class TKIJ:
    """Evaluator for Ranked Temporal Join queries on the simulated Map-Reduce cluster.

    Parameters mirror the paper's experimental knobs: the number of granules of the
    statistics, the TopBuckets strategy, the workload-assignment policy, the
    cluster size (including the execution backend running the map/reduce tasks),
    and the local-join configuration.  ``backend`` injects an already-created
    execution backend so several evaluators can share one worker pool (the
    caller keeps ownership and closes it); left ``None``, the engine creates —
    and on ``close()`` releases — its own from the cluster config.
    """

    num_granules: int = 20
    strategy: str = "loose"
    assigner: str = "dtb"
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    join_config: LocalJoinConfig = field(default_factory=LocalJoinConfig)
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)
    statistics_on_mapreduce: bool = False
    backend: "ExecutionBackend | None" = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.assigner not in ASSIGNERS:
            raise ValueError(f"unknown assigner {self.assigner!r}")
        self.engine = MapReduceEngine(self.cluster, self.backend)

    def close(self) -> None:
        """Release the engine's own backend workers (injected backends stay up)."""
        self.engine.close()

    def __enter__(self) -> "TKIJ":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ phases
    def collect_statistics(
        self, collections: Mapping[str, IntervalCollection]
    ) -> DatasetStatistics:
        """Phase (a): bucket matrices for every collection (query-independent)."""
        if self.statistics_on_mapreduce:
            return collect_statistics_mapreduce(collections, self.num_granules, self.engine)
        return collect_statistics(collections, self.num_granules)

    def operators(
        self, statistics: DatasetStatistics | None = None
    ) -> list[PhaseOperator]:
        """The standard five-operator pipeline for this evaluator's configuration.

        ``statistics`` short-circuits phase (a) with precollected (e.g. cached)
        statistics.  Callers may rearrange, replace or extend the returned list
        before handing it to :func:`repro.core.operators.run_pipeline`.
        """
        return [
            StatisticsOp(self.num_granules, self.statistics_on_mapreduce, statistics),
            TopBucketsOp(self.strategy, self.solver),
            DistributeOp(self.assigner),
            JoinOp(self.join_config),
            MergeOp(),
        ]

    def execute(
        self, query: RTJQuery, statistics: DatasetStatistics | None = None
    ) -> TKIJResult:
        """Evaluate ``query`` end to end and return results plus the execution report."""
        state = PhaseState(
            query=query, engine=self.engine, num_reducers=self.cluster.num_reducers
        )
        run_pipeline(self.operators(statistics), state)
        return TKIJResult(
            results=state.results,
            phase_seconds=state.phase_seconds,
            top_buckets=state.top_buckets,
            assignment=state.assignment,
            join_metrics=state.join_metrics,
            merge_metrics=state.merge_metrics,
            local_join_stats=state.local_join_stats,
            per_reducer_kth_score=state.per_reducer_kth_score(),
        )

    @staticmethod
    def _collections_by_name(query: RTJQuery) -> dict[str, IntervalCollection]:
        """Distinct collections referenced by the query, keyed by collection name."""
        return collections_by_name(query)
