"""Composable phase operators of the TKIJ pipeline.

Each phase of Figure 5 — statistics (a), TopBuckets (b), DistributeTopBuckets
(c), the distributed join (d) and the merge (e) — is one :class:`PhaseOperator`
that reads and writes a shared :class:`PhaseState` blackboard.  The
:class:`~repro.core.tkij.TKIJ` facade composes the five operators into the
standard pipeline, but callers (alternative planners, partial re-runs, future
adaptive strategies) can assemble their own operator sequences:
``run_pipeline`` times every operator into ``state.phase_seconds`` under the
operator's phase name, so any composition produces the same execution report.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterator, Mapping, Sequence

from ..columnar import IntervalColumns
from ..mapreduce import (
    FirstElementPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
    default_record_size,
)
from ..mapreduce.cluster import JobMetrics
from ..query.graph import ResultTuple, RTJQuery
from ..solver import BranchAndBoundSolver
from ..temporal.interval import Interval, IntervalCollection
from .bounds import CombinationSpace
from .distribution import WorkloadAssignment, assign
from .local_join import LocalJoinConfig, LocalJoinStats, LocalTopKJoin
from .merge import run_merge_job
from .statistics import (
    BucketKey,
    DatasetStatistics,
    collect_statistics,
    collect_statistics_mapreduce,
)
from .top_buckets import TopBucketsResult, TopBucketsSelector

__all__ = [
    "PhaseState",
    "PhaseOperator",
    "StatisticsOp",
    "TopBucketsOp",
    "DistributeOp",
    "FilteredDistributeOp",
    "JoinOp",
    "PrunedJoinOp",
    "MergeOp",
    "run_pipeline",
    "collections_by_name",
]


def collections_by_name(query: RTJQuery) -> dict[str, IntervalCollection]:
    """Distinct collections referenced by the query, keyed by collection name."""
    collections: dict[str, IntervalCollection] = {}
    for vertex in query.vertices:
        collection = query.collections[vertex]
        collections[collection.name] = collection
    return collections


@dataclass
class PhaseState:
    """Mutable blackboard threaded through the phase operators of one query.

    Every operator consumes fields produced by its predecessors and fills in its
    own; after the full pipeline the state holds everything a
    :class:`~repro.core.tkij.TKIJResult` reports.
    """

    query: RTJQuery
    engine: MapReduceEngine
    num_reducers: int
    statistics: DatasetStatistics | None = None
    top_buckets: TopBucketsResult | None = None
    assignment: WorkloadAssignment | None = None
    local_results: dict[int, list[ResultTuple]] = field(default_factory=dict)
    join_metrics: JobMetrics | None = None
    merge_metrics: JobMetrics | None = None
    local_join_stats: LocalJoinStats = field(default_factory=LocalJoinStats)
    results: list[ResultTuple] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    pruning: dict[str, int] = field(default_factory=dict)
    """Work-avoidance counters written by the pruning operator variants
    (``combinations_kept``/``combinations_pruned``/``intervals_skipped``)."""

    def per_reducer_kth_score(self) -> dict[int, float | None]:
        """Score of each reducer's local k-th result (``None`` for empty reducers)."""
        return {
            reducer: (results[-1].score if results else None)
            for reducer, results in self.local_results.items()
        }


class PhaseOperator(ABC):
    """One phase of the pipeline; mutates the shared :class:`PhaseState`.

    ``name`` is the phase key under which ``run_pipeline`` records the
    operator's wall-clock time (and therefore the key reported in
    ``TKIJResult.phase_seconds``).
    """

    name: str = "operator"

    @abstractmethod
    def run(self, state: PhaseState) -> None:
        """Execute this phase, reading and writing ``state``."""


def run_pipeline(operators: Sequence[PhaseOperator], state: PhaseState) -> PhaseState:
    """Run operators in order, timing each into ``state.phase_seconds``."""
    for operator in operators:
        started = time.perf_counter()
        operator.run(state)
        state.phase_seconds[operator.name] = time.perf_counter() - started
    return state


# ---------------------------------------------------------------- phase (a)
@dataclass
class StatisticsOp(PhaseOperator):
    """Phase (a): bucket matrices for every collection (query-independent).

    ``precollected`` short-circuits the phase with statistics obtained earlier
    (e.g. from a :class:`~repro.plan.StatisticsCache`), which is how the
    query-independent work is amortised across queries.
    """

    num_granules: int = 20
    on_mapreduce: bool = False
    precollected: DatasetStatistics | None = None

    name = "statistics"

    def run(self, state: PhaseState) -> None:
        if self.precollected is not None:
            state.statistics = self.precollected
            return
        collections = collections_by_name(state.query)
        if self.on_mapreduce:
            state.statistics = collect_statistics_mapreduce(
                collections, self.num_granules, state.engine
            )
        else:
            state.statistics = collect_statistics(collections, self.num_granules)


# ---------------------------------------------------------------- phase (b)
@dataclass
class TopBucketsOp(PhaseOperator):
    """Phase (b): score bounds for bucket combinations and pruning to ``Ω_k,S``."""

    strategy: str = "loose"
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)

    name = "top_buckets"

    def run(self, state: PhaseState) -> None:
        assert state.statistics is not None, "StatisticsOp must run before TopBucketsOp"
        space = CombinationSpace(state.query, state.statistics)
        selector = TopBucketsSelector(strategy=self.strategy, solver=self.solver)
        state.top_buckets = selector.run(state.query, state.statistics, space)


# ---------------------------------------------------------------- phase (c)
@dataclass
class DistributeOp(PhaseOperator):
    """Phase (c): assignment of combinations (and hence buckets) to reducers."""

    assigner: str = "dtb"

    name = "distribution"

    def run(self, state: PhaseState) -> None:
        assert state.top_buckets is not None, "TopBucketsOp must run before DistributeOp"
        state.assignment = assign(
            self.assigner, state.top_buckets.selected, state.num_reducers
        )


@dataclass
class FilteredDistributeOp(DistributeOp):
    """Phase (c) over a pruned candidate subset of ``Ω_k,S``.

    ``keep`` decides per combination whether it can still contribute results the
    caller does not already hold — the streaming evaluator passes a predicate
    keeping only combinations that touch freshly-ingested buckets *and* whose
    score upper bound can crack the current top-k.  Kept/pruned counts land in
    ``state.pruning`` so reports and benchmarks can assert the avoided work.
    """

    keep: Callable[[BucketCombination], bool] | None = None

    name = "distribution"

    def run(self, state: PhaseState) -> None:
        assert state.top_buckets is not None, (
            "TopBucketsOp must run before FilteredDistributeOp"
        )
        selected = state.top_buckets.selected
        kept = selected if self.keep is None else [c for c in selected if self.keep(c)]
        state.pruning["combinations_kept"] = len(kept)
        state.pruning["combinations_pruned"] = len(selected) - len(kept)
        state.assignment = assign(self.assigner, kept, state.num_reducers)


# ---------------------------------------------------------------- phase (d)
class _JoinMapper(Mapper):
    """Routes each interval to every reducer that was assigned its bucket."""

    def __init__(
        self,
        bucket_of: Mapping[str, Mapping[int, BucketKey]],
        routing: Mapping[tuple[str, BucketKey], tuple[int, ...]],
    ) -> None:
        self._bucket_of = bucket_of
        self._routing = routing

    def map(self, key, value):
        vertex, interval = key, value
        bucket = self._bucket_of[vertex].get(interval.uid)
        if bucket is None:
            return
        reducers = self._routing.get((vertex, bucket), ())
        for reducer in reducers:
            self.counters.increment("join.intervals_shuffled")
            yield (reducer, vertex, bucket), interval


class _ColumnarJoinMapper(Mapper):
    """Routes whole per-bucket record batches instead of single intervals.

    The vector and sweep kernels score buckets as numpy record batches, so the
    map input is pre-grouped into one :class:`IntervalColumns` per
    ``(vertex, bucket)`` and the batch travels as a unit — on the process
    backend this pickles dense arrays per bucket (including the sweep kernel's
    endpoint-sorted views, when built) rather than a list of ``Interval``
    objects.  The ``join.intervals_shuffled`` counter still counts intervals
    (not batches), so replication accounting matches the scalar mapper exactly.
    """

    def __init__(self, routing: Mapping[tuple[str, BucketKey], tuple[int, ...]]) -> None:
        self._routing = routing

    def map(self, key, value):
        vertex, bucket = key
        columns: IntervalColumns = value
        for reducer in self._routing.get((vertex, bucket), ()):
            self.counters.increment("join.intervals_shuffled", len(columns))
            yield (reducer, vertex, bucket), columns


def columnar_record_size(key, value) -> int:
    """Shuffle-size estimate of one columnar batch: the intervals it carries.

    Module-level (picklable) so columnar join jobs keep shuffle-volume
    accounting comparable with the per-interval scalar jobs.
    """
    return len(value)


class _JoinReducer(Reducer):
    """Collects its buckets, then runs the local top-k join in ``cleanup``."""

    def __init__(
        self,
        query: RTJQuery,
        assignment: WorkloadAssignment,
        config: LocalJoinConfig,
        initial_threshold: float = 0.0,
    ) -> None:
        self._query = query
        self._assignment = assignment
        self._config = config
        self._initial_threshold = initial_threshold
        self._reducer_id: int | None = None
        self._intervals: dict[
            tuple[str, BucketKey], "list[Interval] | IntervalColumns"
        ] = {}

    def reduce(self, key, values):
        # Bucket contents are canonicalised to uid order: the per-interval
        # shuffle delivers values in map-task emit order (which depends on the
        # mapper count), while columnar jobs ship whole pre-sorted batches.
        # The local join's pruning thresholds evolve with the processing order,
        # so a shared canonical order is what makes work counters identical
        # across kernels — and across cluster shapes.
        reducer_id, vertex, bucket = key
        self._reducer_id = reducer_id
        batch = list(values)
        if batch and all(isinstance(value, IntervalColumns) for value in batch):
            columns = IntervalColumns.concat(batch)
            self._intervals[(vertex, bucket)] = (
                columns.sort_by_uid() if len(batch) > 1 else columns
            )
        else:
            batch.sort(key=lambda interval: interval.uid)
            self._intervals[(vertex, bucket)] = batch
        return iter(())

    def cleanup(self) -> Iterator:
        if self._reducer_id is None:
            return
        combinations = self._assignment.combinations_per_reducer.get(self._reducer_id, [])
        if not combinations:
            return
        join = LocalTopKJoin(self._query, self._config)
        results, stats = join.run(
            combinations,
            self._intervals,
            k=self._query.k,
            initial_threshold=self._initial_threshold,
        )
        self.counters.increment("join.tuples_scored", stats.tuples_scored)
        self.counters.increment("join.candidates_examined", stats.candidates_examined)
        self.counters.increment("join.combinations_processed", stats.combinations_processed)
        self.counters.increment("join.combinations_skipped", stats.combinations_skipped)
        yield "local_top_k", (self._reducer_id, results, stats)


@dataclass
class JoinOp(PhaseOperator):
    """Phase (d): mappers route intervals to their assigned reducers, reducers
    run the RTJ query locally and emit their top-k.

    ``initial_threshold`` seeds every reducer's early-termination floor (see
    :meth:`LocalTopKJoin.run`); the streaming evaluator passes its persistent
    k-th score so reducers never enumerate tuples that cannot improve the
    carried answer.
    """

    join_config: LocalJoinConfig = field(default_factory=LocalJoinConfig)
    initial_threshold: float = 0.0

    name = "join"

    def run(self, state: PhaseState) -> None:
        assert state.statistics is not None and state.assignment is not None, (
            "StatisticsOp and DistributeOp must run before JoinOp"
        )
        assignment = state.assignment

        reducers_of: dict[tuple[str, BucketKey], list[int]] = {}
        for reducer, buckets in assignment.buckets_per_reducer.items():
            for item in buckets:
                reducers_of.setdefault(item, []).append(reducer)
        routing: dict[tuple[str, BucketKey], tuple[int, ...]] = {
            item: tuple(reducers) for item, reducers in reducers_of.items()
        }
        bucket_of, input_pairs = self._route_inputs(state, routing)

        if self.join_config.kernel in ("vector", "sweep"):
            mapper_factory = partial(_ColumnarJoinMapper, routing)
            input_pairs = self._columnar_batches(bucket_of, input_pairs)
            if self.join_config.kernel == "sweep":
                # Endpoint-sorted views are built once per bucket *before* the
                # shuffle and pickle with the batch (IntervalColumns ships them
                # when built), so every replica reducer resolves windows
                # without re-sorting its buckets.
                for _, columns in input_pairs:
                    columns.sorted_views()
            record_size = columnar_record_size
        else:
            mapper_factory = partial(_JoinMapper, bucket_of, routing)
            record_size = default_record_size
        job = MapReduceJob(
            name="tkij-join",
            mapper_factory=mapper_factory,
            reducer_factory=partial(
                _JoinReducer,
                state.query,
                assignment,
                self.join_config,
                self.initial_threshold,
            ),
            partitioner=FirstElementPartitioner(),
            num_reducers=state.num_reducers,
            record_size=record_size,
        )
        job_result = state.engine.run(job, input_pairs)

        local_results: dict[int, list[ResultTuple]] = {}
        merged_stats = LocalJoinStats()
        for key, value in job_result.outputs:
            if key != "local_top_k":
                continue
            reducer_id, results, stats = value
            local_results[reducer_id] = results
            merged_stats.merge(stats)
        state.local_results = local_results
        state.join_metrics = job_result.metrics
        state.local_join_stats = merged_stats

    @staticmethod
    def _columnar_batches(
        bucket_of: Mapping[str, Mapping[int, BucketKey]],
        input_pairs: Sequence[tuple[str, Interval]],
    ) -> list[tuple[tuple[str, BucketKey], IntervalColumns]]:
        """Group the per-interval map input into one record batch per bucket."""
        grouped: dict[tuple[str, BucketKey], list[Interval]] = {}
        for vertex, interval in input_pairs:
            grouped.setdefault(
                (vertex, bucket_of[vertex][interval.uid]), []
            ).append(interval)
        for rows in grouped.values():
            rows.sort(key=lambda interval: interval.uid)
        return [
            (key, IntervalColumns.from_intervals(rows)) for key, rows in grouped.items()
        ]

    def _route_inputs(
        self, state: PhaseState, routing: Mapping[tuple[str, BucketKey], tuple[int, ...]]
    ) -> tuple[dict[str, dict[int, BucketKey]], list[tuple[str, Interval]]]:
        """Per-interval bucket index plus the ``(vertex, interval)`` map input.

        The base operator feeds every interval of every bound collection to the
        map phase (mappers drop the ones whose bucket no reducer was assigned).
        """
        bucket_of: dict[str, dict[int, BucketKey]] = {}
        input_pairs: list[tuple[str, Interval]] = []
        for vertex in state.query.vertices:
            collection = state.query.collections[vertex]
            granularity = state.statistics.matrix(collection.name).granularity
            per_interval: dict[int, BucketKey] = {}
            for interval in collection:
                per_interval[interval.uid] = granularity.bucket_of(interval)
                input_pairs.append((vertex, interval))
            bucket_of[vertex] = per_interval
        return bucket_of, input_pairs


@dataclass
class PrunedJoinOp(JoinOp):
    """Phase (d) variant that never ships intervals of unassigned bucket pairs.

    The base :class:`JoinOp` routes every interval through the map phase and
    lets mappers drop the unassigned ones; when the assignment covers only a
    small candidate subset (the streaming case), that wastes map work and task
    payload on data that cannot reach any reducer.  This variant filters the
    map input to intervals whose ``(vertex, bucket)`` pair some reducer was
    actually assigned, recording the skipped count in
    ``state.pruning["intervals_skipped"]``.
    """

    name = "join"

    def _route_inputs(
        self, state: PhaseState, routing: Mapping[tuple[str, BucketKey], tuple[int, ...]]
    ) -> tuple[dict[str, dict[int, BucketKey]], list[tuple[str, Interval]]]:
        bucket_of: dict[str, dict[int, BucketKey]] = {}
        input_pairs: list[tuple[str, Interval]] = []
        skipped = 0
        for vertex in state.query.vertices:
            collection = state.query.collections[vertex]
            granularity = state.statistics.matrix(collection.name).granularity
            per_interval: dict[int, BucketKey] = {}
            for interval in collection:
                bucket = granularity.bucket_of(interval)
                if (vertex, bucket) not in routing:
                    skipped += 1
                    continue
                per_interval[interval.uid] = bucket
                input_pairs.append((vertex, interval))
            bucket_of[vertex] = per_interval
        state.pruning["intervals_skipped"] = skipped
        return bucket_of, input_pairs


# ---------------------------------------------------------------- phase (e)
@dataclass
class MergeOp(PhaseOperator):
    """Phase (e): a final Map-Reduce job merging the local lists into the top-k."""

    name = "merge"

    def run(self, state: PhaseState) -> None:
        ordered_locals = [
            state.local_results.get(reducer, []) for reducer in range(state.num_reducers)
        ]
        results, merge_job = run_merge_job(state.engine, ordered_locals, state.query.k)
        state.results = results
        state.merge_metrics = merge_job.metrics
