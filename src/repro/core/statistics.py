"""Statistics collection (TKIJ phase a).

Time is partitioned into ``g`` contiguous, uniform granules per collection and a
matrix ``B_i[l][l']`` counts, for every collection ``C_i``, the intervals that
start in granule ``l`` and end in granule ``l'`` (a *bucket*).  This phase is
query-independent and executed once per dataset; every later phase of TKIJ only
consults the matrices.

Two execution paths are provided: a Map-Reduce job (each mapper builds local
matrices for its split, reducers aggregate per collection — exactly the paper's
description, and the path benchmarked by ``bench_statistics_collection``) and a
direct in-process path used when the caller does not care about the job metrics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..mapreduce import ClusterConfig, MapReduceEngine, MapReduceJob, Mapper, Reducer
from ..mapreduce.cluster import JobMetrics
from ..solver.domain import VariableBox
from ..temporal.interval import Interval, IntervalCollection

__all__ = [
    "Granularity",
    "BucketKey",
    "BucketMatrix",
    "DatasetStatistics",
    "bucket_counts",
    "collect_statistics",
    "collect_statistics_mapreduce",
    "update_statistics",
]

BucketKey = tuple[int, int]
"""A bucket identifier: (start granule index, end granule index)."""


@dataclass(frozen=True)
class Granularity:
    """Uniform partitioning of a collection's time range into ``g`` granules."""

    time_min: float
    time_max: float
    num_granules: int

    def __post_init__(self) -> None:
        if self.num_granules <= 0:
            raise ValueError("num_granules must be positive")
        if self.time_max < self.time_min:
            raise ValueError("time_max must not precede time_min")

    @property
    def width(self) -> float:
        """Width of one granule (the whole range when it is degenerate)."""
        span = self.time_max - self.time_min
        return span / self.num_granules if span > 0 else 1.0

    def granule_of(self, timestamp: float) -> int:
        """Index of the granule containing ``timestamp`` (clamped to the range)."""
        if timestamp <= self.time_min:
            return 0
        if timestamp >= self.time_max:
            return self.num_granules - 1
        index = int((timestamp - self.time_min) / self.width)
        return min(index, self.num_granules - 1)

    def granules_of(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`granule_of` over an array of timestamps.

        Uses the same float expression (``int((t - time_min) / width)``, both
        clamps) so every element equals the scalar result exactly.
        """
        timestamps = np.asarray(timestamps, dtype=float)
        indexes = ((timestamps - self.time_min) / self.width).astype(np.int64)
        np.minimum(indexes, self.num_granules - 1, out=indexes)
        # Clamp order mirrors the scalar if-cascade: on a degenerate range a
        # timestamp can satisfy both bounds and the <= time_min branch wins.
        indexes[timestamps >= self.time_max] = self.num_granules - 1
        indexes[timestamps <= self.time_min] = 0
        return indexes

    def granule_range(self, index: int) -> tuple[float, float]:
        """Time range ``[low, high]`` of granule ``index``."""
        if not 0 <= index < self.num_granules:
            raise IndexError(f"granule index {index} out of range")
        low = self.time_min + index * self.width
        high = self.time_min + (index + 1) * self.width
        if index == self.num_granules - 1:
            high = max(high, self.time_max)
        return low, high

    def bucket_of(self, interval: Interval) -> BucketKey:
        """Bucket key of an interval: granules of its start and end."""
        return (self.granule_of(interval.start), self.granule_of(interval.end))

    def bucket_box(self, key: BucketKey) -> VariableBox:
        """Endpoint box of a bucket (the solver's domain for one variable)."""
        start_granule = self.granule_range(key[0])
        end_granule = self.granule_range(key[1])
        return VariableBox.from_granules(start_granule, end_granule)

    @classmethod
    def for_collection(cls, collection: IntervalCollection, num_granules: int) -> "Granularity":
        """Granularity spanning exactly the collection's time range."""
        time_min, time_max = collection.time_range()
        return cls(time_min, time_max, num_granules)


@dataclass
class BucketMatrix:
    """Bucket cardinalities of one collection: ``counts[(l, l')] = |b_{l,l'}|``."""

    collection_name: str
    granularity: Granularity
    counts: dict[BucketKey, int] = field(default_factory=dict)

    def add(self, key: BucketKey, amount: int = 1) -> None:
        """Increment the cardinality of bucket ``key``."""
        self.counts[key] = self.counts.get(key, 0) + amount

    def remove(self, key: BucketKey, amount: int = 1) -> None:
        """Decrement the cardinality of bucket ``key`` (dropping it when it reaches zero)."""
        current = self.counts.get(key, 0)
        if current < amount:
            raise ValueError(
                f"bucket {key} of {self.collection_name!r} holds {current} intervals, "
                f"cannot remove {amount}"
            )
        remaining = current - amount
        if remaining == 0:
            del self.counts[key]
        else:
            self.counts[key] = remaining

    def count(self, key: BucketKey) -> int:
        """Cardinality of bucket ``key`` (0 when empty)."""
        return self.counts.get(key, 0)

    def nonempty_buckets(self) -> list[BucketKey]:
        """Keys of buckets containing at least one interval, in sorted order."""
        return sorted(key for key, value in self.counts.items() if value > 0)

    def total(self) -> int:
        """Number of intervals accounted for (should equal the collection size)."""
        return sum(self.counts.values())

    def bucket_box(self, key: BucketKey) -> VariableBox:
        """Endpoint box of bucket ``key``."""
        return self.granularity.bucket_box(key)

    def __iter__(self) -> Iterator[tuple[BucketKey, int]]:
        return iter(sorted(self.counts.items()))


@dataclass
class DatasetStatistics:
    """Bucket matrices of every collection of a dataset, plus collection metadata."""

    matrices: dict[str, BucketMatrix]
    num_granules: int
    average_lengths: dict[str, float] = field(default_factory=dict)
    collection_metrics: JobMetrics | None = None

    def matrix(self, collection_name: str) -> BucketMatrix:
        """Bucket matrix of one collection."""
        return self.matrices[collection_name]

    def bucket_of(self, collection_name: str, interval: Interval) -> BucketKey:
        """Bucket key an interval of ``collection_name`` falls into."""
        return self.matrices[collection_name].granularity.bucket_of(interval)

    def nonempty_bucket_count(self, collection_name: str) -> int:
        """Number of non-empty buckets of one collection (reported in §4.3.2)."""
        return len(self.matrices[collection_name].nonempty_buckets())


def bucket_counts(
    granularity: Granularity, starts: np.ndarray, ends: np.ndarray
) -> dict[BucketKey, int]:
    """Bucket histogram of a batch: one ``bincount`` instead of a Python loop.

    Start and end granule indexes are computed with the vectorized
    :meth:`Granularity.granules_of` (elementwise-identical to the scalar path),
    flattened to ``start * g + end`` and counted in one pass; only non-empty
    buckets appear in the returned mapping, like incremental accumulation.
    """
    if len(starts) == 0:
        return {}
    num_granules = granularity.num_granules
    flat = granularity.granules_of(starts) * num_granules + granularity.granules_of(ends)
    counts = np.bincount(flat, minlength=num_granules * num_granules)
    return {
        (int(key) // num_granules, int(key) % num_granules): int(counts[key])
        for key in np.flatnonzero(counts)
    }


def _batch_arrays(intervals: Iterable[Interval]) -> tuple[np.ndarray, np.ndarray]:
    """Start/end columns of an interval batch (materialising iterators once)."""
    batch: Sequence[Interval] = (
        intervals if isinstance(intervals, (list, tuple)) else list(intervals)
    )
    starts = np.fromiter((x.start for x in batch), dtype=float, count=len(batch))
    ends = np.fromiter((x.end for x in batch), dtype=float, count=len(batch))
    return starts, ends


def update_statistics(
    statistics: DatasetStatistics,
    inserted: Mapping[str, Iterable[Interval]] | None = None,
    deleted: Mapping[str, Iterable[Interval]] | None = None,
) -> DatasetStatistics:
    """Incrementally maintain statistics after insertions/deletions (paper §3.2).

    The paper notes that updates are handled "by applying the same process on the
    inserted/deleted data": new intervals are bucketed with the existing granule
    boundaries and added to the matrices, deleted ones are subtracted.  Granule
    boundaries are kept fixed (timestamps outside the original range clamp to the
    first/last granule, like any out-of-range timestamp).  The statistics object is
    updated in place and returned; average lengths are not recomputed because they
    only parameterise the extended predicates built from the *collections*.

    Batches are bucketed with the vectorized histogram (one ``bincount`` per
    collection), applying whole per-bucket amounts at once.
    """
    for name, intervals in (inserted or {}).items():
        matrix = statistics.matrix(name)
        starts, ends = _batch_arrays(intervals)
        for key, amount in bucket_counts(matrix.granularity, starts, ends).items():
            matrix.add(key, amount)
    for name, intervals in (deleted or {}).items():
        matrix = statistics.matrix(name)
        starts, ends = _batch_arrays(intervals)
        for key, amount in bucket_counts(matrix.granularity, starts, ends).items():
            matrix.remove(key, amount)
    return statistics


def collect_statistics(
    collections: Mapping[str, IntervalCollection], num_granules: int
) -> DatasetStatistics:
    """Direct in-process statistics collection (no Map-Reduce job).

    The per-granule accumulation is batched: the collection's cached start/end
    columns go through one vectorized histogram per collection instead of one
    ``granule_of`` pair per interval.
    """
    matrices: dict[str, BucketMatrix] = {}
    average_lengths: dict[str, float] = {}
    for name, collection in collections.items():
        granularity = Granularity.for_collection(collection, num_granules)
        matrices[name] = BucketMatrix(
            name, granularity, bucket_counts(granularity, collection.starts, collection.ends)
        )
        average_lengths[name] = collection.average_length()
    return DatasetStatistics(matrices, num_granules, average_lengths)


class _StatisticsMapper(Mapper):
    """Maps each interval to a partial count for its (collection, bucket)."""

    def __init__(self, granularities: dict[str, Granularity]) -> None:
        self._granularities = granularities

    def map(self, key, value):
        collection_name, interval = key, value
        bucket = self._granularities[collection_name].bucket_of(interval)
        self.counters.increment("statistics.intervals_read")
        yield (collection_name, bucket), 1


class _StatisticsReducer(Reducer):
    """Sums partial counts; one output record per (collection, bucket)."""

    def reduce(self, key, values):
        yield key, sum(values)


def collect_statistics_mapreduce(
    collections: Mapping[str, IntervalCollection],
    num_granules: int,
    engine: MapReduceEngine | None = None,
) -> DatasetStatistics:
    """Statistics collection as a Map-Reduce job (the paper's phase a).

    Mappers read a fraction of every collection and emit per-bucket partial counts;
    reducers aggregate them.  Granule boundaries are derived from the collection
    time ranges (broadcast to mappers, as a real deployment would do through the
    distributed cache).
    """
    engine = engine or MapReduceEngine(ClusterConfig())
    granularities = {
        name: Granularity.for_collection(collection, num_granules)
        for name, collection in collections.items()
    }
    input_pairs = [
        (name, interval) for name, collection in collections.items() for interval in collection
    ]
    job = MapReduceJob(
        name="tkij-statistics",
        mapper_factory=partial(_StatisticsMapper, granularities),
        reducer_factory=_StatisticsReducer,
        num_reducers=min(len(collections), engine.cluster.num_reducers) or 1,
    )
    result = engine.run(job, input_pairs)

    matrices = {
        name: BucketMatrix(name, granularity) for name, granularity in granularities.items()
    }
    grouped: dict[str, dict[BucketKey, int]] = defaultdict(dict)
    for (collection_name, bucket), count in result.outputs:
        grouped[collection_name][bucket] = count
    for name, buckets in grouped.items():
        matrices[name].counts.update(buckets)
    average_lengths = {
        name: collection.average_length() for name, collection in collections.items()
    }
    return DatasetStatistics(
        matrices, num_granules, average_lengths, collection_metrics=result.metrics
    )
