"""Workload assignment of bucket combinations to reducers (TKIJ phase c).

``DistributeTopBuckets`` (DTB, Algorithms 3-4) hands out the selected combinations
``Ω_k,S`` so that every reducer receives a fair share of *high-scoring* work — the
key to early termination in top-k processing — while opportunistically limiting
input replication and capping worst-case output load.  The paper compares DTB to an
LPT-style assignment (largest number of results first, least-loaded reducer); both
are implemented here, plus a plain round-robin used as an extra ablation arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .bounds import BucketCombination
from .statistics import BucketKey

__all__ = ["WorkloadAssignment", "distribute_top_buckets", "lpt_assignment", "round_robin_assignment", "ASSIGNERS", "assign"]

VertexBucket = tuple[str, BucketKey]


@dataclass
class WorkloadAssignment:
    """The outcome of a workload-assignment policy.

    ``combinations_per_reducer`` drives the local joins; ``buckets_per_reducer``
    (the ``M`` relation of Algorithm 3) determines which reducers each input
    interval must be replicated to, and therefore the shuffle cost.
    """

    num_reducers: int
    combinations_per_reducer: dict[int, list[BucketCombination]] = field(default_factory=dict)
    buckets_per_reducer: dict[int, set[VertexBucket]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for reducer in range(self.num_reducers):
            self.combinations_per_reducer.setdefault(reducer, [])
            self.buckets_per_reducer.setdefault(reducer, set())

    # ----------------------------------------------------------------- updates
    def assign(self, combination: BucketCombination, reducer: int) -> None:
        """Assign one combination (and its buckets) to ``reducer``."""
        self.combinations_per_reducer[reducer].append(combination)
        for item in combination.bucket_items():
            self.buckets_per_reducer[reducer].add(item)

    # ----------------------------------------------------------------- queries
    def reducers_of_bucket(self, vertex: str, bucket: BucketKey) -> list[int]:
        """Reducers that must receive the intervals of ``(vertex, bucket)``."""
        return [
            reducer
            for reducer, buckets in self.buckets_per_reducer.items()
            if (vertex, bucket) in buckets
        ]

    def results_per_reducer(self) -> dict[int, int]:
        """Worst-case number of candidate results each reducer may evaluate."""
        return {
            reducer: sum(c.nb_res for c in combos)
            for reducer, combos in self.combinations_per_reducer.items()
        }

    def replication_cost(self, bucket_counts: Mapping[VertexBucket, int]) -> int:
        """Total shuffled records: every bucket's cardinality times its replication."""
        cost = 0
        for buckets in self.buckets_per_reducer.values():
            for item in buckets:
                cost += bucket_counts.get(item, 0)
        return cost

    def describe(self, bucket_counts: Mapping[VertexBucket, int] | None = None) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        per_reducer = self.results_per_reducer()
        loads = list(per_reducer.values())
        total = sum(loads)
        summary = {
            "assigned_combinations": float(
                sum(len(c) for c in self.combinations_per_reducer.values())
            ),
            "max_results_per_reducer": float(max(loads) if loads else 0),
            "avg_results_per_reducer": float(total / len(loads)) if loads else 0.0,
        }
        if bucket_counts is not None:
            summary["shuffle_replication"] = float(self.replication_cost(bucket_counts))
        return summary


# --------------------------------------------------------------------------- DTB
def distribute_top_buckets(
    combinations: Sequence[BucketCombination], num_reducers: int
) -> WorkloadAssignment:
    """Algorithm 3 (DistributeTopBuckets).

    Combinations are visited in descending order of score upper bound so that the
    round-robin over least-loaded reducers spreads the likely high-scoring work
    evenly; ``getReducer`` (Algorithm 4) breaks ties in favour of the reducer that
    already holds the largest part of the combination's buckets, which minimises
    the additional input that has to be shuffled.
    """
    if num_reducers <= 0:
        raise ValueError("num_reducers must be positive")
    assignment = WorkloadAssignment(num_reducers)
    ordered = sorted(combinations, key=lambda c: (-c.upper_bound, c.key()))
    total_results = sum(c.nb_res for c in ordered)
    avg_results = total_results / num_reducers if num_reducers else 0.0

    results_assigned = {reducer: 0 for reducer in range(num_reducers)}
    for combination in ordered:
        reducer = _get_reducer(combination, assignment, results_assigned, avg_results)
        assignment.assign(combination, reducer)
        results_assigned[reducer] += combination.nb_res
    return assignment


def _get_reducer(
    combination: BucketCombination,
    assignment: WorkloadAssignment,
    results_assigned: Mapping[int, int],
    avg_results: float,
) -> int:
    """Algorithm 4 (getReducer).

    Reducers already holding more than twice the average number of results are
    discarded (worst-case output cap); among the remaining reducers with the fewest
    assigned combinations, the one that needs the least *new* input for this
    combination wins.  The paper describes the tie-break as favouring the reducer
    "already assigned the largest fraction of the current ω", i.e. the one whose
    additional input cost is smallest; ``inCost`` is therefore computed over the
    buckets the reducer does *not* yet hold.
    """
    num_reducers = assignment.num_reducers
    cap = 2.0 * avg_results

    def eligible(reducer: int) -> bool:
        # When every reducer exceeds the cap (e.g. a single huge combination),
        # fall back to considering all of them rather than failing.
        return results_assigned[reducer] < cap or cap == 0.0

    candidates = [r for r in range(num_reducers) if eligible(r)]
    if not candidates:
        candidates = list(range(num_reducers))

    min_combos = min(len(assignment.combinations_per_reducer[r]) for r in candidates)
    tied = [r for r in candidates if len(assignment.combinations_per_reducer[r]) == min_combos]

    best_reducer = tied[0]
    best_cost = None
    for reducer in tied:
        cost = _in_cost(reducer, combination, assignment)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_reducer = reducer
    return best_reducer


def _in_cost(
    reducer: int, combination: BucketCombination, assignment: WorkloadAssignment
) -> int:
    """Additional input records reducer ``reducer`` would receive for this combination."""
    held = assignment.buckets_per_reducer[reducer]
    cost = 0
    for vertex, bucket in combination.bucket_items():
        if (vertex, bucket) not in held:
            # Bucket cardinality is folded into nb_res; use per-bucket weight 1 when
            # cardinalities are unknown, otherwise the caller's counts dominate the
            # replication metric reported by WorkloadAssignment.replication_cost.
            cost += 1
    return cost


# --------------------------------------------------------------------------- LPT
def lpt_assignment(
    combinations: Sequence[BucketCombination], num_reducers: int
) -> WorkloadAssignment:
    """The LPT baseline of Section 4.2.2.

    Combinations are treated as tasks whose processing time is their result count;
    they are assigned in descending ``nbRes`` order to the reducer with the least
    total results so far.  Scores are ignored entirely.
    """
    if num_reducers <= 0:
        raise ValueError("num_reducers must be positive")
    assignment = WorkloadAssignment(num_reducers)
    ordered = sorted(combinations, key=lambda c: (-c.nb_res, c.key()))
    load = {reducer: 0 for reducer in range(num_reducers)}
    for combination in ordered:
        reducer = min(load, key=lambda r: (load[r], r))
        assignment.assign(combination, reducer)
        load[reducer] += combination.nb_res
    return assignment


# ------------------------------------------------------------------- round robin
def round_robin_assignment(
    combinations: Sequence[BucketCombination], num_reducers: int
) -> WorkloadAssignment:
    """Naive round-robin in input order (ablation arm, not in the paper)."""
    if num_reducers <= 0:
        raise ValueError("num_reducers must be positive")
    assignment = WorkloadAssignment(num_reducers)
    for index, combination in enumerate(combinations):
        assignment.assign(combination, index % num_reducers)
    return assignment


ASSIGNERS = {
    "dtb": distribute_top_buckets,
    "lpt": lpt_assignment,
    "round-robin": round_robin_assignment,
}
"""Named workload-assignment policies selectable on the TKIJ runner."""


def assign(
    name: str, combinations: Sequence[BucketCombination], num_reducers: int
) -> WorkloadAssignment:
    """Dispatch to a named assignment policy."""
    if name not in ASSIGNERS:
        raise ValueError(f"unknown assigner {name!r}; expected one of {sorted(ASSIGNERS)}")
    return ASSIGNERS[name](combinations, num_reducers)
