"""TKIJ core: statistics, bounds, TopBuckets, workload distribution, join, merge."""

from .bounds import BoundsEstimator, BucketCombination, CombinationSpace, PairwiseBoundsCache
from .distribution import (
    ASSIGNERS,
    WorkloadAssignment,
    assign,
    distribute_top_buckets,
    lpt_assignment,
    round_robin_assignment,
)
from .local_join import KERNELS, LocalJoinConfig, LocalJoinStats, LocalTopKJoin
from .merge import merge_top_k, run_merge_job
from .operators import (
    DistributeOp,
    FilteredDistributeOp,
    JoinOp,
    MergeOp,
    PhaseOperator,
    PhaseState,
    PrunedJoinOp,
    StatisticsOp,
    TopBucketsOp,
    collections_by_name,
    run_pipeline,
)
from .statistics import (
    BucketKey,
    BucketMatrix,
    DatasetStatistics,
    Granularity,
    collect_statistics,
    collect_statistics_mapreduce,
    update_statistics,
)
from .tkij import TKIJ, TKIJResult
from .top_buckets import (
    STRATEGIES,
    TopBucketsResult,
    TopBucketsSelector,
    get_top_buckets,
)

__all__ = [
    "BoundsEstimator",
    "BucketCombination",
    "CombinationSpace",
    "PairwiseBoundsCache",
    "ASSIGNERS",
    "WorkloadAssignment",
    "assign",
    "distribute_top_buckets",
    "lpt_assignment",
    "round_robin_assignment",
    "KERNELS",
    "LocalJoinConfig",
    "LocalJoinStats",
    "LocalTopKJoin",
    "merge_top_k",
    "run_merge_job",
    "DistributeOp",
    "FilteredDistributeOp",
    "JoinOp",
    "MergeOp",
    "PhaseOperator",
    "PhaseState",
    "PrunedJoinOp",
    "StatisticsOp",
    "TopBucketsOp",
    "collections_by_name",
    "run_pipeline",
    "BucketKey",
    "BucketMatrix",
    "DatasetStatistics",
    "Granularity",
    "collect_statistics",
    "collect_statistics_mapreduce",
    "update_statistics",
    "TKIJ",
    "TKIJResult",
    "STRATEGIES",
    "TopBucketsResult",
    "TopBucketsSelector",
    "get_top_buckets",
]
