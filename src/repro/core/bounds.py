"""Bucket combinations and their score bounds (TKIJ phase b, part 1).

A *bucket combination* ``ω = (b_1, ..., b_n)`` picks one bucket per query vertex.
Its cardinality ``ω.nbRes`` is the product of the bucket cardinalities and its
score bounds ``ω.LB``/``ω.UB`` bracket the aggregate score of every result tuple
that can be formed from it (Definition 1).  This module enumerates combinations
and computes their bounds, either per edge (exact per pair of buckets, aggregated
through the monotone function — the *loose* bounds) or jointly over all vertices
with the branch-and-bound solver (the *tight* bounds of brute-force / two-phase).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, MutableMapping, Sequence

from ..query.graph import RTJQuery
from ..solver import AggregateObjective, BranchAndBoundSolver, DomainSet, EdgeObjective
from ..solver.domain import VariableBox
from .statistics import BucketKey, DatasetStatistics

__all__ = [
    "BucketCombination",
    "CombinationSpace",
    "PairwiseBoundsCache",
    "BoundsEstimator",
]


@dataclass(frozen=True)
class BucketCombination:
    """One bucket per query vertex, with cardinality and score bounds."""

    vertices: tuple[str, ...]
    buckets: tuple[BucketKey, ...]
    nb_res: int
    lower_bound: float = 0.0
    upper_bound: float = 1.0
    edge_bounds: tuple[tuple[float, float], ...] = ()

    def bucket_of(self, vertex: str) -> BucketKey:
        """Bucket assigned to ``vertex`` in this combination."""
        return self.buckets[self.vertices.index(vertex)]

    def bucket_items(self) -> list[tuple[str, BucketKey]]:
        """``(vertex, bucket)`` pairs of the combination."""
        return list(zip(self.vertices, self.buckets))

    def with_bounds(
        self,
        lower_bound: float,
        upper_bound: float,
        edge_bounds: Sequence[tuple[float, float]] | None = None,
    ) -> "BucketCombination":
        """Copy with (re)computed bounds."""
        return replace(
            self,
            lower_bound=lower_bound,
            upper_bound=upper_bound,
            edge_bounds=tuple(edge_bounds) if edge_bounds is not None else self.edge_bounds,
        )

    def key(self) -> tuple[tuple[str, BucketKey], ...]:
        """Hashable identity of the combination (vertex/bucket pairs)."""
        return tuple(zip(self.vertices, self.buckets))


class CombinationSpace:
    """Enumerates the bucket-combination search space ``Ω`` of a query.

    Only non-empty buckets participate: a combination with an empty bucket cannot
    produce results.  The per-vertex bucket lists and boxes are cached so that the
    strategies and the distribution phase can reuse them.
    """

    def __init__(self, query: RTJQuery, statistics: DatasetStatistics) -> None:
        self.query = query
        self.statistics = statistics
        self._buckets_per_vertex: dict[str, list[BucketKey]] = {}
        self._counts: dict[tuple[str, BucketKey], int] = {}
        self._boxes: dict[tuple[str, BucketKey], VariableBox] = {}
        for vertex in query.vertices:
            collection_name = query.collections[vertex].name
            matrix = statistics.matrix(collection_name)
            keys = matrix.nonempty_buckets()
            self._buckets_per_vertex[vertex] = keys
            for key in keys:
                self._counts[(vertex, key)] = matrix.count(key)
                self._boxes[(vertex, key)] = matrix.bucket_box(key)

    # ------------------------------------------------------------------ access
    def buckets_of(self, vertex: str) -> list[BucketKey]:
        """Non-empty buckets available for ``vertex``."""
        return self._buckets_per_vertex[vertex]

    def count(self, vertex: str, bucket: BucketKey) -> int:
        """Cardinality of ``bucket`` for ``vertex``'s collection."""
        return self._counts[(vertex, bucket)]

    def box(self, vertex: str, bucket: BucketKey) -> VariableBox:
        """Endpoint box of ``bucket`` for ``vertex``'s collection."""
        return self._boxes[(vertex, bucket)]

    def size(self) -> int:
        """|Ω|: the number of combinations that would be enumerated."""
        size = 1
        for vertex in self.query.vertices:
            size *= len(self._buckets_per_vertex[vertex])
        return size

    # ------------------------------------------------------------- enumeration
    def enumerate(self) -> Iterator[BucketCombination]:
        """Yield every combination of non-empty buckets (without bounds)."""
        vertices = self.query.vertices
        bucket_lists = [self._buckets_per_vertex[vertex] for vertex in vertices]
        for buckets in itertools.product(*bucket_lists):
            nb_res = 1
            for vertex, bucket in zip(vertices, buckets):
                nb_res *= self._counts[(vertex, bucket)]
            yield BucketCombination(vertices, tuple(buckets), nb_res)

    def domain_set(self, combination: BucketCombination) -> DomainSet:
        """Solver domains of a combination (one box per query vertex)."""
        boxes = {
            vertex: self._boxes[(vertex, bucket)]
            for vertex, bucket in combination.bucket_items()
        }
        return DomainSet.from_mapping(boxes)


class PairwiseBoundsCache:
    """Exact score bounds of (edge, bucket pair) combinations — the loose primitives.

    For a single edge the comparator ranges over a pair of boxes are exact per
    conjunct, so no branching is needed; results are memoised because the same
    bucket pair is shared by many combinations.

    ``shared`` injects an externally-owned memo dictionary.  Bucket boxes are a
    pure function of the granularity, so as long as the granule boundaries stay
    fixed the same memo can be carried across many cache instances — the
    streaming evaluator reuses one memo for every batch of a stream, making the
    per-batch bound computation incremental too.
    """

    def __init__(
        self,
        query: RTJQuery,
        space: CombinationSpace,
        shared: MutableMapping[tuple[int, BucketKey, BucketKey], tuple[float, float]]
        | None = None,
    ) -> None:
        self.query = query
        self.space = space
        self._edge_objectives = [
            EdgeObjective.from_edge(edge.source, edge.target, edge.predicate)
            for edge in query.edges
        ]
        self._cache: MutableMapping[
            tuple[int, BucketKey, BucketKey], tuple[float, float]
        ] = shared if shared is not None else {}
        self.pairs_computed = 0

    def edge_objective(self, edge_index: int) -> EdgeObjective:
        """Renamed predicate objective of one query edge."""
        return self._edge_objectives[edge_index]

    def bounds(
        self, edge_index: int, source_bucket: BucketKey, target_bucket: BucketKey
    ) -> tuple[float, float]:
        """Exact (LB, UB) of one edge's score over a pair of buckets."""
        cache_key = (edge_index, source_bucket, target_bucket)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        edge = self.query.edges[edge_index]
        domains = DomainSet.from_mapping({
            edge.source: self.space.box(edge.source, source_bucket),
            edge.target: self.space.box(edge.target, target_bucket),
        })
        bounds = self._edge_objectives[edge_index].score_range(domains.endpoint_domains())
        self._cache[cache_key] = bounds
        self.pairs_computed += 1
        return bounds

    def precompute_all_pairs(self) -> int:
        """Compute bounds for every bucket pair of every edge (Algorithm 2, lines 1-3)."""
        for edge_index, edge in enumerate(self.query.edges):
            for source_bucket in self.space.buckets_of(edge.source):
                for target_bucket in self.space.buckets_of(edge.target):
                    self.bounds(edge_index, source_bucket, target_bucket)
        return self.pairs_computed


@dataclass
class BoundsEstimator:
    """Computes loose (pairwise) and tight (joint) bounds of bucket combinations.

    ``shared_pairwise`` optionally injects a persistent memo for the pairwise
    bounds (see :class:`PairwiseBoundsCache`); sound only while the granule
    boundaries of the statistics stay fixed.
    """

    query: RTJQuery
    space: CombinationSpace
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)
    shared_pairwise: MutableMapping[
        tuple[int, BucketKey, BucketKey], tuple[float, float]
    ] | None = None

    def __post_init__(self) -> None:
        self.pairwise = PairwiseBoundsCache(self.query, self.space, self.shared_pairwise)
        self._objective = AggregateObjective(
            edges=tuple(
                EdgeObjective.from_edge(edge.source, edge.target, edge.predicate)
                for edge in self.query.edges
            ),
            aggregation=self.query.aggregation,
        )

    # ------------------------------------------------------------------ bounds
    def loose_bounds(self, combination: BucketCombination) -> BucketCombination:
        """Bounds from per-edge pairwise bounds aggregated through S (loose strategy)."""
        edge_bounds: list[tuple[float, float]] = []
        for edge_index, edge in enumerate(self.query.edges):
            source_bucket = combination.bucket_of(edge.source)
            target_bucket = combination.bucket_of(edge.target)
            edge_bounds.append(self.pairwise.bounds(edge_index, source_bucket, target_bucket))
        lower = self.query.aggregation.lower_bound([b[0] for b in edge_bounds])
        upper = self.query.aggregation.upper_bound([b[1] for b in edge_bounds])
        return combination.with_bounds(lower, upper, edge_bounds)

    def tight_bounds(self, combination: BucketCombination) -> BucketCombination:
        """Joint bounds over all vertices via branch-and-bound (brute-force strategy).

        Per-edge bounds are refreshed with the pairwise cache so that the local join
        can derive residual thresholds per edge.
        """
        domains = self.space.domain_set(combination)
        lower, upper = self.solver.bounds(self._objective, domains)
        edge_bounds: list[tuple[float, float]] = []
        for edge_index, edge in enumerate(self.query.edges):
            source_bucket = combination.bucket_of(edge.source)
            target_bucket = combination.bucket_of(edge.target)
            edge_bounds.append(self.pairwise.bounds(edge_index, source_bucket, target_bucket))
        # Joint bounds can only be tighter than (or equal to) the aggregated
        # pairwise bounds; guard against solver budget artefacts.
        loose_lower = self.query.aggregation.lower_bound([b[0] for b in edge_bounds])
        loose_upper = self.query.aggregation.upper_bound([b[1] for b in edge_bounds])
        lower = max(lower, loose_lower)
        upper = min(upper, loose_upper)
        if lower > upper:
            lower = loose_lower
            upper = loose_upper
        return combination.with_bounds(lower, upper, edge_bounds)

    @property
    def objective(self) -> AggregateObjective:
        """The aggregate objective (shared with the distribution/join phases)."""
        return self._objective
