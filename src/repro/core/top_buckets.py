"""TopBuckets: pruning the bucket-combination space (TKIJ phase b, part 2).

``getTopBuckets`` (Algorithm 1) keeps the subset ``Ω_k,S`` of combinations that is
sufficient to answer the query exactly: every pruned combination is dominated by
retained combinations holding at least ``k`` results with higher (or equal) scores
(Definition 2).  Three strategies trade bound tightness against solver work
(Algorithm 2):

* ``brute-force`` — joint (tight) bounds for every combination;
* ``loose``       — pairwise bounds per edge, aggregated; a single pruning pass;
* ``two-phase``   — loose pruning first, then tight bounds for the survivors and a
  second pruning pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..query.graph import RTJQuery
from ..solver import BranchAndBoundSolver
from .bounds import BoundsEstimator, BucketCombination, CombinationSpace
from .statistics import DatasetStatistics

__all__ = ["get_top_buckets", "TopBucketsResult", "TopBucketsSelector", "STRATEGIES"]

STRATEGIES = ("brute-force", "loose", "two-phase")


def get_top_buckets(
    combinations: Sequence[BucketCombination], k: int
) -> list[BucketCombination]:
    """Algorithm 1: select a sufficient set of combinations for the top-k.

    A lower bound ``kthResLB`` on the score of the k-th result is derived from the
    combinations with the highest lower bounds; every combination whose upper bound
    exceeds that threshold is kept (plus enough combinations to cover ``k``
    results).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    combos = [c for c in combinations if c.nb_res > 0]
    if not combos:
        return []

    by_lower = sorted(combos, key=lambda c: (-c.lower_bound, c.key()))
    collected = 0
    kth_res_lb = by_lower[-1].lower_bound
    for combo in by_lower:
        collected += combo.nb_res
        kth_res_lb = combo.lower_bound
        if collected >= k:
            break

    by_upper = sorted(combos, key=lambda c: (-c.upper_bound, c.key()))
    selected: list[BucketCombination] = []
    collected = 0
    for combo in by_upper:
        # The paper's Algorithm 1 stops at "UB <= kthResLB"; the strict comparison is
        # required so that, in case of ties at the boundary, the combinations whose
        # lower bounds *support* kthResLB are themselves retained (Definition 2 asks
        # the dominating set to be a subset of the selection).
        if collected >= k and combo.upper_bound < kth_res_lb:
            break
        selected.append(combo)
        collected += combo.nb_res
    return selected


@dataclass
class TopBucketsResult:
    """Output of the TopBuckets phase with the statistics the experiments report."""

    selected: list[BucketCombination]
    strategy: str
    total_combinations: int = 0
    total_results: int = 0
    selected_results: int = 0
    pairs_bounded: int = 0
    tight_bounds_computed: int = 0
    elapsed_seconds: float = 0.0

    @property
    def pruned_results_fraction(self) -> float:
        """Fraction of potential results eliminated (the grey curve of Figure 10c)."""
        if self.total_results == 0:
            return 0.0
        return 1.0 - self.selected_results / self.total_results

    @property
    def selected_count(self) -> int:
        """|Ω_k,S| — the number of selected combinations."""
        return len(self.selected)

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        return {
            "strategy_combinations": float(self.total_combinations),
            "selected_combinations": float(self.selected_count),
            "total_results": float(self.total_results),
            "selected_results": float(self.selected_results),
            "pruned_results_fraction": self.pruned_results_fraction,
            "pairs_bounded": float(self.pairs_bounded),
            "tight_bounds_computed": float(self.tight_bounds_computed),
            "topbuckets_seconds": self.elapsed_seconds,
        }


@dataclass
class TopBucketsSelector:
    """Runs one TopBuckets strategy for a query over collected statistics."""

    strategy: str = "loose"
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; expected one of {STRATEGIES}")

    def run(
        self,
        query: RTJQuery,
        statistics: DatasetStatistics,
        space: CombinationSpace | None = None,
    ) -> TopBucketsResult:
        """Compute ``Ω_k,S`` for ``query`` with this selector's strategy."""
        started = time.perf_counter()
        space = space or CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space, solver=self.solver)

        combos = list(space.enumerate())
        total_results = sum(c.nb_res for c in combos)

        if query.has_attribute_constraints:
            # Hybrid queries (attribute constraints on edges): the purely-temporal
            # statistics over-count the results a combination can contribute, so the
            # count-based pruning of Definition 2 is no longer sound.  Keep every
            # combination — bounds are still computed so DTB and the local join's
            # early termination retain their score ordering.
            estimator.pairwise.precompute_all_pairs()
            selected = [estimator.loose_bounds(c) for c in combos]
            elapsed = time.perf_counter() - started
            return TopBucketsResult(
                selected=selected,
                strategy=self.strategy,
                total_combinations=len(combos),
                total_results=total_results,
                selected_results=total_results,
                pairs_bounded=estimator.pairwise.pairs_computed,
                tight_bounds_computed=0,
                elapsed_seconds=elapsed,
            )

        if self.strategy == "brute-force":
            bounded = [estimator.tight_bounds(c) for c in combos]
            selected = get_top_buckets(bounded, query.k)
            tight_computed = len(bounded)
        elif self.strategy == "loose":
            estimator.pairwise.precompute_all_pairs()
            bounded = [estimator.loose_bounds(c) for c in combos]
            selected = get_top_buckets(bounded, query.k)
            tight_computed = 0
        else:  # two-phase
            estimator.pairwise.precompute_all_pairs()
            bounded = [estimator.loose_bounds(c) for c in combos]
            survivors = get_top_buckets(bounded, query.k)
            refined = [estimator.tight_bounds(c) for c in survivors]
            selected = get_top_buckets(refined, query.k)
            tight_computed = len(refined)

        elapsed = time.perf_counter() - started
        return TopBucketsResult(
            selected=selected,
            strategy=self.strategy,
            total_combinations=len(combos),
            total_results=total_results,
            selected_results=sum(c.nb_res for c in selected),
            pairs_bounded=estimator.pairwise.pairs_computed,
            tight_bounds_computed=tight_computed,
            elapsed_seconds=elapsed,
        )


def validate_selection(
    selected: Iterable[BucketCombination],
    all_combinations: Iterable[BucketCombination],
    k: int,
) -> bool:
    """Check Definition 2: every pruned combination is dominated by >= k retained results.

    Used by the property-based tests; not part of the hot path.
    """
    selected = list(selected)
    selected_keys = {c.key() for c in selected}
    for combo in all_combinations:
        if combo.key() in selected_keys or combo.nb_res == 0:
            continue
        dominating = [c for c in selected if c.lower_bound >= combo.upper_bound]
        if sum(c.nb_res for c in dominating) < k:
            return False
    return True
