"""Local top-k RTJ evaluation on one reducer (TKIJ phase d).

Each reducer receives a set of bucket combinations and the intervals of the buckets
they reference, and evaluates the full RTJ query restricted to those combinations.
Combinations are processed in descending order of score upper bound; once the
reducer's top-k heap is full and the next combination's upper bound cannot beat the
current k-th score, the remaining combinations are skipped (early termination).

Inside a combination the query is evaluated left-deep along the query graph's BFS
join order.  When extending a partial tuple with a new vertex, the residual score
the connecting edge must reach (for the final aggregate to still beat the current
k-th score) is derived from the monotone aggregation, and candidate intervals are
fetched from an R-tree with a score-threshold lookup, mirroring the paper's use of
R-trees ("for an interval x_i and a score value v, return the x_j with
s-p(x_i, x_j) >= v").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..columnar import (
    FixedInterval,
    IntervalColumns,
    box_mask,
    combine_scores_v,
    compile_vector,
    sweep_positions,
)
from ..index import CompiledPredicateQuery, ThresholdIndex
from ..query.graph import QueryEdge, ResultTuple, RTJQuery
from ..temporal.interval import Interval
from .bounds import BucketCombination
from .statistics import BucketKey

__all__ = ["KERNELS", "LocalJoinConfig", "LocalJoinStats", "LocalTopKJoin"]

VertexBucket = tuple[str, BucketKey]

KERNELS = ("scalar", "vector", "sweep")
"""Valid values of ``LocalJoinConfig.kernel``."""


@dataclass(frozen=True)
class LocalJoinConfig:
    """Tuning knobs of the local join (all are ablated in the benchmarks).

    ``kernel`` selects the execution substrate of the candidate loops:
    ``"scalar"`` scores one Python object at a time (per-candidate R-tree
    probes), ``"vector"`` scores whole candidate arrays with the numpy kernels
    of :mod:`repro.columnar` (one boxed range filter per extension step), and
    ``"sweep"`` scores the same candidate arrays but resolves each threshold
    box to a window over endpoint-sorted views with ``searchsorted`` instead
    of scanning the whole bucket (DESIGN.md §11).  All kernels enumerate the
    same tuples in the same order, so results are tie-aware identical and the
    work counters match exactly (DESIGN.md §8).
    """

    use_index: bool = True
    early_termination: bool = True
    index_leaf_capacity: int = 32
    kernel: str = "scalar"


@dataclass
class LocalJoinStats:
    """Work counters of one local join execution."""

    combinations_processed: int = 0
    combinations_skipped: int = 0
    candidates_examined: int = 0
    tuples_scored: int = 0

    def merge(self, other: "LocalJoinStats") -> None:
        self.combinations_processed += other.combinations_processed
        self.combinations_skipped += other.combinations_skipped
        self.candidates_examined += other.candidates_examined
        self.tuples_scored += other.tuples_scored


class _TopKHeap:
    """Fixed-capacity min-heap of result tuples ordered by score."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._heap: list[tuple[float, tuple[int, ...]]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    @property
    def kth_score(self) -> float:
        """Score of the current k-th result; 0 while the heap is not full."""
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0][0]

    def offer(self, score: float, uids: tuple[int, ...]) -> None:
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (score, uids))
        elif score > self._heap[0][0]:
            heapq.heapreplace(self._heap, (score, uids))

    def results(self) -> list[ResultTuple]:
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [ResultTuple(uids=uids, score=score) for score, uids in ordered]


class LocalTopKJoin:
    """Evaluates an RTJ query over a set of bucket combinations, returning the top-k."""

    def __init__(self, query: RTJQuery, config: LocalJoinConfig | None = None) -> None:
        self.query = query
        self.config = config or LocalJoinConfig()
        if self.config.kernel not in KERNELS:
            raise ValueError(
                f"unknown join kernel {self.config.kernel!r}; expected one of {KERNELS}"
            )
        self._floor = 0.0
        self._num_edges = len(query.edges)
        self._join_order = query.join_order()
        # Edges resolved when each join-order vertex is bound.
        self._edges_at: list[list[tuple[int, QueryEdge]]] = []
        bound: list[str] = []
        for vertex in self._join_order:
            connecting = [
                (index, edge)
                for index, edge in enumerate(query.edges)
                if (edge.source == vertex and edge.target in bound)
                or (edge.target == vertex and edge.source in bound)
            ]
            self._edges_at.append(connecting)
            bound.append(vertex)
        # Compiled per-edge scorers (hot path) and threshold-box queries (index path).
        self._scorers = {
            index: edge.predicate.compile() for index, edge in enumerate(query.edges)
        }
        self._threshold_queries: dict[tuple[int, str], CompiledPredicateQuery] = {}
        for index, edge in enumerate(query.edges):
            renamed = edge.predicate.rename(edge.source, edge.target)
            self._threshold_queries[(index, edge.source)] = CompiledPredicateQuery(
                renamed, fixed_var=edge.source, target_var=edge.target
            )
            self._threshold_queries[(index, edge.target)] = CompiledPredicateQuery(
                renamed, fixed_var=edge.target, target_var=edge.source
            )
        # Vectorized per-edge scorers (x = source, y = target, like _scorers),
        # shared by both columnar kernels.
        self._vector_scorers = (
            {index: compile_vector(edge.predicate) for index, edge in enumerate(query.edges)}
            if self.config.kernel in ("vector", "sweep")
            else {}
        )

    # ------------------------------------------------------------------ public
    def run(
        self,
        combinations: Sequence[BucketCombination],
        intervals: Mapping[VertexBucket, "Sequence[Interval] | IntervalColumns"],
        k: int | None = None,
        initial_threshold: float = 0.0,
    ) -> tuple[list[ResultTuple], LocalJoinStats]:
        """Top-k results over the given combinations and their bucket contents.

        ``intervals`` maps each ``(vertex, bucket)`` to its contents, either as
        interval objects or as a columnar :class:`IntervalColumns` batch (what
        the columnar join operator ships); each kernel coerces to its native
        representation once per bucket and caches the result for the run.

        ``initial_threshold`` seeds the early-termination score floor before the
        local heap fills: tuples that cannot score *strictly above* it are
        pruned from the start.  Callers that merge the returned list into an
        existing top-k whose k-th score is the floor (the streaming evaluator)
        lose nothing but boundary ties, which the merge ignores anyway.  The
        floor is inert (0.0) for plain one-shot evaluation and disabled with
        ``early_termination``.
        """
        k = k if k is not None else self.query.k
        heap = _TopKHeap(k)
        stats = LocalJoinStats()
        columnar = self.config.kernel in ("vector", "sweep")
        # Per-run bucket caches: R-tree indexes for the scalar kernel, columnar
        # batches for the vector and sweep kernels (built once per bucket, then
        # reused by every combination referencing it).
        index_cache: dict[VertexBucket, ThresholdIndex] = {}
        columns_cache: dict[VertexBucket, IntervalColumns] = {}
        self._floor = initial_threshold if self.config.early_termination else 0.0

        ordered = sorted(combinations, key=lambda c: (-c.upper_bound, c.key()))
        for combination in ordered:
            threshold = max(self._floor, heap.kth_score if heap.is_full else 0.0)
            if (
                self.config.early_termination
                and (heap.is_full or self._floor > 0.0)
                and combination.upper_bound <= threshold
            ):
                stats.combinations_skipped += len(ordered) - stats.combinations_processed
                break
            stats.combinations_processed += 1
            if columnar:
                self._process_combination_v(
                    combination, intervals, heap, stats, columns_cache
                )
            else:
                self._process_combination(combination, intervals, heap, stats, index_cache)
        return heap.results(), stats

    # ----------------------------------------------------------------- internal
    def _process_combination(
        self,
        combination: BucketCombination,
        intervals: Mapping[VertexBucket, Sequence[Interval]],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> None:
        per_vertex: dict[str, Sequence[Interval]] = {}
        for vertex, bucket in combination.bucket_items():
            batch = intervals.get((vertex, bucket), ())
            if isinstance(batch, IntervalColumns):
                batch = batch.to_intervals()
            per_vertex[vertex] = batch
        if any(len(items) == 0 for items in per_vertex.values()):
            return

        edge_ubs = self._edge_upper_bounds(combination)
        first_vertex = self._join_order[0]
        empty_scores: list[float | None] = [None] * self._num_edges
        for interval in per_vertex[first_vertex]:
            assignment = {first_vertex: interval}
            self._extend(
                combination, per_vertex, assignment, empty_scores, 1, edge_ubs,
                heap, stats, index_cache,
            )

    def _edge_upper_bounds(self, combination: BucketCombination) -> list[float]:
        if combination.edge_bounds and len(combination.edge_bounds) == self._num_edges:
            return [bounds[1] for bounds in combination.edge_bounds]
        return [1.0] * self._num_edges

    def _extend(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, Sequence[Interval]],
        assignment: dict[str, Interval],
        edge_scores: list[float | None],
        depth: int,
        edge_ubs: Sequence[float],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> None:
        if depth == len(self._join_order):
            score = self.query.aggregation.combine(edge_scores)
            stats.tuples_scored += 1
            uids = tuple(assignment[vertex].uid for vertex in self.query.vertices)
            heap.offer(score, uids)
            return

        vertex = self._join_order[depth]
        connecting = self._edges_at[depth]
        pruning = self.config.early_termination and (heap.is_full or self._floor > 0.0)
        threshold = max(self._floor, heap.kth_score) if pruning else 0.0
        candidates = self._candidates(
            combination, per_vertex, assignment, edge_scores, vertex, connecting,
            edge_ubs, threshold, index_cache,
        )

        aggregation = self.query.aggregation
        scorers = self._scorers
        # Only the connecting-edge slots change between candidates, so the
        # score vector and the optimistic estimate (actual scores for resolved
        # edges, upper bounds for the rest) are built once per extension step
        # and patched in place per candidate.  Callees copy ``new_scores`` on
        # their own first mutation, so the in-place reuse never aliases a
        # deeper frame.
        new_scores = edge_scores.copy()
        estimate_vector = [
            edge_scores[index] if edge_scores[index] is not None else edge_ubs[index]
            for index in range(self._num_edges)
        ]
        for candidate in candidates:
            stats.candidates_examined += 1
            assignment[vertex] = candidate
            # Hybrid queries: attribute constraints are hard filters on the pair.
            if any(
                edge.attributes and not edge.attributes_hold(assignment)
                for _, edge in connecting
            ):
                del assignment[vertex]
                continue
            for edge_index, edge in connecting:
                score = scorers[edge_index](
                    assignment[edge.source], assignment[edge.target]
                )
                new_scores[edge_index] = score
                estimate_vector[edge_index] = score
            if pruning and aggregation.combine(estimate_vector) < threshold:
                # The estimate cannot beat the current k-th score.
                del assignment[vertex]
                continue
            self._extend(
                combination, per_vertex, assignment, new_scores, depth + 1,
                edge_ubs, heap, stats, index_cache,
            )
            del assignment[vertex]

    def _candidates(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, Sequence[Interval]],
        assignment: Mapping[str, Interval],
        edge_scores: Sequence[float | None],
        vertex: str,
        connecting: Sequence[tuple[int, QueryEdge]],
        edge_ubs: Sequence[float],
        threshold: float,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> Sequence[Interval]:
        """Candidate intervals for the next join-order vertex."""
        pool = per_vertex[vertex]
        if not self.config.use_index or not connecting or threshold <= 0.0:
            return pool

        driver_index, driver_edge = connecting[0]
        fixed_var = driver_edge.source if driver_edge.target == vertex else driver_edge.target
        fixed_interval = assignment[fixed_var]
        # Residual score the driver edge must reach: actual scores for resolved
        # edges, upper bounds for every other unresolved edge.
        known = {
            index: score for index, score in enumerate(edge_scores) if score is not None
        }
        required = self.query.aggregation.residual_threshold(
            threshold, driver_index, known, edge_ubs
        )
        if required <= 0.0:
            return pool
        if required > 1.0:
            return ()

        bucket = combination.bucket_of(vertex)
        cache_key = (vertex, bucket)
        index = index_cache.get(cache_key)
        if index is None:
            index = ThresholdIndex.build(pool, leaf_capacity=self.config.index_leaf_capacity)
            index_cache[cache_key] = index
        return index.candidates_compiled(
            self._threshold_queries[(driver_index, fixed_var)], fixed_interval, required
        )

    # ------------------------------------------------------------ vector kernel
    def _process_combination_v(
        self,
        combination: BucketCombination,
        intervals: Mapping[VertexBucket, "Sequence[Interval] | IntervalColumns"],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        columns_cache: dict[VertexBucket, IntervalColumns],
    ) -> None:
        """Columnar twin of :meth:`_process_combination` (same tuples, same order)."""
        per_vertex: dict[str, IntervalColumns] = {}
        for vertex, bucket in combination.bucket_items():
            key = (vertex, bucket)
            columns = columns_cache.get(key)
            if columns is None:
                batch = intervals.get(key, ())
                columns = (
                    batch
                    if isinstance(batch, IntervalColumns)
                    else IntervalColumns.from_intervals(batch)
                )
                columns_cache[key] = columns
            per_vertex[vertex] = columns
        if any(len(columns) == 0 for columns in per_vertex.values()):
            return

        edge_ubs = self._edge_upper_bounds(combination)
        first_vertex = self._join_order[0]
        empty_scores: list[float | None] = [None] * self._num_edges
        first = per_vertex[first_vertex]
        extend = self._extend_sweep if self.config.kernel == "sweep" else self._extend_v
        for position in range(len(first)):
            assignment = {first_vertex: first.record(position)}
            extend(
                combination, per_vertex, assignment, empty_scores, 1, edge_ubs,
                heap, stats,
            )

    def _extend_v(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, IntervalColumns],
        assignment: dict[str, FixedInterval],
        edge_scores: list[float | None],
        depth: int,
        edge_ubs: Sequence[float],
        heap: _TopKHeap,
        stats: LocalJoinStats,
    ) -> None:
        """Bind the join-order vertex at ``depth``, scoring all candidates at once.

        Parity with the scalar :meth:`_extend` is exact by construction: the
        threshold is frozen at entry (as in the scalar loop), the candidate set
        comes from the same threshold box (a boolean range filter instead of an
        R-tree probe), candidates are visited in the same bucket insertion
        order, and the comparator/aggregation kernels produce bit-identical
        floats — so the same tuples pass the same pruning tests and the
        counters agree exactly.
        """
        self._extend_columnar(
            combination, per_vertex, assignment, edge_scores, depth, edge_ubs,
            heap, stats, self._candidate_positions, self._extend_v,
        )

    def _extend_sweep(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, IntervalColumns],
        assignment: dict[str, FixedInterval],
        edge_scores: list[float | None],
        depth: int,
        edge_ubs: Sequence[float],
        heap: _TopKHeap,
        stats: LocalJoinStats,
    ) -> None:
        """Sweep twin of :meth:`_extend_v`: same frozen-threshold batch scoring,
        but the threshold box is resolved to a window over the bucket's
        endpoint-sorted views (``searchsorted``, :func:`repro.columnar.sweep_positions`)
        instead of a full-column ``box_mask`` scan — ``O(log n + window)`` per
        extension step instead of ``O(n)``.  The window resolver returns the
        box-mask candidate set bit for bit, so parity (and the counters) are
        inherited from the shared scoring body.
        """
        self._extend_columnar(
            combination, per_vertex, assignment, edge_scores, depth, edge_ubs,
            heap, stats, self._sweep_candidate_positions, self._extend_sweep,
        )

    def _extend_columnar(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, IntervalColumns],
        assignment: dict[str, FixedInterval],
        edge_scores: list[float | None],
        depth: int,
        edge_ubs: Sequence[float],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        resolve_positions,
        extend,
    ) -> None:
        """Shared body of the columnar kernels, parameterised over the candidate
        resolver (box-mask scan or sorted-endpoint window) and the recursive
        continuation."""
        vertex = self._join_order[depth]
        connecting = self._edges_at[depth]
        pruning = self.config.early_termination and (heap.is_full or self._floor > 0.0)
        threshold = max(self._floor, heap.kth_score) if pruning else 0.0
        columns = per_vertex[vertex]
        positions = resolve_positions(
            columns, assignment, edge_scores, vertex, connecting, edge_ubs, threshold
        )
        if positions is None:
            cand_uids, cand_starts, cand_ends = columns.uids, columns.starts, columns.ends
        else:
            if len(positions) == 0:
                return
            cand_uids = columns.uids[positions]
            cand_starts = columns.starts[positions]
            cand_ends = columns.ends[positions]
        count = len(cand_uids)
        if count == 0:
            return
        stats.candidates_examined += count

        # Hybrid queries: attribute constraints are hard filters on the pair.
        keep = self._attribute_mask(
            connecting, assignment, vertex, columns, positions, count
        )

        parts: list[object] = list(edge_scores)
        for edge_index, edge in connecting:
            scorer = self._vector_scorers[edge_index]
            if edge.source == vertex:
                other = assignment[edge.target]
                parts[edge_index] = scorer(cand_starts, cand_ends, other.start, other.end)
            else:
                other = assignment[edge.source]
                parts[edge_index] = scorer(other.start, other.end, cand_starts, cand_ends)

        final = depth + 1 == len(self._join_order)
        if final:
            # Every edge is resolved: the optimistic estimate *is* the score.
            scores = combine_scores_v(self.query.aggregation, parts, count)
            if pruning:
                if keep is None:
                    keep = scores >= threshold
                else:
                    keep &= scores >= threshold
            rows = np.flatnonzero(keep) if keep is not None else range(count)
            slot = self.query.vertices.index(vertex)
            prefix = [
                None if v == vertex else assignment[v].uid for v in self.query.vertices
            ]
            for row in rows:
                stats.tuples_scored += 1
                prefix[slot] = int(cand_uids[row])
                heap.offer(float(scores[row]), tuple(prefix))
            return

        if pruning:
            estimate_parts = [
                parts[index] if parts[index] is not None else edge_ubs[index]
                for index in range(self._num_edges)
            ]
            estimate = combine_scores_v(self.query.aggregation, estimate_parts, count)
            if keep is None:
                keep = estimate >= threshold
            else:
                keep &= estimate >= threshold
        rows = np.flatnonzero(keep) if keep is not None else range(count)
        for row in rows:
            original = int(positions[row]) if positions is not None else int(row)
            payload = columns.payloads[original] if columns.payloads is not None else None
            assignment[vertex] = FixedInterval(
                int(cand_uids[row]), float(cand_starts[row]), float(cand_ends[row]), payload
            )
            new_scores = edge_scores.copy()
            for edge_index, _ in connecting:
                new_scores[edge_index] = float(parts[edge_index][row])
            extend(
                combination, per_vertex, assignment, new_scores, depth + 1,
                edge_ubs, heap, stats,
            )
            del assignment[vertex]

    def _threshold_box(
        self,
        assignment: Mapping[str, FixedInterval],
        edge_scores: Sequence[float | None],
        vertex: str,
        connecting: Sequence[tuple[int, QueryEdge]],
        edge_ubs: Sequence[float],
        threshold: float,
    ):
        """Threshold box of the next extension step, shared by both resolvers.

        Returns ``(box, whole_bucket)``: ``whole_bucket`` means no pruning box
        applies (scan everything), otherwise ``box`` is the
        :class:`CompiledPredicateQuery` box — ``None`` for "no candidate can
        qualify".  Mirrors the decision cascade of the scalar
        :meth:`_candidates` exactly.
        """
        if not self.config.use_index or not connecting or threshold <= 0.0:
            return None, True

        driver_index, driver_edge = connecting[0]
        fixed_var = driver_edge.source if driver_edge.target == vertex else driver_edge.target
        fixed_interval = assignment[fixed_var]
        known = {
            index: score for index, score in enumerate(edge_scores) if score is not None
        }
        required = self.query.aggregation.residual_threshold(
            threshold, driver_index, known, edge_ubs
        )
        if required <= 0.0:
            return None, True
        if required > 1.0:
            return None, False
        box = self._threshold_queries[(driver_index, fixed_var)].box(
            fixed_interval, required
        )
        return box, False

    def _candidate_positions(
        self,
        columns: IntervalColumns,
        assignment: Mapping[str, FixedInterval],
        edge_scores: Sequence[float | None],
        vertex: str,
        connecting: Sequence[tuple[int, QueryEdge]],
        edge_ubs: Sequence[float],
        threshold: float,
    ) -> np.ndarray | None:
        """Columnar twin of :meth:`_candidates`: ``None`` means the whole bucket.

        The same residual threshold is boxed by the same
        :class:`CompiledPredicateQuery`; the boolean range filter over the
        bucket columns selects exactly the intervals an R-tree probe with that
        box would return, in insertion order.
        """
        box, whole_bucket = self._threshold_box(
            assignment, edge_scores, vertex, connecting, edge_ubs, threshold
        )
        if whole_bucket:
            return None
        if box is None:
            return _EMPTY_POSITIONS
        return np.flatnonzero(box_mask(box, columns.starts, columns.ends))

    def _sweep_candidate_positions(
        self,
        columns: IntervalColumns,
        assignment: Mapping[str, FixedInterval],
        edge_scores: Sequence[float | None],
        vertex: str,
        connecting: Sequence[tuple[int, QueryEdge]],
        edge_ubs: Sequence[float],
        threshold: float,
    ) -> np.ndarray | None:
        """Sweep twin of :meth:`_candidate_positions`: the same box, resolved to
        a window over the bucket's endpoint-sorted views instead of a
        full-column scan (identical positions in identical order, DESIGN.md
        §11)."""
        box, whole_bucket = self._threshold_box(
            assignment, edge_scores, vertex, connecting, edge_ubs, threshold
        )
        if whole_bucket:
            return None
        if box is None:
            return _EMPTY_POSITIONS
        return sweep_positions(box, columns)

    def _attribute_mask(
        self,
        connecting: Sequence[tuple[int, QueryEdge]],
        assignment: dict[str, FixedInterval],
        vertex: str,
        columns: IntervalColumns,
        positions: np.ndarray | None,
        count: int,
    ) -> np.ndarray | None:
        """Per-candidate attribute filter; ``None`` when no edge carries one."""
        attr_edges = [(i, e) for i, e in connecting if e.attributes]
        if not attr_edges:
            return None
        keep = np.ones(count, dtype=bool)
        for row in range(count):
            original = int(positions[row]) if positions is not None else row
            assignment[vertex] = columns.record(original)
            if any(not edge.attributes_hold(assignment) for _, edge in attr_edges):
                keep[row] = False
        del assignment[vertex]
        return keep


_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)
