"""Local top-k RTJ evaluation on one reducer (TKIJ phase d).

Each reducer receives a set of bucket combinations and the intervals of the buckets
they reference, and evaluates the full RTJ query restricted to those combinations.
Combinations are processed in descending order of score upper bound; once the
reducer's top-k heap is full and the next combination's upper bound cannot beat the
current k-th score, the remaining combinations are skipped (early termination).

Inside a combination the query is evaluated left-deep along the query graph's BFS
join order.  When extending a partial tuple with a new vertex, the residual score
the connecting edge must reach (for the final aggregate to still beat the current
k-th score) is derived from the monotone aggregation, and candidate intervals are
fetched from an R-tree with a score-threshold lookup, mirroring the paper's use of
R-trees ("for an interval x_i and a score value v, return the x_j with
s-p(x_i, x_j) >= v").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..index import CompiledPredicateQuery, ThresholdIndex
from ..query.graph import QueryEdge, ResultTuple, RTJQuery
from ..temporal.interval import Interval
from .bounds import BucketCombination
from .statistics import BucketKey

__all__ = ["LocalJoinConfig", "LocalJoinStats", "LocalTopKJoin"]

VertexBucket = tuple[str, BucketKey]


@dataclass(frozen=True)
class LocalJoinConfig:
    """Tuning knobs of the local join (both are ablated in the benchmarks)."""

    use_index: bool = True
    early_termination: bool = True
    index_leaf_capacity: int = 32


@dataclass
class LocalJoinStats:
    """Work counters of one local join execution."""

    combinations_processed: int = 0
    combinations_skipped: int = 0
    candidates_examined: int = 0
    tuples_scored: int = 0

    def merge(self, other: "LocalJoinStats") -> None:
        self.combinations_processed += other.combinations_processed
        self.combinations_skipped += other.combinations_skipped
        self.candidates_examined += other.candidates_examined
        self.tuples_scored += other.tuples_scored


class _TopKHeap:
    """Fixed-capacity min-heap of result tuples ordered by score."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._heap: list[tuple[float, tuple[int, ...]]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    @property
    def kth_score(self) -> float:
        """Score of the current k-th result; 0 while the heap is not full."""
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0][0]

    def offer(self, score: float, uids: tuple[int, ...]) -> None:
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (score, uids))
        elif score > self._heap[0][0]:
            heapq.heapreplace(self._heap, (score, uids))

    def results(self) -> list[ResultTuple]:
        ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [ResultTuple(uids=uids, score=score) for score, uids in ordered]


class LocalTopKJoin:
    """Evaluates an RTJ query over a set of bucket combinations, returning the top-k."""

    def __init__(self, query: RTJQuery, config: LocalJoinConfig | None = None) -> None:
        self.query = query
        self.config = config or LocalJoinConfig()
        self._floor = 0.0
        self._num_edges = len(query.edges)
        self._join_order = query.join_order()
        # Edges resolved when each join-order vertex is bound.
        self._edges_at: list[list[tuple[int, QueryEdge]]] = []
        bound: list[str] = []
        for vertex in self._join_order:
            connecting = [
                (index, edge)
                for index, edge in enumerate(query.edges)
                if (edge.source == vertex and edge.target in bound)
                or (edge.target == vertex and edge.source in bound)
            ]
            self._edges_at.append(connecting)
            bound.append(vertex)
        # Compiled per-edge scorers (hot path) and threshold-box queries (index path).
        self._scorers = {
            index: edge.predicate.compile() for index, edge in enumerate(query.edges)
        }
        self._threshold_queries: dict[tuple[int, str], CompiledPredicateQuery] = {}
        for index, edge in enumerate(query.edges):
            renamed = edge.predicate.rename(edge.source, edge.target)
            self._threshold_queries[(index, edge.source)] = CompiledPredicateQuery(
                renamed, fixed_var=edge.source, target_var=edge.target
            )
            self._threshold_queries[(index, edge.target)] = CompiledPredicateQuery(
                renamed, fixed_var=edge.target, target_var=edge.source
            )

    # ------------------------------------------------------------------ public
    def run(
        self,
        combinations: Sequence[BucketCombination],
        intervals: Mapping[VertexBucket, Sequence[Interval]],
        k: int | None = None,
        initial_threshold: float = 0.0,
    ) -> tuple[list[ResultTuple], LocalJoinStats]:
        """Top-k results over the given combinations and their bucket contents.

        ``initial_threshold`` seeds the early-termination score floor before the
        local heap fills: tuples that cannot score *strictly above* it are
        pruned from the start.  Callers that merge the returned list into an
        existing top-k whose k-th score is the floor (the streaming evaluator)
        lose nothing but boundary ties, which the merge ignores anyway.  The
        floor is inert (0.0) for plain one-shot evaluation and disabled with
        ``early_termination``.
        """
        k = k if k is not None else self.query.k
        heap = _TopKHeap(k)
        stats = LocalJoinStats()
        index_cache: dict[VertexBucket, ThresholdIndex] = {}
        self._floor = initial_threshold if self.config.early_termination else 0.0

        ordered = sorted(combinations, key=lambda c: (-c.upper_bound, c.key()))
        for combination in ordered:
            threshold = max(self._floor, heap.kth_score if heap.is_full else 0.0)
            if (
                self.config.early_termination
                and (heap.is_full or self._floor > 0.0)
                and combination.upper_bound <= threshold
            ):
                stats.combinations_skipped += len(ordered) - stats.combinations_processed
                break
            stats.combinations_processed += 1
            self._process_combination(combination, intervals, heap, stats, index_cache)
        return heap.results(), stats

    # ----------------------------------------------------------------- internal
    def _process_combination(
        self,
        combination: BucketCombination,
        intervals: Mapping[VertexBucket, Sequence[Interval]],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> None:
        per_vertex: dict[str, Sequence[Interval]] = {}
        for vertex, bucket in combination.bucket_items():
            per_vertex[vertex] = intervals.get((vertex, bucket), ())
        if any(len(items) == 0 for items in per_vertex.values()):
            return

        edge_ubs = self._edge_upper_bounds(combination)
        first_vertex = self._join_order[0]
        empty_scores: list[float | None] = [None] * self._num_edges
        for interval in per_vertex[first_vertex]:
            assignment = {first_vertex: interval}
            self._extend(
                combination, per_vertex, assignment, empty_scores, 1, edge_ubs,
                heap, stats, index_cache,
            )

    def _edge_upper_bounds(self, combination: BucketCombination) -> list[float]:
        if combination.edge_bounds and len(combination.edge_bounds) == self._num_edges:
            return [bounds[1] for bounds in combination.edge_bounds]
        return [1.0] * self._num_edges

    def _extend(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, Sequence[Interval]],
        assignment: dict[str, Interval],
        edge_scores: list[float | None],
        depth: int,
        edge_ubs: Sequence[float],
        heap: _TopKHeap,
        stats: LocalJoinStats,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> None:
        if depth == len(self._join_order):
            score = self.query.aggregation.combine(edge_scores)
            stats.tuples_scored += 1
            uids = tuple(assignment[vertex].uid for vertex in self.query.vertices)
            heap.offer(score, uids)
            return

        vertex = self._join_order[depth]
        connecting = self._edges_at[depth]
        pruning = self.config.early_termination and (heap.is_full or self._floor > 0.0)
        threshold = max(self._floor, heap.kth_score) if pruning else 0.0
        candidates = self._candidates(
            combination, per_vertex, assignment, edge_scores, vertex, connecting,
            edge_ubs, threshold, index_cache,
        )

        aggregation = self.query.aggregation
        scorers = self._scorers
        for candidate in candidates:
            stats.candidates_examined += 1
            assignment[vertex] = candidate
            # Hybrid queries: attribute constraints are hard filters on the pair.
            if any(
                edge.attributes and not edge.attributes_hold(assignment)
                for _, edge in connecting
            ):
                del assignment[vertex]
                continue
            new_scores = edge_scores.copy()
            for edge_index, edge in connecting:
                new_scores[edge_index] = scorers[edge_index](
                    assignment[edge.source], assignment[edge.target]
                )
            if pruning:
                # Optimistic estimate: actual scores for resolved edges, upper bounds
                # for the rest; prune when it cannot beat the current k-th score.
                estimate_vector = [
                    new_scores[index] if new_scores[index] is not None else edge_ubs[index]
                    for index in range(self._num_edges)
                ]
                if aggregation.combine(estimate_vector) < threshold:
                    del assignment[vertex]
                    continue
            self._extend(
                combination, per_vertex, assignment, new_scores, depth + 1,
                edge_ubs, heap, stats, index_cache,
            )
            del assignment[vertex]

    def _candidates(
        self,
        combination: BucketCombination,
        per_vertex: Mapping[str, Sequence[Interval]],
        assignment: Mapping[str, Interval],
        edge_scores: Sequence[float | None],
        vertex: str,
        connecting: Sequence[tuple[int, QueryEdge]],
        edge_ubs: Sequence[float],
        threshold: float,
        index_cache: dict[VertexBucket, ThresholdIndex],
    ) -> Sequence[Interval]:
        """Candidate intervals for the next join-order vertex."""
        pool = per_vertex[vertex]
        if not self.config.use_index or not connecting or threshold <= 0.0:
            return pool

        driver_index, driver_edge = connecting[0]
        fixed_var = driver_edge.source if driver_edge.target == vertex else driver_edge.target
        fixed_interval = assignment[fixed_var]
        # Residual score the driver edge must reach: actual scores for resolved
        # edges, upper bounds for every other unresolved edge.
        known = {
            index: score for index, score in enumerate(edge_scores) if score is not None
        }
        required = self.query.aggregation.residual_threshold(
            threshold, driver_index, known, edge_ubs
        )
        if required <= 0.0:
            return pool
        if required > 1.0:
            return ()

        bucket = combination.bucket_of(vertex)
        cache_key = (vertex, bucket)
        index = index_cache.get(cache_key)
        if index is None:
            index = ThresholdIndex.build(pool, leaf_capacity=self.config.index_leaf_capacity)
            index_cache[cache_key] = index
        return index.candidates_compiled(
            self._threshold_queries[(driver_index, fixed_var)], fixed_interval, required
        )
