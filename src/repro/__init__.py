"""repro — reproduction of "Distributed Evaluation of Top-k Temporal Joins" (SIGMOD 2016).

The public API re-exports the pieces most callers need:

* the interval / predicate model (:mod:`repro.temporal`),
* the query builder (:mod:`repro.query`),
* the TKIJ evaluator and its configuration (:mod:`repro.core`),
* the algorithm registry and execution context (:mod:`repro.plan`),
* streaming collections and incremental evaluation (:mod:`repro.streaming`),
* workload generators (:mod:`repro.datagen`) and baselines (:mod:`repro.baselines`).

The network-facing query server lives in :mod:`repro.serving` (wire protocol
in ``docs/PROTOCOL.md``) and is imported on demand rather than re-exported
here, so library use never pays for the serving stack.
"""

from .core import TKIJ, LocalJoinConfig, TKIJResult
from .mapreduce import ClusterConfig
from .plan import (
    REGISTRY,
    AutoPlanner,
    ExecutionContext,
    PlanExplanation,
    RunReport,
    StatisticsCache,
    get_algorithm,
)
from .query import QueryBuilder, RTJQuery
from .streaming import StreamingCollection, StreamingTKIJ, replay_batches
from .temporal import (
    AverageScore,
    Interval,
    IntervalCollection,
    PredicateParams,
    ScoredPredicate,
)

__version__ = "1.0.0"

__all__ = [
    "TKIJ",
    "TKIJResult",
    "LocalJoinConfig",
    "ClusterConfig",
    "REGISTRY",
    "AutoPlanner",
    "ExecutionContext",
    "PlanExplanation",
    "RunReport",
    "StatisticsCache",
    "get_algorithm",
    "QueryBuilder",
    "RTJQuery",
    "StreamingCollection",
    "StreamingTKIJ",
    "replay_batches",
    "AverageScore",
    "Interval",
    "IntervalCollection",
    "PredicateParams",
    "ScoredPredicate",
    "__version__",
]
