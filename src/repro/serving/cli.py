"""Command-line entry points of the serving layer.

``repro-serve`` (the console script) and ``python -m repro.experiments serve``
both land in :func:`serve_main`: build a cluster config from the familiar
experiment flags, wrap it in a warm :class:`~repro.plan.ExecutionContext`,
and serve until a ``shutdown`` request or Ctrl-C.  ``python -m
repro.experiments load`` (:func:`load_main`) is the matching client-side
loader: connect to a running server and register synthetic collections
through the wire protocol.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path
from typing import Sequence

from ..experiments.cli import _byte_size, _positive_int, load_fault_plan
from ..mapreduce import BACKEND_NAMES, TRANSFER_NAMES, ClusterConfig
from ..plan import ExecutionContext
from .client import QueryClient, ServingError
from .server import QueryServer
from .supervisor import ServerSupervisor

__all__ = ["build_serve_parser", "build_load_parser", "serve_main", "load_main", "main"]


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser of ``repro-serve`` / the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve TKIJ/streaming/baseline queries over the NDJSON protocol "
            "(docs/PROTOCOL.md) from one warm ExecutionContext."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7781, help="bind port (0 picks an ephemeral port)"
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="execution backend of the shared worker pool",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        help="worker pool size for the thread/process backends (default: CPU count)",
    )
    parser.add_argument(
        "--reducers", type=_positive_int, default=8, help="reduce tasks per job"
    )
    parser.add_argument(
        "--mappers", type=_positive_int, default=4, help="map waves per job"
    )
    parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=4,
        help="queries executing concurrently before new ones queue",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="queries allowed to wait for a slot before the server answers BUSY",
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=_positive_int,
        default=None,
        help="deadline applied to queries that do not carry their own (default: none)",
    )
    parser.add_argument(
        "--transfer",
        choices=list(TRANSFER_NAMES),
        default=None,
        help="shuffle transfer strategy (default follows the backend)",
    )
    parser.add_argument(
        "--memory-budget",
        type=_byte_size,
        default=None,
        metavar="BYTES",
        help="shuffle memory budget (k/m/g suffixes accepted); excess spills to disk",
    )
    parser.add_argument(
        "--max-task-attempts",
        type=_positive_int,
        default=4,
        help="per-task attempt budget of the engine",
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="PATH",
        help="JSON fault plan applied to every served query (chaos soak testing)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "worker processes; above 1 runs the supervised multi-worker frontend "
            "(crash respawn, session-affinity routing, rolling restart)"
        ),
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds inflight queries get to finish when draining (SIGTERM or drain verb)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "directory for server checkpoints; workers respawn warm from here "
            "(default: supervisor mode uses a private directory removed on exit; "
            "single mode does not checkpoint)"
        ),
    )
    parser.add_argument(
        "--stats-cache-entries",
        type=_positive_int,
        default=None,
        help="bound the warm statistics cache to this many entries (LRU eviction)",
    )
    parser.add_argument(
        "--plan-cache-entries",
        type=int,
        default=128,
        help="bound the auto-plan cache per worker; 0 disables planner feedback",
    )
    parser.add_argument(
        "--cost-store",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "observed-cost store (JSON lines) calibrating the auto planner; "
            "in supervisor mode a directory holding one file per worker"
        ),
    )
    return parser


def build_load_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``load`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments load",
        description="Register server-side synthetic collections on a running query server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=7781, help="server port")
    parser.add_argument(
        "--names",
        default="R,S,T",
        help="comma-separated collection names to create (default R,S,T)",
    )
    parser.add_argument(
        "--size", type=_positive_int, default=10_000, help="intervals per collection"
    )
    parser.add_argument("--seed", type=int, default=7, help="base random seed")
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="create streaming collections (ingest batches via the 'ingest' verb)",
    )
    return parser


#: serve flags that configure the in-process engine; in supervisor mode each
#: worker builds its own default context, so these cannot take effect there.
_ENGINE_FLAG_DEFAULTS = (
    ("backend", "serial"),
    ("max_workers", None),
    ("reducers", 8),
    ("mappers", 4),
    ("transfer", None),
    ("memory_budget", None),
    ("max_task_attempts", 4),
    ("fault_plan", None),
)


def _serve_supervised(args: argparse.Namespace) -> int:
    """The ``--workers N`` (N > 1) path: supervised multi-worker frontend."""
    for name, default in _ENGINE_FLAG_DEFAULTS:
        if getattr(args, name) != default:
            flag = "--" + name.replace("_", "-")
            print(
                f"error: {flag} configures the in-process engine and is not "
                "supported with --workers > 1",
                file=sys.stderr,
            )
            return 1
    supervisor = ServerSupervisor(
        num_workers=args.workers,
        host=args.host,
        port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
        default_deadline_ms=args.default_deadline_ms,
        stats_cache_entries=args.stats_cache_entries,
        plan_cache_entries=args.plan_cache_entries,
        cost_store_dir=args.cost_store,
    )

    async def run() -> None:
        host, port = await supervisor.start()
        print(f"supervising {args.workers} workers on {host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, supervisor.shutdown_requested.set)
        try:
            await supervisor.shutdown_requested.wait()
        finally:
            await supervisor.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except (OSError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def serve_main(argv: Sequence[str] | None = None) -> int:
    """Run a query server in the foreground until shutdown or Ctrl-C."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.drain_timeout <= 0:
        print("error: --drain-timeout must be positive", file=sys.stderr)
        return 1
    if args.max_queue < 0:
        print("error: --max-queue must be non-negative", file=sys.stderr)
        return 1
    if args.workers > 1:
        return _serve_supervised(args)
    try:
        fault_plan = load_fault_plan(args.fault_plan)
        cluster = ClusterConfig(
            backend=args.backend,
            max_workers=args.max_workers,
            num_reducers=args.reducers,
            num_mappers=args.mappers,
            max_task_attempts=args.max_task_attempts,
            fault_plan=fault_plan,
            transfer=args.transfer,
            memory_budget_bytes=args.memory_budget,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    checkpoint_path = (
        Path(args.checkpoint_dir) / "server.ckpt" if args.checkpoint_dir else None
    )
    context = ExecutionContext(cluster=cluster)
    server = QueryServer(
        context,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        checkpoint_path=checkpoint_path,
        drain_timeout=args.drain_timeout,
        stats_cache_entries=args.stats_cache_entries,
        plan_cache_entries=args.plan_cache_entries,
        cost_store_path=args.cost_store,
    )
    if checkpoint_path is not None and checkpoint_path.exists():
        try:
            server.restore_state(checkpoint_path)
            print(f"restored checkpoint ({len(server.collections)} collections)")
        except ValueError as error:
            print(f"starting cold: {error}", file=sys.stderr)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        # SIGTERM drains: reject new work, finish inflight, checkpoint, exit.
        loop.add_signal_handler(signal.SIGTERM, server.begin_drain)
        host, port = await server.start()
        print(f"serving on {host}:{port}", flush=True)
        try:
            await server.shutdown_requested.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        context.close()
    return 0


def load_main(argv: Sequence[str] | None = None) -> int:
    """Ask a running server to generate and register synthetic collections."""
    parser = build_load_parser()
    args = parser.parse_args(argv)
    names = [name for name in args.names.split(",") if name]
    if not names:
        print("error: --names must list at least one collection", file=sys.stderr)
        return 1
    try:
        with QueryClient(args.host, args.port) as client:
            response = client.load(
                names, size=args.size, seed=args.seed, streaming=args.streaming
            )
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    except ServingError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    for collection in response["collections"]:
        kind = "streaming" if collection["streaming"] else "static"
        print(f"loaded {collection['name']}: {collection['size']} intervals ({kind})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """The ``repro-serve`` console-script entry point."""
    return serve_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via the experiments CLI
    raise SystemExit(main())
