"""Supervised multi-worker serving: respawn on crash, drain on restart.

:class:`ServerSupervisor` runs N :class:`~repro.serving.server.QueryServer`
workers as child processes (``python -m repro.serving.worker``), each behind
its own socket, and exposes one frontend address that routes client
connections to workers:

* **session affinity** — each connection is routed on its *first* request:
  a string ``affinity`` field is hashed (keyed blake2b, stable across
  processes and supervisor restarts) to a fixed worker, so a client's
  streaming sessions — and its retries after a crash — land on the worker
  holding (or restoring) their state.  Connections without an affinity are
  spread round-robin over READY workers.
* **crash recovery** — a heartbeat task watches the children; a crashed
  worker is respawned with exponential backoff and restores the server
  checkpoint it was writing (collections, statistics cache, stream state,
  ingest dedup table), so it comes back warm.  A worker that crash-loops —
  ``max_crashes`` exits within ``crash_window`` seconds — trips a circuit
  breaker to FAILED and is not respawned; its connections get UNAVAILABLE.
* **graceful drain** — :meth:`rolling_restart` cycles workers one at a time:
  drain verb, wait for inflight to finish and the checkpoint to land, respawn,
  readiness-gate on the ``health`` verb before touching the next worker.

While a routed worker is down (respawning or FAILED) the frontend answers the
connection's first request itself with a structured UNAVAILABLE error — a
*complete* frame, so a retrying client backs off cleanly instead of parsing a
truncated line.  After routing, the frontend is a transparent byte pump; a
worker killed mid-response surfaces to the client as a truncated frame or
reset, which the client's :class:`~repro.serving.retry.RetryPolicy` handles.

The supervisor duck-types :class:`~repro.serving.server.QueryServer` for
lifecycle purposes (async ``start``/``stop``, ``shutdown_requested``,
``address``), so :class:`~repro.serving.server.BackgroundServer` can run one
on a daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import subprocess
import sys
import tempfile
import time
from collections import deque
from hashlib import blake2b
from pathlib import Path
from typing import Any

from .protocol import (
    E_UNAVAILABLE,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
)

__all__ = ["ServerSupervisor", "WorkerHandle"]

# Worker lifecycle states.
STARTING = "STARTING"
READY = "READY"
DRAINING = "DRAINING"
RESTARTING = "RESTARTING"
FAILED = "FAILED"
STOPPED = "STOPPED"


def _affinity_index(affinity: str, num_workers: int) -> int:
    """Stable affinity → worker mapping (keyed hash, not the salted ``hash()``)."""
    digest = blake2b(affinity.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_workers


class WorkerHandle:
    """One supervised worker: its process, socket, checkpoint and crash history."""

    def __init__(self, worker_id: int, checkpoint_dir: Path) -> None:
        self.worker_id = worker_id
        self.state = STARTING
        self.port: int | None = None
        self.process: subprocess.Popen | None = None
        self.checkpoint_path = checkpoint_dir / f"worker-{worker_id}.ckpt"
        self.port_file = checkpoint_dir / f"worker-{worker_id}.port"
        self.crash_times: deque[float] = deque(maxlen=32)
        self.restarts = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> dict[str, Any]:
        return {
            "worker": self.worker_id,
            "state": self.state,
            "port": self.port,
            "pid": self.process.pid if self.process is not None else None,
            "restarts": self.restarts,
        }


class ServerSupervisor:
    """Run, watch and route to N query-server worker processes.

    ``port=0`` binds the frontend on an ephemeral port (read :attr:`address`
    after :meth:`start`).  ``checkpoint_dir=None`` creates a private directory
    (removed on :meth:`stop`); pass a path to keep checkpoints across
    supervisor restarts.  All methods must run on one event loop — the
    supervisor owns no locks, exactly like the server it multiplies.
    """

    def __init__(
        self,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_dir: str | Path | None = None,
        max_inflight: int = 4,
        max_queue: int = 16,
        default_deadline_ms: int | None = None,
        drain_timeout: float = 30.0,
        heartbeat_interval: float = 0.25,
        restart_base: float = 0.1,
        restart_multiplier: float = 2.0,
        restart_cap: float = 2.0,
        max_crashes: int = 5,
        crash_window: float = 30.0,
        ready_timeout: float = 20.0,
        stats_cache_entries: int | None = None,
        plan_cache_entries: int | None = 128,
        cost_store_dir: str | Path | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = drain_timeout
        self.heartbeat_interval = heartbeat_interval
        self.restart_base = restart_base
        self.restart_multiplier = restart_multiplier
        self.restart_cap = restart_cap
        self.max_crashes = max_crashes
        self.crash_window = crash_window
        self.ready_timeout = ready_timeout
        self.stats_cache_entries = stats_cache_entries
        self.plan_cache_entries = plan_cache_entries
        self.cost_store_dir = Path(cost_store_dir) if cost_store_dir else None
        self._owns_checkpoint_dir = checkpoint_dir is None
        if checkpoint_dir is None:
            self.checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-serve-ckpt-"))
        else:
            self.checkpoint_dir = Path(checkpoint_dir)
        self.workers = [
            WorkerHandle(worker_id, self.checkpoint_dir)
            for worker_id in range(num_workers)
        ]
        self.shutdown_requested = asyncio.Event()
        self.respawns = 0
        self._frontend: asyncio.base_events.Server | None = None
        self._monitor_task: asyncio.Task | None = None
        self._active: set[asyncio.Task] = set()
        self._round_robin = 0

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The frontend (host, port) — valid after :meth:`start`."""
        if self._frontend is None:
            raise RuntimeError("supervisor is not started")
        sock = self._frontend.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Spawn all workers, wait until READY, then open the frontend."""
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        for handle in self.workers:
            self._spawn(handle)
        ready = await asyncio.gather(
            *[self._wait_ready(handle, self.ready_timeout) for handle in self.workers]
        )
        if not all(ready):
            failed = [h.worker_id for h, ok in zip(self.workers, ready) if not ok]
            await self.stop()
            raise RuntimeError(f"workers failed to become ready: {failed}")
        self._frontend = await asyncio.start_server(
            self._serve_frontend_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._monitor_task = asyncio.get_running_loop().create_task(self._monitor())
        return self.address

    async def stop(self) -> None:
        """Stop the frontend, terminate every worker, clean owned state."""
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        if self._frontend is not None:
            self._frontend.close()
            try:
                await asyncio.wait_for(self._frontend.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._frontend = None
        for task in list(self._active):
            task.cancel()
        if self._active:
            await asyncio.gather(*self._active, return_exceptions=True)
        for handle in self.workers:
            await self._terminate(handle)
        if self._owns_checkpoint_dir:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)
        self.shutdown_requested.set()

    async def _terminate(self, handle: WorkerHandle) -> None:
        handle.state = STOPPED
        if not handle.alive():
            return
        handle.process.terminate()  # SIGTERM → worker drains and checkpoints
        if not await self._wait_exit(handle, self.drain_timeout + 5.0):
            handle.process.kill()
            await self._wait_exit(handle, 5.0)

    async def _wait_exit(self, handle: WorkerHandle, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not handle.alive():
                return True
            await asyncio.sleep(0.02)
        return not handle.alive()

    # ------------------------------------------------------------- spawning
    def _spawn(self, handle: WorkerHandle) -> None:
        handle.port_file.unlink(missing_ok=True)
        handle.port = None
        command = [
            sys.executable,
            "-m",
            "repro.serving.worker",
            "--host",
            self.host,
            "--port",
            "0",
            "--worker-id",
            str(handle.worker_id),
            "--checkpoint",
            str(handle.checkpoint_path),
            "--port-file",
            str(handle.port_file),
            "--max-inflight",
            str(self.max_inflight),
            "--max-queue",
            str(self.max_queue),
            "--drain-timeout",
            str(self.drain_timeout),
            "--parent-pid",
            str(os.getpid()),
        ]
        if self.default_deadline_ms is not None:
            command += ["--default-deadline-ms", str(self.default_deadline_ms)]
        if self.stats_cache_entries is not None:
            command += ["--stats-cache-entries", str(self.stats_cache_entries)]
        if self.plan_cache_entries is not None:
            command += ["--plan-cache-entries", str(self.plan_cache_entries)]
        if self.cost_store_dir is not None:
            # One store file per worker: the append-only log is single-writer.
            self.cost_store_dir.mkdir(parents=True, exist_ok=True)
            store = self.cost_store_dir / f"worker-{handle.worker_id}.costs"
            command += ["--cost-store", str(store)]
        # The spawned interpreter must import `repro` even when the parent got
        # it from a pytest pythonpath entry that does not propagate.
        package_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            str(package_root) if not existing else f"{package_root}{os.pathsep}{existing}"
        )
        handle.process = subprocess.Popen(command, env=env)

    def _read_port(self, handle: WorkerHandle) -> int | None:
        try:
            text = handle.port_file.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            return int(text.split()[1])
        except (IndexError, ValueError):
            return None

    async def _wait_ready(self, handle: WorkerHandle, timeout: float) -> bool:
        """Poll the port file, then readiness-gate on the ``health`` verb."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not handle.alive():
                return False
            port = self._read_port(handle)
            if port is not None:
                handle.port = port
                if await self._probe_health(handle):
                    handle.state = READY
                    return True
            await asyncio.sleep(0.05)
        return False

    async def _probe_health(self, handle: WorkerHandle) -> bool:
        if handle.port is None:
            return False
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, handle.port), timeout=2.0
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(encode_message({"id": 0, "verb": "health"}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=2.0)
            response = decode_message(line)
            return bool(response.get("ok")) and response.get("status") == "ok"
        except (OSError, asyncio.TimeoutError, ProtocolError):
            return False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    # ------------------------------------------------------------- monitoring
    async def _monitor(self) -> None:
        """Heartbeat loop: respawn crashed workers, trip the circuit breaker."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            for handle in self.workers:
                # DRAINING workers are owned by rolling_restart; FAILED and
                # STOPPED ones are terminal.
                if handle.state in (DRAINING, FAILED, STOPPED):
                    continue
                if not handle.alive():
                    await self._respawn(handle)

    async def _respawn(self, handle: WorkerHandle) -> None:
        now = time.monotonic()
        handle.crash_times.append(now)
        recent = [t for t in handle.crash_times if now - t <= self.crash_window]
        if len(recent) >= self.max_crashes:
            handle.state = FAILED
            return
        handle.state = RESTARTING
        backoff = min(
            self.restart_base * self.restart_multiplier ** (len(recent) - 1),
            self.restart_cap,
        )
        await asyncio.sleep(backoff)
        self._spawn(handle)
        self.respawns += 1
        handle.restarts += 1
        if not await self._wait_ready(handle, self.ready_timeout):
            # Never became ready: count it as another crash (the breaker will
            # trip if this keeps happening) and let the next heartbeat retry.
            if handle.alive():
                handle.process.kill()
            await self._wait_exit(handle, 5.0)

    # -------------------------------------------------------- rolling restart
    async def rolling_restart(self, drain_timeout_ms: int | None = None) -> int:
        """Drain and respawn workers one at a time, readiness-gated.

        Each worker gets the ``drain`` verb (new work rejected with DRAINING,
        inflight queries finish, state checkpointed, process exits), is
        respawned warm from its checkpoint, and must answer ``health`` with
        ``"ok"`` before the next worker is touched — so at most one worker is
        down at any moment.  Returns the number of workers cycled.
        """
        cycled = 0
        for handle in self.workers:
            if handle.state in (FAILED, STOPPED):
                continue
            handle.state = DRAINING
            await self._drain_worker(handle, drain_timeout_ms)
            budget = (
                self.drain_timeout
                if drain_timeout_ms is None
                else drain_timeout_ms / 1000.0
            )
            if not await self._wait_exit(handle, budget + 10.0):
                handle.process.kill()
                await self._wait_exit(handle, 5.0)
            handle.state = RESTARTING
            self._spawn(handle)
            handle.restarts += 1
            if not await self._wait_ready(handle, self.ready_timeout):
                raise RuntimeError(
                    f"worker {handle.worker_id} did not come back after rolling restart"
                )
            cycled += 1
        return cycled

    async def _drain_worker(self, handle: WorkerHandle, timeout_ms: int | None) -> None:
        """Send the drain verb directly to one worker (SIGTERM as fallback)."""
        request: dict[str, Any] = {"id": 0, "verb": "drain"}
        if timeout_ms is not None:
            request["timeout_ms"] = timeout_ms
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, handle.port), timeout=2.0
            )
        except (OSError, asyncio.TimeoutError):
            if handle.alive():
                handle.process.terminate()
            return
        try:
            writer.write(encode_message(request))
            await writer.drain()
            await asyncio.wait_for(reader.readline(), timeout=5.0)
        except (OSError, asyncio.TimeoutError):
            if handle.alive():
                handle.process.terminate()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    # ---------------------------------------------------------------- routing
    def worker_for(self, affinity: str) -> WorkerHandle:
        """The worker an affinity token routes to (tests kill this one)."""
        return self.workers[_affinity_index(affinity, self.num_workers)]

    def _route(self, affinity: str | None) -> WorkerHandle | None:
        """Pick the connection's worker; ``None`` when it cannot serve now."""
        if affinity is not None:
            handle = self.worker_for(affinity)
            # Affinity pins the session to the worker holding its state; a
            # worker mid-respawn answers UNAVAILABLE (retryable) rather than
            # failing over to a worker without that state.
            return handle if handle.state == READY else None
        ready = [handle for handle in self.workers if handle.state == READY]
        if not ready:
            return None
        handle = ready[self._round_robin % len(ready)]
        self._round_robin += 1
        return handle

    async def _serve_frontend_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Route on the first request, then pump bytes both ways."""
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
        try:
            while True:
                try:
                    first = await reader.readline()
                except ValueError:
                    first = b""
                if not first:
                    return
                affinity: str | None = None
                request_id: Any = None
                try:
                    request = decode_message(first)
                    request_id = request.get("id")
                    raw_affinity = request.get("affinity")
                    affinity = raw_affinity if isinstance(raw_affinity, str) else None
                except ProtocolError:
                    pass  # let the worker produce the BAD_REQUEST response
                handle = self._route(affinity)
                backend = None
                if handle is not None and handle.port is not None:
                    try:
                        backend = await asyncio.wait_for(
                            asyncio.open_connection(self.host, handle.port), timeout=2.0
                        )
                    except (OSError, asyncio.TimeoutError):
                        backend = None
                if backend is not None:
                    break
                # Answer on the same connection and re-route the next request:
                # a retrying client must be able to sit out a respawn without
                # its retries dying on a half-closed socket.
                error = ProtocolError(
                    E_UNAVAILABLE,
                    "no worker available for this session; retry with backoff",
                    {"affinity": affinity},
                )
                writer.write(encode_message(error_response(request_id, error)))
                await writer.drain()
            worker_reader, worker_writer = backend
            try:
                worker_writer.write(first)
                await worker_writer.drain()
                await asyncio.gather(
                    self._pump(reader, worker_writer),
                    self._pump(worker_reader, writer),
                )
            finally:
                worker_writer.close()
                try:
                    await worker_writer.wait_closed()
                except (OSError, ConnectionResetError):
                    pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # stop() cancels lingering connections; exit quietly
        finally:
            if task is not None:
                self._active.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionResetError, RuntimeError):
                pass

    @staticmethod
    async def _pump(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Copy bytes until EOF, then half-close so the peer sees the EOF too."""
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass

    # ------------------------------------------------------------------ stats
    def describe(self) -> dict[str, Any]:
        """A snapshot of worker states for operators and tests."""
        return {
            "num_workers": self.num_workers,
            "respawns": self.respawns,
            "workers": [handle.describe() for handle in self.workers],
        }
