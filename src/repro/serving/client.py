"""A blocking socket client for the query server's NDJSON protocol.

One :class:`QueryClient` owns one connection; requests are issued
sequentially (the server answers a connection's requests in order).  Protocol
failures surface as :class:`ServingError` carrying the structured error code,
so callers branch on ``error.code`` (``BUSY``, ``DEADLINE``, ``FAULT``, ...)
instead of parsing messages.  The client is intentionally dependency-free —
``docs/PROTOCOL.md`` is the contract; this class is just the reference
implementation.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from .protocol import MAX_LINE_BYTES, ProtocolError, decode_message, encode_message

__all__ = ["QueryClient", "ServingError"]


class ServingError(Exception):
    """A server-reported error response (the wire ``error`` object, raised)."""

    def __init__(self, code: str, message: str, details: Mapping[str, Any] | None = None):
        self.code = code
        self.message = message
        self.details = dict(details or {})
        super().__init__(f"{code}: {message}")


class QueryClient:
    """Blocking protocol client: ``connect``, issue verbs, ``close``.

    Usable as a context manager.  ``timeout`` is the socket timeout in
    seconds for connect and for each response (``None`` blocks forever —
    deadline-less queries can legitimately run long).
    """

    def __init__(self, host: str, port: int, timeout: float | None = 60.0) -> None:
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    # --------------------------------------------------------------- plumbing
    def request(self, verb: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the success payload.

        Raises :class:`ServingError` on an ``"ok": false`` response and
        :class:`ConnectionError` if the server hangs up mid-request.
        """
        self._next_id += 1
        request_id = self._next_id
        self._socket.sendall(encode_message({"id": request_id, "verb": verb, **fields}))
        line = self._reader.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            response = decode_message(line)
        except ProtocolError as error:
            raise ConnectionError(f"unreadable server response: {error}") from error
        if response.get("ok"):
            return response
        error_payload = response.get("error") or {}
        raise ServingError(
            error_payload.get("code", "INTERNAL"),
            error_payload.get("message", "unknown server error"),
            error_payload.get("details"),
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ verbs
    def ping(self) -> dict[str, Any]:
        """Server liveness + protocol version."""
        return self.request("ping")

    def register(
        self,
        name: str,
        intervals: list[list[float]],
        streaming: bool = False,
    ) -> dict[str, Any]:
        """Register a named collection from explicit ``[uid, start, end]`` triples."""
        return self.request("register", name=name, intervals=intervals, streaming=streaming)

    def load(
        self,
        names: list[str],
        size: int = 10_000,
        seed: int = 7,
        streaming: bool = False,
    ) -> dict[str, Any]:
        """Ask the server to generate synthetic collections under these names."""
        return self.request("load", names=names, size=size, seed=seed, streaming=streaming)

    def ingest(self, name: str, intervals: list[list[float]]) -> dict[str, Any]:
        """Stage one batch on a streaming collection."""
        return self.request("ingest", name=name, intervals=intervals)

    def query(
        self,
        query: str,
        collections: list[str],
        params: str = "P1",
        k: int = 100,
        algorithm: str = "tkij",
        **fields: Any,
    ) -> dict[str, Any]:
        """Run one registry query; extra fields pass through (options, deadline_ms, fault...)."""
        return self.request(
            "query",
            query=query,
            collections=collections,
            params=params,
            k=k,
            algorithm=algorithm,
            **fields,
        )

    def stats(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        return self.request("stats")

    def collections(self) -> dict[str, Any]:
        """The registered collections."""
        return self.request("collections")

    def algorithms(self) -> dict[str, Any]:
        """The registry contents."""
        return self.request("algorithms")

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (acknowledged before it goes down)."""
        return self.request("shutdown")
