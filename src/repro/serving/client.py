"""A blocking socket client for the query server's NDJSON protocol.

One :class:`QueryClient` owns one connection; requests are issued
sequentially (the server answers a connection's requests in order).  Protocol
failures surface as :class:`ServingError` carrying the structured error code,
so callers branch on ``error.code`` (``BUSY``, ``DEADLINE``, ``FAULT``, ...)
instead of parsing messages.  The client is intentionally dependency-free —
``docs/PROTOCOL.md`` is the contract; this class is just the reference
implementation.

Robustness: constructed with a :class:`~repro.serving.retry.RetryPolicy`, the
client reconnects and retries through worker crashes, drains and rolling
restarts — transport failures (reset, EOF, truncated frame) are retried for
idempotent verbs only, while ``BUSY`` / ``DRAINING`` / ``UNAVAILABLE``
responses are retried for every verb (the server rejects those before any
state changes).  A truncated response frame — a line arriving without its
terminating newline, including one of exactly ``MAX_LINE_BYTES`` — is never
decoded: it raises :class:`ConnectionError` instead of silently parsing a
partial frame.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Mapping

from .protocol import MAX_LINE_BYTES, ProtocolError, decode_message, encode_message
from .retry import IDEMPOTENT_VERBS, RETRYABLE_CODES, RetryPolicy

__all__ = ["QueryClient", "ServingError"]


class ServingError(Exception):
    """A server-reported error response (the wire ``error`` object, raised)."""

    def __init__(self, code: str, message: str, details: Mapping[str, Any] | None = None):
        self.code = code
        self.message = message
        self.details = dict(details or {})
        super().__init__(f"{code}: {message}")


class QueryClient:
    """Blocking protocol client: ``connect``, issue verbs, ``close``.

    Usable as a context manager.  ``timeout`` is the socket timeout in
    seconds for connect and for each response (``None`` blocks forever —
    deadline-less queries can legitimately run long).  ``retry`` enables
    automatic reconnect/retry (see the module docstring); ``affinity`` is an
    opaque token stamped on every request so a supervisor frontend routes this
    client — and its streaming sessions — to a stable worker across
    reconnects.  ``retries`` and ``reconnects`` count what the policy did.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        retry: RetryPolicy | None = None,
        affinity: str | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.affinity = affinity
        self.retries = 0
        self.reconnects = 0
        self._sleep = sleep
        self._socket: socket.socket | None = None
        self._reader: Any = None
        self._next_id = 0
        self._connect()

    # --------------------------------------------------------------- plumbing
    def _connect(self) -> None:
        self._socket = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._reader = self._socket.makefile("rb")

    def _disconnect(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    def _attempt(self, message: dict[str, Any]) -> dict[str, Any]:
        """One wire round-trip; raises ConnectionError on any transport fault."""
        if self._socket is None:
            self.reconnects += 1
            self._connect()
        try:
            self._socket.sendall(encode_message(message))
            line = self._reader.readline(MAX_LINE_BYTES)
        except (OSError, ValueError) as error:
            raise ConnectionError(f"transport failure: {error}") from error
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # Either the peer died mid-frame or the line hit MAX_LINE_BYTES
            # exactly; both leave a partial frame that must not be decoded.
            raise ConnectionError(
                f"truncated response frame ({len(line)} bytes, no terminator)"
            )
        try:
            response = decode_message(line)
        except ProtocolError as error:
            raise ConnectionError(f"unreadable server response: {error}") from error
        if response.get("ok"):
            return response
        error_payload = response.get("error") or {}
        raise ServingError(
            error_payload.get("code", "INTERNAL"),
            error_payload.get("message", "unknown server error"),
            error_payload.get("details"),
        )

    def request(self, verb: str, **fields: Any) -> dict[str, Any]:
        """Send one request and return the success payload.

        Raises :class:`ServingError` on an ``"ok": false`` response and
        :class:`ConnectionError` on transport failures (hang-up mid-request,
        truncated frame).  With a :class:`RetryPolicy`, retryable failures are
        retried under its backoff schedule before surfacing.
        """
        if self.affinity is not None:
            fields.setdefault("affinity", self.affinity)
        # Transport failures leave non-idempotent verbs ambiguous (the server
        # may or may not have executed); seq-carrying ingests are deduped
        # server-side, which makes them retry-safe.
        transport_safe = verb in IDEMPOTENT_VERBS or (
            verb == "ingest" and fields.get("seq") is not None
        )
        attempt = 0
        while True:
            self._next_id += 1
            try:
                return self._attempt({"id": self._next_id, "verb": verb, **fields})
            except (ConnectionError, socket.timeout, TimeoutError) as error:
                self._disconnect()
                failure: Exception = error
                retryable = transport_safe
            except ServingError as error:
                failure = error
                retryable = error.code in RETRYABLE_CODES
            if (
                self.retry is None
                or not retryable
                or attempt + 1 >= self.retry.max_attempts
            ):
                raise failure
            self._sleep(self.retry.delay(attempt))
            self.retries += 1
            attempt += 1

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._disconnect()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ verbs
    def ping(self) -> dict[str, Any]:
        """Server liveness + protocol version."""
        return self.request("ping")

    def health(self) -> dict[str, Any]:
        """Readiness probe: ``status`` is ``"ok"`` or ``"draining"``."""
        return self.request("health")

    def register(
        self,
        name: str,
        intervals: list[list[float]],
        streaming: bool = False,
    ) -> dict[str, Any]:
        """Register a named collection from explicit ``[uid, start, end]`` triples."""
        return self.request("register", name=name, intervals=intervals, streaming=streaming)

    def load(
        self,
        names: list[str],
        size: int = 10_000,
        seed: int = 7,
        streaming: bool = False,
    ) -> dict[str, Any]:
        """Ask the server to generate synthetic collections under these names."""
        return self.request("load", names=names, size=size, seed=seed, streaming=streaming)

    def ingest(
        self, name: str, intervals: list[list[float]], seq: int | None = None
    ) -> dict[str, Any]:
        """Stage one batch on a streaming collection.

        Pass a client-chosen ``seq`` number (unique per collection) to make the
        ingest exactly-once under retries: a replayed ``seq`` stages nothing
        and returns the original response with ``"deduped": true``.
        """
        fields: dict[str, Any] = {"name": name, "intervals": intervals}
        if seq is not None:
            fields["seq"] = seq
        return self.request("ingest", **fields)

    def query(
        self,
        query: str,
        collections: list[str],
        params: str = "P1",
        k: int = 100,
        algorithm: str = "tkij",
        **fields: Any,
    ) -> dict[str, Any]:
        """Run one registry query; extra fields pass through (options, deadline_ms, fault...)."""
        return self.request(
            "query",
            query=query,
            collections=collections,
            params=params,
            k=k,
            algorithm=algorithm,
            **fields,
        )

    def stats(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        return self.request("stats")

    def collections(self) -> dict[str, Any]:
        """The registered collections."""
        return self.request("collections")

    def algorithms(self) -> dict[str, Any]:
        """The registry contents."""
        return self.request("algorithms")

    def drain(self, timeout_ms: int | None = None) -> dict[str, Any]:
        """Ask the server to drain: finish inflight work, checkpoint, exit."""
        fields: dict[str, Any] = {}
        if timeout_ms is not None:
            fields["timeout_ms"] = timeout_ms
        return self.request("drain", **fields)

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (acknowledged before it goes down)."""
        return self.request("shutdown")
