"""Admission control and per-request metrics of the query server.

Both classes are event-loop-local: the server mutates them only from its loop
thread (executor threads hand results back before metrics are recorded), so
they need no locks — what makes them independently unit-testable without an
event loop.
"""

from __future__ import annotations

import asyncio
import math
from collections import Counter, deque
from typing import Any

from ..mapreduce import Counters

__all__ = ["AdmissionController", "LatencyRecorder", "ServerMetrics"]


class AdmissionController:
    """Bounded in-flight execution slots plus a bounded admission queue.

    ``max_inflight`` queries execute concurrently; up to ``max_queue`` more
    wait for a slot.  :meth:`try_enter` is the *reject* decision — it must be
    called (synchronously, on the loop thread) before :meth:`acquire`, and
    returns ``False`` exactly when every slot is busy **and** the queue is at
    depth, which the server surfaces as a structured BUSY error.  Because both
    the check and the counter updates happen on the single loop thread, the
    decision is race-free without locking.
    """

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.waiting = 0
        self.rejected = 0
        self._slots = asyncio.Semaphore(max_inflight)

    def try_enter(self) -> bool:
        """The admit/reject decision; counts the rejection when full."""
        if self.inflight >= self.max_inflight and self.waiting >= self.max_queue:
            self.rejected += 1
            return False
        return True

    async def acquire(self) -> None:
        """Wait for an execution slot (after a successful :meth:`try_enter`)."""
        self.waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self.waiting -= 1
        self.inflight += 1

    def release(self) -> None:
        """Return an execution slot."""
        self.inflight -= 1
        self._slots.release()

    def describe(self) -> dict[str, int]:
        """The admission state reported by the ``stats`` verb."""
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self.inflight,
            "waiting": self.waiting,
            "rejected": self.rejected,
        }


class LatencyRecorder:
    """A bounded sliding window of latency samples with percentile summaries.

    The window (default 4096 samples) bounds memory on a long-lived server;
    percentiles are nearest-rank over the window, so with fewer samples than
    the window they are exact.
    """

    def __init__(self, window: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total_seconds = 0.0

    def add(self, seconds: float) -> None:
        """Record one sample."""
        self._samples.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 1]) over the current window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def describe(self) -> dict[str, float]:
        """count / mean / p50 / p99 / max summary of the window."""
        window_max = max(self._samples) if self._samples else 0.0
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": float(self.count),
            "mean_seconds": mean,
            "p50_seconds": self.percentile(0.50),
            "p99_seconds": self.percentile(0.99),
            "max_seconds": window_max,
        }


class ServerMetrics:
    """Everything the ``stats`` verb reports about request handling.

    Per-verb request counts, query outcomes by error code, queue/plan/execute
    latency distributions, and the *deterministic* engine totals (shuffle,
    spill, merged counters) accumulated from every completed query's
    :func:`~repro.serving.protocol.deterministic_metrics`.
    """

    def __init__(self) -> None:
        self.requests: Counter[str] = Counter()
        self.queries_ok = 0
        self.query_errors: Counter[str] = Counter()
        self.queue_latency = LatencyRecorder()
        self.plan_latency = LatencyRecorder()
        self.execute_latency = LatencyRecorder()
        self.total_latency = LatencyRecorder()
        self.engine_counters = Counters()
        self.shuffle_records = 0
        self.shuffle_bytes = 0
        self.bytes_spilled = 0
        self.spill_runs = 0
        self.statistics_cache_hits = 0

    def record_request(self, verb: str) -> None:
        """Count one dispatched request (known verbs only)."""
        self.requests[verb] += 1

    def record_query_success(
        self,
        report_metrics: dict[str, Any],
        statistics_cached: bool | None,
        queue_seconds: float,
        plan_seconds: float,
        execute_seconds: float,
    ) -> None:
        """Fold one completed query into the aggregates.

        ``report_metrics`` is the query's :func:`deterministic_metrics` dict —
        computed once by the handler and shared with the response payload.
        """
        self.queries_ok += 1
        self.queue_latency.add(queue_seconds)
        self.plan_latency.add(plan_seconds)
        self.execute_latency.add(execute_seconds)
        self.total_latency.add(queue_seconds + plan_seconds + execute_seconds)
        self.shuffle_records += report_metrics["shuffle_records"]
        self.shuffle_bytes += report_metrics["shuffle_bytes"]
        self.bytes_spilled += report_metrics["bytes_spilled"]
        self.spill_runs += report_metrics["spill_runs"]
        merged = Counters()
        merged.values.update(report_metrics["counters"])
        self.engine_counters.merge(merged)
        if statistics_cached:
            self.statistics_cache_hits += 1

    def record_query_error(self, code: str) -> None:
        """Count one failed query by its protocol error code."""
        self.query_errors[code] += 1

    def describe(self) -> dict[str, Any]:
        """The ``stats`` payload sections owned by this recorder."""
        return {
            "requests": dict(self.requests),
            "queries": {
                "ok": self.queries_ok,
                "errors": dict(self.query_errors),
                "statistics_cache_hits": self.statistics_cache_hits,
            },
            "latency": {
                "queue": self.queue_latency.describe(),
                "plan": self.plan_latency.describe(),
                "execute": self.execute_latency.describe(),
                "total": self.total_latency.describe(),
            },
            "engine": {
                "shuffle_records": self.shuffle_records,
                "shuffle_bytes": self.shuffle_bytes,
                "bytes_spilled": self.bytes_spilled,
                "spill_runs": self.spill_runs,
                "counters": self.engine_counters.as_dict(),
            },
        }
