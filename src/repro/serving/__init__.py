"""Query serving layer: a long-lived asyncio server over one warm ExecutionContext.

Everything PRs 1–7 built — the algorithm registry, pluggable backends, the
statistics cache, streaming top-k, fault tolerance — is reachable here as a
network service instead of a one-shot library call:

* :mod:`repro.serving.protocol` — the newline-delimited-JSON wire protocol
  (framing, verbs, error codes; the normative reference is
  ``docs/PROTOCOL.md``);
* :class:`QueryServer` — the asyncio server multiplexing concurrent sessions
  onto one shared :class:`~repro.plan.ExecutionContext` (single warm
  :class:`~repro.plan.StatisticsCache` + backend pool), with admission
  control, per-query deadlines backed by the engine's cooperative
  cancellation, and a ``stats`` verb exposing per-request metrics;
* :class:`BackgroundServer` — run a server on a daemon thread (tests, load
  generators, embedding);
* :class:`QueryClient` — a blocking socket client speaking the protocol;
* :mod:`repro.serving.cli` — the ``repro-serve`` console script and the
  ``serve`` / ``load`` subcommands of ``python -m repro.experiments``.
"""

from .client import QueryClient, ServingError
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_results,
    deterministic_metrics,
)
from .server import BackgroundServer, QueryServer
from .session import AdmissionController, LatencyRecorder, ServerMetrics

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ProtocolError",
    "decode_results",
    "deterministic_metrics",
    "QueryServer",
    "BackgroundServer",
    "QueryClient",
    "ServingError",
    "AdmissionController",
    "LatencyRecorder",
    "ServerMetrics",
]
