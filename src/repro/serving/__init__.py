"""Query serving layer: a long-lived asyncio server over one warm ExecutionContext.

Everything PRs 1–7 built — the algorithm registry, pluggable backends, the
statistics cache, streaming top-k, fault tolerance — is reachable here as a
network service instead of a one-shot library call:

* :mod:`repro.serving.protocol` — the newline-delimited-JSON wire protocol
  (framing, verbs, error codes; the normative reference is
  ``docs/PROTOCOL.md``);
* :class:`QueryServer` — the asyncio server multiplexing concurrent sessions
  onto one shared :class:`~repro.plan.ExecutionContext` (single warm
  :class:`~repro.plan.StatisticsCache` + backend pool), with admission
  control, per-query deadlines backed by the engine's cooperative
  cancellation, graceful drain (SIGTERM or the ``drain`` verb) and atomic
  state checkpointing, and a ``stats`` verb exposing per-request metrics;
* :class:`ServerSupervisor` — N workers as supervised child processes behind
  one frontend: session-affinity routing, crash respawn with backoff and a
  circuit breaker, warm restore from checkpoints, rolling restart;
* :class:`BackgroundServer` — run a server (or supervisor, or chaos proxy) on
  a daemon thread (tests, load generators, embedding);
* :class:`QueryClient` — a blocking socket client speaking the protocol, with
  a deterministic :class:`RetryPolicy` (reconnect, capped exponential backoff,
  seeded jitter) and exactly-once ingest via sequence numbers;
* :class:`ChaosProxy` — deterministic wire-level fault injection (connection
  drops, frame truncation, delays) for reproducible recovery testing;
* :mod:`repro.serving.cli` — the ``repro-serve`` console script and the
  ``serve`` / ``load`` subcommands of ``python -m repro.experiments``.
"""

from .chaos import ChaosPlan, ChaosProxy
from .client import QueryClient, ServingError
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_results,
    deterministic_metrics,
)
from .retry import IDEMPOTENT_VERBS, RETRYABLE_CODES, RetryPolicy
from .server import BackgroundServer, QueryServer
from .session import AdmissionController, LatencyRecorder, ServerMetrics
from .supervisor import ServerSupervisor, WorkerHandle

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ProtocolError",
    "decode_results",
    "deterministic_metrics",
    "QueryServer",
    "BackgroundServer",
    "ServerSupervisor",
    "WorkerHandle",
    "QueryClient",
    "ServingError",
    "RetryPolicy",
    "RETRYABLE_CODES",
    "IDEMPOTENT_VERBS",
    "ChaosPlan",
    "ChaosProxy",
    "AdmissionController",
    "LatencyRecorder",
    "ServerMetrics",
]
