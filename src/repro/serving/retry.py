"""Deterministic client-side retry policy: capped exponential backoff, seeded jitter.

A cloud of retrying clients must neither hammer a recovering worker (hence
exponential backoff with a cap) nor retry in lock-step (hence jitter) — but a
*test* of the recovery path must be reproducible, so the jitter is not
``random.random()``: it is a keyed blake2b hash of ``(seed, attempt)``, the
same determinism pattern as :class:`repro.mapreduce.FaultPlan`.  Two clients
with different seeds spread out; the same seed replays the same schedule.

Which failures are worth retrying is the client's decision (see
:data:`RETRYABLE_CODES` and :data:`IDEMPOTENT_VERBS`); this module only owns
the *when*.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b

__all__ = ["RETRYABLE_CODES", "IDEMPOTENT_VERBS", "RetryPolicy"]

RETRYABLE_CODES = ("BUSY", "DRAINING", "UNAVAILABLE")
"""Structured error codes that mean "not executed — try again later".

All three are issued *before* any server-side state changes, so retrying is
safe for every verb, idempotent or not.
"""

IDEMPOTENT_VERBS = ("ping", "health", "query", "stats", "collections", "algorithms", "drain")
"""Verbs safe to resend after a *transport* failure (connection reset, EOF,
truncated frame), where the client cannot know whether the server executed the
request.  ``ingest`` joins this set when the request carries a ``seq`` number
(the server dedupes replays); ``register``/``load`` never do — a lost response
leaves them ambiguous, and the caller must reconcile via ``collections``.
"""


def _seeded_unit(seed: int, attempt: int) -> float:
    """Uniform [0, 1) draw keyed by (seed, attempt) — order- and time-free."""
    digest = blake2b(f"{seed}:{attempt}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    ``delay(attempt)`` is the sleep before retry number ``attempt`` (0-based):
    ``base_delay * multiplier**attempt`` capped at ``max_delay``, then spread
    over ``[1 - jitter/2, 1 + jitter/2]`` of itself by the seeded draw.
    ``max_attempts`` bounds the *total* number of tries, the first one
    included — ``max_attempts=1`` disables retries while keeping reconnects.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt numbers are non-negative")
        backoff = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter == 0.0 or backoff == 0.0:
            return backoff
        spread = self.jitter * (_seeded_unit(self.seed, attempt) - 0.5)
        # Clamp after jittering: max_delay is a hard ceiling, so upward jitter
        # on an already-capped backoff must not push the sleep past it.
        return min(backoff * (1.0 + spread), self.max_delay)
