"""Worker entry point: one supervised :class:`QueryServer` child process.

``python -m repro.serving.worker`` is what :class:`ServerSupervisor` spawns —
a module (not an inline ``-c`` script) so operators and the CI orphan check
can find workers by name in a process listing.  The worker:

* binds its own socket (``--port 0`` by default; the bound address is
  published atomically to ``--port-file`` so the supervisor never races the
  bind);
* restores :class:`QueryServer` state from ``--checkpoint`` when the file
  exists and is readable — a respawned worker comes back warm, with its
  collections, statistics cache, streaming state and ingest dedup table; a
  corrupt checkpoint starts the worker cold instead of crash-looping;
* drains on SIGTERM: new work is rejected with the DRAINING code, inflight
  queries get ``--drain-timeout`` seconds to finish, state is checkpointed
  atomically, then the process exits 0;
* watches its parent: if the supervisor dies without SIGTERMing its workers
  (SIGKILL, OOM), the worker is re-parented and drains itself rather than
  lingering as an orphan serving a frontend that no longer exists.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from pathlib import Path

from .server import QueryServer

__all__ = ["main", "run_worker"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serving.worker",
        description="One supervised query-server worker process.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    parser.add_argument("--worker-id", type=int, default=0)
    parser.add_argument("--checkpoint", default=None, help="server checkpoint file")
    parser.add_argument(
        "--port-file", default=None, help="publish the bound 'host port' here"
    )
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument("--default-deadline-ms", type=int, default=None)
    parser.add_argument(
        "--stats-cache-entries",
        type=int,
        default=None,
        help="bound the statistics cache to this many entries (LRU)",
    )
    parser.add_argument(
        "--plan-cache-entries",
        type=int,
        default=128,
        help="bound the auto-plan cache; 0 disables planner feedback",
    )
    parser.add_argument(
        "--cost-store", default=None, help="observed-cost store file (JSON lines)"
    )
    parser.add_argument(
        "--parent-pid",
        type=int,
        default=None,
        help="drain when this process is no longer the parent (orphan watchdog)",
    )
    return parser


def _publish_address(port_file: str, host: str, port: int) -> None:
    """Atomically write the bound address (the supervisor polls for this file)."""
    path = Path(port_file)
    staging = path.with_name(path.name + ".tmp")
    staging.write_text(f"{host} {port}\n", encoding="utf-8")
    os.replace(staging, path)


async def _watch_parent(
    server: QueryServer, parent: int | None, interval: float = 1.0
) -> None:
    """Drain when the parent process dies (the worker gets re-parented).

    The supervisor passes its own pid explicitly: a worker whose parent died
    before this first runs is already re-parented, and comparing against a
    pid recorded *now* would miss that.
    """
    if parent is None:
        parent = os.getppid()
    while True:
        if os.getppid() != parent:
            print(
                f"worker {server.worker_id}: supervisor died; draining",
                file=sys.stderr,
            )
            server.begin_drain()
            return
        await asyncio.sleep(interval)


async def run_worker(args: argparse.Namespace) -> int:
    server = QueryServer(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        worker_id=args.worker_id,
        checkpoint_path=args.checkpoint,
        drain_timeout=args.drain_timeout,
        stats_cache_entries=args.stats_cache_entries,
        plan_cache_entries=args.plan_cache_entries,
        cost_store_path=args.cost_store,
    )
    if args.checkpoint and Path(args.checkpoint).exists():
        try:
            server.restore_state(args.checkpoint)
            print(
                f"worker {args.worker_id}: restored checkpoint "
                f"({len(server.collections)} collections)",
                file=sys.stderr,
            )
        except ValueError as error:
            print(
                f"worker {args.worker_id}: starting cold ({error})",
                file=sys.stderr,
            )
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, server.begin_drain)
    try:
        host, port = await server.start()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.port_file:
        _publish_address(args.port_file, host, port)
    watchdog = asyncio.create_task(_watch_parent(server, args.parent_pid))
    try:
        await server.shutdown_requested.wait()
    finally:
        watchdog.cancel()
        await asyncio.gather(watchdog, return_exceptions=True)
        await server.stop()
        server.context.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(run_worker(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
