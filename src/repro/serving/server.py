"""The asyncio query server: many sessions, one warm ExecutionContext.

Architecture (DESIGN.md §12 has the full picture):

* a single-threaded **event loop** owns every piece of server state — the
  collection registry, admission counters, metrics — so handlers never lock;
* blocking engine work (plan + execute) runs on a **bounded thread pool**
  sized to ``max_inflight``; the admission semaphore is acquired on the loop
  before dispatch, so the pool never queues internally;
* all sessions share one :class:`~repro.plan.ExecutionContext`: a single warm
  :class:`~repro.plan.StatisticsCache` (now thread-safe) and one lazily
  created backend pool.  Per-request overrides (a fault plan) get a
  :meth:`~repro.plan.ExecutionContext.session_view` wrapping the shared pool
  in a :class:`~repro.mapreduce.FaultInjectingBackend`, so injected worker
  deaths stay scoped to one query;
* deadlines are enforced with the engine's cooperative cancellation: the loop
  arms a timer that sets the query's :class:`~repro.mapreduce.CancelToken`,
  and the engine observes it at task-wave boundaries — a timed-out query
  stops between waves and surfaces as a structured DEADLINE error.

Requests on one connection are handled sequentially (responses come back in
request order); concurrency comes from multiple connections.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Mapping

from ..datagen.synthetic import SyntheticConfig, generate_uniform_collection
from ..experiments.workloads import PARAMETERS, QUERIES, build_query
from ..mapreduce import (
    CancelToken,
    FaultInjectingBackend,
    FaultPlan,
    QueryCancelledError,
    TaskFailedError,
    cancel_scope,
    check_cancelled,
)
from ..plan import ExecutionContext, REGISTRY, get_algorithm
from ..plan.algorithm import Algorithm, RunReport
from ..plan.context import atomic_pickle_dump
from ..plan.feedback import CostStore, PlanCache, PlanFeedback
from ..query.graph import RTJQuery
from ..streaming.collection import StreamingCollection
from ..temporal.interval import IntervalCollection
from .protocol import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DEADLINE,
    E_DRAINING,
    E_EXISTS,
    E_FAULT,
    E_INTERNAL,
    E_NOT_FOUND,
    E_UNKNOWN_VERB,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    decode_intervals,
    encode_message,
    encode_results,
    error_response,
    deterministic_metrics,
    ok_response,
)
from .session import AdmissionController, ServerMetrics

__all__ = ["QueryServer", "BackgroundServer"]

SERVER_CHECKPOINT_KIND = "query-server"
SERVER_CHECKPOINT_VERSION = 1


@dataclass
class _QueryCall:
    """A fully-parsed, ready-to-execute query request."""

    algorithm: Algorithm
    query: RTJQuery
    context: ExecutionContext
    knobs: dict[str, Any]
    query_name: str
    k: int
    deadline_ms: int | None


def _require(request: Mapping[str, Any], field: str, kind: type, what: str) -> Any:
    """Fetch a required, typed request field (BAD_REQUEST otherwise)."""
    value = request.get(field)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(E_BAD_REQUEST, f"field {field!r} must be {what}")
    return value


class QueryServer:
    """Serve registry queries over the NDJSON protocol from one warm context.

    ``context`` defaults to a fresh :class:`~repro.plan.ExecutionContext`;
    passing one in lets tests and embedders pre-warm or share it.  ``port=0``
    binds an ephemeral port (read it back from :attr:`address` after
    :meth:`start`).
    """

    #: Every verb the server accepts — docs/PROTOCOL.md must document each one
    #: (tests/test_serving.py diffs the document against this tuple).
    VERBS = (
        "ping",
        "health",
        "register",
        "load",
        "ingest",
        "query",
        "stats",
        "collections",
        "algorithms",
        "drain",
        "shutdown",
    )

    def __init__(
        self,
        context: ExecutionContext | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 4,
        max_queue: int = 16,
        default_deadline_ms: int | None = None,
        worker_id: int | None = None,
        checkpoint_path: str | Path | None = None,
        drain_timeout: float = 30.0,
        stats_cache_entries: int | None = None,
        plan_cache_entries: int | None = 128,
        cost_store_path: str | Path | None = None,
    ) -> None:
        self.context = context if context is not None else ExecutionContext()
        if stats_cache_entries is not None:
            # Bound the warm statistics cache: LRU eviction past this many
            # (collections, granularity) entries.
            self.context.statistics.max_entries = stats_cache_entries
        if plan_cache_entries and self.context.feedback is None:
            # Attach the planner feedback loop: memoized auto plans plus the
            # (optional, on-disk) observed-cost store.
            self.context.feedback = PlanFeedback(
                plan_cache=PlanCache(max_entries=plan_cache_entries),
                cost_store=CostStore(cost_store_path) if cost_store_path else None,
            )
        self.host = host
        self.port = port
        self.default_deadline_ms = default_deadline_ms
        self.worker_id = worker_id
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.drain_timeout = drain_timeout
        self.admission = AdmissionController(max_inflight, max_queue)
        self.metrics = ServerMetrics()
        self.collections: dict[str, IntervalCollection] = {}
        self.draining = False
        self.shutdown_requested = asyncio.Event()
        self.started_at = time.monotonic()
        self._server: asyncio.base_events.Server | None = None
        self._drain_task: asyncio.Task | None = None
        self._inflight_tokens: set[CancelToken] = set()
        self._ingest_seqs: dict[str, dict[int, dict[str, Any]]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        self._session_ids = itertools.count(1)
        self._handlers: dict[str, Callable[..., Any]] = {
            "ping": self._handle_ping,
            "health": self._handle_health,
            "register": self._handle_register,
            "load": self._handle_load,
            "ingest": self._handle_ingest,
            "query": self._handle_query,
            "stats": self._handle_stats,
            "collections": self._handle_collections,
            "algorithms": self._handle_algorithms,
            "drain": self._handle_drain,
            "shutdown": self._handle_shutdown,
        }
        assert tuple(self._handlers) == self.VERBS

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the bound address."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting, close the wire, release the executor.

        The shared :class:`~repro.plan.ExecutionContext` is *not* closed: the
        caller created (or defaulted) it and may want its warm state — the
        CLI's ``serve`` closes it explicitly on exit.
        """
        if self._server is not None:
            self._server.close()
            try:
                # On 3.12+ wait_closed also waits for connection handlers; a
                # client that never disconnects must not wedge shutdown.
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._server = None
        if self._drain_task is not None and not self._drain_task.done():
            self._drain_task.cancel()
        # A straggler past the drain timeout must not wedge process exit: the
        # engine observes its cancelled token at the next task-wave boundary.
        for token in tuple(self._inflight_tokens):
            token.cancel("server stopping")
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or cancellation), then stop."""
        await self.start()
        try:
            await self.shutdown_requested.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------- checkpoint / drain
    def checkpoint(self, path: str | Path | None = None) -> dict[str, Any]:
        """Snapshot the server's durable state (and optionally persist it).

        Wraps :meth:`ExecutionContext.checkpoint` (statistics cache + stream
        states) with the server's own registry: the collections (including
        staged-but-uncommitted streaming batches) and the ingest
        sequence-number table, so a respawned worker dedupes retried ingests
        from before the crash.  Persisted with the same atomic
        write-then-rename as the context checkpoint.
        """
        snapshot: dict[str, Any] = {
            "kind": SERVER_CHECKPOINT_KIND,
            "version": SERVER_CHECKPOINT_VERSION,
            "context": self.context.checkpoint(),
            "collections": self.collections,
            "ingest_seqs": self._ingest_seqs,
        }
        if path is not None:
            atomic_pickle_dump(path, snapshot)
        return snapshot

    def restore_state(self, source: "Mapping[str, Any] | str | Path") -> "QueryServer":
        """Restore a :meth:`checkpoint` (a snapshot dict or a pickle path).

        Returns ``self`` for chaining; raises :class:`ValueError` on anything
        that is not a readable server checkpoint — a worker booting from a
        corrupt file starts cold instead of crash-looping.
        """
        if isinstance(source, (str, Path)):
            try:
                with open(source, "rb") as handle:
                    snapshot = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
                raise ValueError(
                    f"cannot read server checkpoint {str(source)!r}: {error}"
                ) from error
        else:
            snapshot = source
        if not isinstance(snapshot, Mapping) or snapshot.get("kind") != SERVER_CHECKPOINT_KIND:
            raise ValueError("not a query-server checkpoint")
        if snapshot.get("version") != SERVER_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported server checkpoint version {snapshot.get('version')!r}"
            )
        self.context.restore(snapshot["context"])
        self.collections = dict(snapshot["collections"])
        self._ingest_seqs = {
            name: dict(table) for name, table in dict(snapshot["ingest_seqs"]).items()
        }
        return self

    def _maybe_checkpoint(self) -> None:
        """Persist durable state after a mutation, when a checkpoint path is set."""
        if self.checkpoint_path is not None:
            self.checkpoint(self.checkpoint_path)

    def begin_drain(self, timeout: float | None = None) -> None:
        """Flip to DRAINING: reject new work, finish inflight, checkpoint, exit.

        Idempotent; must be called on the event loop (the ``drain`` verb and
        the worker's SIGTERM handler both are).  Inflight queries get up to
        ``timeout`` seconds (default :attr:`drain_timeout`) to finish; past
        that their cancel tokens fire and the engine stops them at the next
        task-wave boundary.  Once quiescent the server checkpoints its state
        and requests shutdown.
        """
        if self.draining:
            return
        self.draining = True
        budget = self.drain_timeout if timeout is None else timeout
        self._drain_task = asyncio.get_running_loop().create_task(self._drain(budget))

    async def _drain(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while self.admission.inflight > 0 or self.admission.waiting > 0:
            if time.monotonic() >= deadline:
                for token in tuple(self._inflight_tokens):
                    token.cancel(f"drain timeout of {timeout} s exceeded")
                break
            await asyncio.sleep(0.01)
        # Give cancelled stragglers a moment to unwind before checkpointing.
        while self.admission.inflight > 0 and time.monotonic() < deadline + 5.0:
            await asyncio.sleep(0.01)
        self._maybe_checkpoint()
        self.shutdown_requested.set()

    def _reject_if_draining(self) -> None:
        if self.draining:
            raise ProtocolError(
                E_DRAINING,
                "server is draining; retry against a fresh worker",
                {"worker": self.worker_id, "inflight": self.admission.inflight},
            )

    # ------------------------------------------------------------ connections
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_id = next(self._session_ids)
        try:
            while not self.shutdown_requested.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # The framed line overran MAX_LINE_BYTES; the stream is no
                    # longer in sync, so report and drop the connection.
                    oversize = ProtocolError(
                        E_BAD_REQUEST, f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write(encode_message(error_response(None, oversize)))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line, session_id)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels handlers blocked in readline; completing
            # normally keeps asyncio's stream callback from logging the
            # cancellation as an unhandled error.
            pass
        finally:
            # A connection can outlive the event loop when BackgroundServer
            # tears down while a client lingers; closing then raises.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass

    async def _dispatch(self, line: bytes, session_id: int) -> dict[str, Any]:
        """Decode, route and execute one request; always returns a response."""
        try:
            request = decode_message(line)
        except ProtocolError as error:
            return error_response(None, error)
        request_id = request.get("id")
        verb = request.get("verb")
        handler = self._handlers.get(verb) if isinstance(verb, str) else None
        if handler is None:
            return error_response(
                request_id,
                ProtocolError(
                    E_UNKNOWN_VERB,
                    f"unknown verb {verb!r}",
                    {"verbs": list(self.VERBS)},
                ),
            )
        self.metrics.record_request(verb)
        try:
            payload = await handler(request, session_id)
            return ok_response(request_id, payload)
        except ProtocolError as error:
            if verb == "query":
                self.metrics.record_query_error(error.code)
            return error_response(request_id, error)
        except Exception as error:  # noqa: BLE001 - one query must never kill the server
            if verb == "query":
                self.metrics.record_query_error(E_INTERNAL)
            return error_response(
                request_id,
                ProtocolError(E_INTERNAL, f"{type(error).__name__}: {error}"),
            )

    # ----------------------------------------------------------------- verbs
    async def _handle_ping(self, request: Mapping[str, Any], session_id: int) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "server": "repro-serve",
            "session": session_id,
        }

    async def _handle_health(self, request: Mapping[str, Any], session_id: int) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "worker": self.worker_id,
            "inflight": self.admission.inflight,
            "waiting": self.admission.waiting,
            "collections": len(self.collections),
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    async def _handle_drain(self, request: Mapping[str, Any], session_id: int) -> dict:
        timeout_ms = request.get("timeout_ms")
        if timeout_ms is not None and (
            not isinstance(timeout_ms, int) or isinstance(timeout_ms, bool) or timeout_ms <= 0
        ):
            raise ProtocolError(
                E_BAD_REQUEST, "field 'timeout_ms' must be a positive integer"
            )
        self.begin_drain(None if timeout_ms is None else timeout_ms / 1000.0)
        return {
            "draining": True,
            "worker": self.worker_id,
            "inflight": self.admission.inflight,
            "waiting": self.admission.waiting,
        }

    async def _handle_register(self, request: Mapping[str, Any], session_id: int) -> dict:
        self._reject_if_draining()
        name = _require(request, "name", str, "a string")
        if name in self.collections:
            raise ProtocolError(
                E_EXISTS, f"collection {name!r} already registered", {"name": name}
            )
        intervals = decode_intervals(request.get("intervals", []))
        streaming = bool(request.get("streaming", False))
        try:
            if streaming:
                collection: IntervalCollection = StreamingCollection(name, intervals)
            else:
                collection = IntervalCollection(name, intervals)
        except ValueError as error:
            raise ProtocolError(E_BAD_REQUEST, str(error)) from error
        self.collections[name] = collection
        self._maybe_checkpoint()
        return {"name": name, "size": len(collection), "streaming": streaming}

    async def _handle_load(self, request: Mapping[str, Any], session_id: int) -> dict:
        self._reject_if_draining()
        names = request.get("names")
        if (
            not isinstance(names, list)
            or not names
            or not all(isinstance(n, str) for n in names)
        ):
            raise ProtocolError(E_BAD_REQUEST, "field 'names' must be a non-empty string list")
        taken = [n for n in names if n in self.collections]
        if taken:
            raise ProtocolError(
                E_EXISTS, f"collections already registered: {taken}", {"names": taken}
            )
        size = request.get("size", 10_000)
        if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
            raise ProtocolError(E_BAD_REQUEST, "field 'size' must be a positive integer")
        seed = request.get("seed", 7)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(E_BAD_REQUEST, "field 'seed' must be an integer")
        streaming = bool(request.get("streaming", False))
        config = SyntheticConfig(size=size)

        def generate() -> dict[str, IntervalCollection]:
            generated = {}
            for offset, name in enumerate(names):
                collection = generate_uniform_collection(name, config, seed=seed + offset)
                if streaming:
                    collection = StreamingCollection.from_collection(collection)
                generated[name] = collection
            return generated

        # Synthetic generation is CPU work; keep the loop responsive.
        loop = asyncio.get_running_loop()
        generated = await loop.run_in_executor(self._executor, generate)
        self.collections.update(generated)
        self._maybe_checkpoint()
        return {
            "collections": [
                {"name": name, "size": len(collection), "streaming": streaming}
                for name, collection in generated.items()
            ]
        }

    async def _handle_ingest(self, request: Mapping[str, Any], session_id: int) -> dict:
        self._reject_if_draining()
        name = _require(request, "name", str, "a string")
        collection = self.collections.get(name)
        if collection is None:
            raise ProtocolError(E_NOT_FOUND, f"unknown collection {name!r}", {"name": name})
        if not isinstance(collection, StreamingCollection):
            raise ProtocolError(
                E_BAD_REQUEST, f"collection {name!r} is not streaming", {"name": name}
            )
        seq = request.get("seq")
        if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
            raise ProtocolError(E_BAD_REQUEST, "field 'seq' must be an integer")
        if seq is not None:
            # Exactly-once ingestion across client retries: a replayed sequence
            # number stages nothing and gets back the original response.
            recorded = self._ingest_seqs.get(name, {}).get(seq)
            if recorded is not None:
                return {**recorded, "deduped": True}
        intervals = decode_intervals(request.get("intervals"))
        try:
            staged = collection.ingest(intervals)
        except ValueError as error:
            raise ProtocolError(E_BAD_REQUEST, str(error)) from error
        payload = {
            "name": name,
            "staged": staged,
            "pending_batches": collection.pending_batches,
            "seq": seq,
        }
        if seq is not None:
            self._ingest_seqs.setdefault(name, {})[seq] = dict(payload)
        self._maybe_checkpoint()
        return {**payload, "deduped": False}

    async def _handle_query(self, request: Mapping[str, Any], session_id: int) -> dict:
        self._reject_if_draining()
        call = self._parse_query(request, session_id)
        if not self.admission.try_enter():
            raise ProtocolError(
                E_BUSY,
                "server at capacity; retry later",
                self.admission.describe(),
            )
        loop = asyncio.get_running_loop()
        token = CancelToken()
        self._inflight_tokens.add(token)
        deadline_handle: asyncio.TimerHandle | None = None
        if call.deadline_ms is not None:
            deadline_handle = loop.call_later(
                call.deadline_ms / 1000.0,
                token.cancel,
                f"deadline of {call.deadline_ms} ms exceeded",
            )
        queued_at = time.monotonic()
        await self.admission.acquire()
        queue_seconds = time.monotonic() - queued_at
        try:
            report, plan_seconds, execute_seconds = await loop.run_in_executor(
                self._executor, self._execute_call, call, token
            )
        except QueryCancelledError as error:
            raise ProtocolError(
                E_DEADLINE, error.reason, {"deadline_ms": call.deadline_ms}
            ) from error
        except TaskFailedError as error:
            raise ProtocolError(
                E_FAULT,
                str(error),
                {
                    "job": error.job_name,
                    "phase": error.phase,
                    "task": error.task_id,
                    "attempts": len(error.attempts),
                },
            ) from error
        except (ValueError, KeyError) as error:
            raise ProtocolError(E_BAD_REQUEST, str(error)) from error
        finally:
            self.admission.release()
            self._inflight_tokens.discard(token)
            if deadline_handle is not None:
                deadline_handle.cancel()
        metrics = deterministic_metrics(report)
        self.metrics.record_query_success(
            metrics, report.statistics_cached, queue_seconds, plan_seconds, execute_seconds
        )
        # Queries warm the statistics cache and advance streaming state; a
        # supervised worker persists both so a respawn comes back warm.
        self._maybe_checkpoint()
        return {
            "algorithm": report.algorithm,
            "query": call.query_name,
            "k": call.k,
            "results": encode_results(report.results),
            "statistics_cached": report.statistics_cached,
            "metrics": metrics,
            "timings": {
                "queue_seconds": queue_seconds,
                "plan_seconds": plan_seconds,
                "execute_seconds": execute_seconds,
            },
        }

    async def _handle_stats(self, request: Mapping[str, Any], session_id: int) -> dict:
        cache = self.context.statistics
        payload = self.metrics.describe()
        payload.update(
            {
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": time.monotonic() - self.started_at,
                "worker": self.worker_id,
                "draining": self.draining,
                "admission": self.admission.describe(),
                "statistics_cache": cache.describe(),
                "collections": len(self.collections),
            }
        )
        feedback = self.context.feedback
        if feedback is not None:
            payload["plan_cache"] = feedback.plan_cache.describe()
            if feedback.cost_store is not None:
                payload["cost_store"] = feedback.cost_store.describe()
        return payload

    async def _handle_collections(self, request: Mapping[str, Any], session_id: int) -> dict:
        return {
            "collections": [
                {
                    "name": name,
                    "size": len(collection),
                    "streaming": isinstance(collection, StreamingCollection),
                    "pending_batches": (
                        collection.pending_batches
                        if isinstance(collection, StreamingCollection)
                        else 0
                    ),
                }
                for name, collection in sorted(self.collections.items())
            ]
        }

    async def _handle_algorithms(self, request: Mapping[str, Any], session_id: int) -> dict:
        return {
            "algorithms": [
                {"name": name, "title": algo.title, "scored": algo.scored}
                for name, algo in sorted(REGISTRY.items())
            ]
        }

    async def _handle_shutdown(self, request: Mapping[str, Any], session_id: int) -> dict:
        self.shutdown_requested.set()
        return {"stopping": True}

    # ----------------------------------------------------------- query plumbing
    def _parse_query(self, request: Mapping[str, Any], session_id: int) -> _QueryCall:
        """Validate a ``query`` request against the registry and workload tables."""
        query_name = _require(request, "query", str, "a workload query name")
        names = request.get("collections")
        if (
            not isinstance(names, list)
            or not names
            or not all(isinstance(n, str) for n in names)
        ):
            raise ProtocolError(
                E_BAD_REQUEST, "field 'collections' must be a non-empty string list"
            )
        bound = []
        for name in names:
            collection = self.collections.get(name)
            if collection is None:
                raise ProtocolError(
                    E_NOT_FOUND, f"unknown collection {name!r}", {"name": name}
                )
            bound.append(collection)
        params = request.get("params", "P1")
        if params not in PARAMETERS:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown params {params!r}; expected one of {sorted(PARAMETERS)}",
            )
        k = request.get("k", 100)
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise ProtocolError(E_BAD_REQUEST, "field 'k' must be a positive integer")
        num_vertices = request.get("num_vertices")
        algorithm_name = request.get("algorithm", "tkij")
        try:
            algorithm = get_algorithm(algorithm_name)
        except KeyError as error:
            raise ProtocolError(
                E_NOT_FOUND, str(error.args[0]), {"algorithm": algorithm_name}
            ) from error
        try:
            query = build_query(query_name, bound, params, k, num_vertices)
        except (KeyError, ValueError) as error:
            message = str(error)
            if isinstance(error, KeyError):
                message = f"unknown query {query_name!r}; expected one of {sorted(QUERIES)}"
            raise ProtocolError(E_BAD_REQUEST, message) from error
        options = request.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError(E_BAD_REQUEST, "field 'options' must be an object")
        if algorithm.name == "tkij-streaming":
            # Per-session stream isolation by default: two sessions running the
            # same streaming query do not share persistent top-k state unless
            # they opt into a common stream_id.
            options = {"stream_id": f"session-{session_id}", **options}
        knobs = algorithm.plan_knobs(options)
        deadline_ms = request.get("deadline_ms", self.default_deadline_ms)
        if deadline_ms is not None and (
            not isinstance(deadline_ms, int) or isinstance(deadline_ms, bool) or deadline_ms <= 0
        ):
            raise ProtocolError(
                E_BAD_REQUEST, "field 'deadline_ms' must be a positive integer"
            )
        context = self._session_context(request)
        return _QueryCall(
            algorithm=algorithm,
            query=query,
            context=context,
            knobs=knobs,
            query_name=query_name,
            k=k,
            deadline_ms=deadline_ms,
        )

    def _session_context(self, request: Mapping[str, Any]) -> ExecutionContext:
        """The shared context, or a per-request view carrying a fault plan.

        The view shares the warm statistics cache and stream state but wraps
        the shared backend pool in a :class:`FaultInjectingBackend`, so the
        injected worker deaths hit exactly this query's tasks.
        """
        fault = request.get("fault")
        if fault is None:
            return self.context
        if not isinstance(fault, Mapping):
            raise ProtocolError(E_BAD_REQUEST, "field 'fault' must be an object")
        try:
            plan = FaultPlan.from_json(fault.get("plan", {}))
        except ValueError as error:
            raise ProtocolError(E_BAD_REQUEST, str(error)) from error
        attempts = fault.get("max_task_attempts", self.context.cluster.max_task_attempts)
        if not isinstance(attempts, int) or isinstance(attempts, bool) or attempts < 1:
            raise ProtocolError(
                E_BAD_REQUEST, "field 'fault.max_task_attempts' must be a positive integer"
            )
        cluster = replace(
            self.context.cluster, fault_plan=plan, max_task_attempts=attempts
        )
        backend = FaultInjectingBackend(self.context.get_backend(), plan)
        return self.context.session_view(cluster=cluster, backend=backend)

    @staticmethod
    def _execute_call(call: _QueryCall, token: CancelToken) -> tuple[RunReport, float, float]:
        """Plan and execute on an executor thread, under the query's cancel scope."""
        with cancel_scope(token):
            # A query that spent its whole deadline in the admission queue
            # stops here, before any engine work.
            check_cancelled()
            started = time.monotonic()
            plan = call.algorithm.plan(call.query, call.context, **call.knobs)
            plan_seconds = time.monotonic() - started
            check_cancelled()
            started = time.monotonic()
            report = call.algorithm.execute(plan)
            execute_seconds = time.monotonic() - started
        return report, plan_seconds, execute_seconds


class BackgroundServer:
    """Run a :class:`QueryServer` on a daemon thread with its own event loop.

    The helper tests, benchmarks and notebooks use::

        with BackgroundServer(QueryServer()) as address:
            client = QueryClient(*address)

    ``start`` returns once the server is bound; ``stop`` shuts the loop down
    and joins the thread.
    """

    def __init__(self, server: QueryServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and wait until the server is accepting."""
        if self._thread is not None:
            raise RuntimeError("background server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                self.address = loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 - reported to start()
                self._startup_error = error
                return
            finally:
                self._ready.set()
            loop.run_until_complete(self.server.shutdown_requested.wait())
            loop.run_until_complete(self.server.stop())
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def run_coroutine(self, coro: Any) -> Any:
        """Run a coroutine on the server's loop and block for its result.

        Lets tests and tools drive loop-bound APIs (e.g.
        :meth:`ServerSupervisor.rolling_restart`) from the calling thread.
        """
        if self._loop is None or not self._loop.is_running():
            raise RuntimeError("background server loop is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def stop(self) -> None:
        """Request shutdown and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.shutdown_requested.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
