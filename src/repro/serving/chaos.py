"""Deterministic wire-level chaos: a TCP proxy that breaks responses on schedule.

:class:`ChaosProxy` sits between a client and a query server (or supervisor
frontend) and injures *response* frames — the direction where a worker crash
actually hurts a client:

* **drop** — forward a prefix of the frame, then abort the connection
  (RST): the client sees a reset mid-response;
* **truncate** — forward the frame without its trailing newline, then
  close cleanly: the client sees EOF on a partial line, the exact case
  :meth:`QueryClient.request` must refuse to decode;
* **delay** — sleep before forwarding, stressing client timeouts.

Whether a frame is injured is not random: it is a keyed blake2b draw over
``(seed, connection_index, frame_index, action)`` — the same determinism
pattern as :class:`repro.mapreduce.FaultPlan` — so a chaos run replays
identically regardless of timing or interleaving.  Request frames pass
through untouched (client→server chaos would make non-idempotent verbs
ambiguous in ways a *test* cannot assert around; the retry machinery is
exercised by the response-side injuries plus real worker SIGKILLs).

The proxy duck-types the server lifecycle (async ``start``/``stop``,
``shutdown_requested``, ``address``) so
:class:`~repro.serving.server.BackgroundServer` can host it on a thread.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any

from .protocol import MAX_LINE_BYTES

__all__ = ["ChaosPlan", "ChaosProxy"]


@dataclass(frozen=True)
class ChaosPlan:
    """What fraction of response frames to injure, and how.

    Rates are independent probabilities evaluated in priority order
    drop → truncate → delay (one action per frame at most).  The first
    ``skip_frames`` responses of every connection are spared, so a client can
    always get through its handshake (``ping``) before the weather turns.
    """

    seed: int = 0
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.05
    skip_frames: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "truncate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.skip_frames < 0:
            raise ValueError("skip_frames must be non-negative")

    def _draw(self, connection: int, frame: int, action: str) -> float:
        """Uniform [0, 1) keyed by (seed, connection, frame, action)."""
        key = f"{self.seed}:{connection}:{frame}:{action}".encode()
        digest = blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    def action_for(self, connection: int, frame: int) -> str | None:
        """The injury for this response frame: 'drop', 'truncate', 'delay' or None."""
        if frame < self.skip_frames:
            return None
        if self._draw(connection, frame, "drop") < self.drop_rate:
            return "drop"
        if self._draw(connection, frame, "truncate") < self.truncate_rate:
            return "truncate"
        if self._draw(connection, frame, "delay") < self.delay_rate:
            return "delay"
        return None


class ChaosProxy:
    """A deterministic fault-injecting TCP proxy for the NDJSON protocol.

    Point it at a running server (or supervisor frontend) and point clients at
    :attr:`address`.  ``stats`` counts what it did (connections, frames, and
    per-action injuries) for assertions and the chaos benchmark.
    """

    def __init__(
        self,
        backend_host: str,
        backend_port: int,
        plan: ChaosPlan,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backend_host = backend_host
        self.backend_port = backend_port
        self.plan = plan
        self.host = host
        self.port = port
        self.shutdown_requested = asyncio.Event()
        self.stats: dict[str, int] = {
            "connections": 0,
            "frames": 0,
            "drops": 0,
            "truncates": 0,
            "delays": 0,
        }
        self._server: asyncio.base_events.Server | None = None
        self._connection_ids = itertools.count()
        self._active: set[asyncio.Task] = set()

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The proxy's bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("chaos proxy is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5)
            except asyncio.TimeoutError:
                pass
            self._server = None
        for task in list(self._active):
            task.cancel()
        if self._active:
            await asyncio.gather(*self._active, return_exceptions=True)
        self.shutdown_requested.set()

    # ------------------------------------------------------------ connections
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
        connection = next(self._connection_ids)
        self.stats["connections"] += 1
        try:
            try:
                backend_reader, backend_writer = await asyncio.open_connection(
                    self.backend_host, self.backend_port, limit=MAX_LINE_BYTES
                )
            except OSError:
                writer.close()
                return
            try:
                await asyncio.gather(
                    self._pump_requests(reader, backend_writer),
                    self._injure_responses(connection, backend_reader, writer),
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                pass  # stop() cancels lingering connections; exit quietly
            finally:
                for w in (backend_writer, writer):
                    try:
                        w.close()
                        await w.wait_closed()
                    except (OSError, ConnectionResetError, RuntimeError):
                        pass
        finally:
            if task is not None:
                self._active.discard(task)

    @staticmethod
    async def _pump_requests(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Client → server: transparent byte pump."""
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass

    async def _injure_responses(
        self,
        connection: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Server → client: frame-aware forwarding with scheduled injuries."""
        frame = 0
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    break
                if not line:
                    break
                action = self.plan.action_for(connection, frame)
                self.stats["frames"] += 1
                frame += 1
                if action == "drop":
                    self.stats["drops"] += 1
                    # A prefix of the frame, then RST: the mid-response reset
                    # of a worker dying with the socket open.
                    writer.write(line[: max(1, len(line) // 2)])
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                    writer.transport.abort()
                    return
                if action == "truncate":
                    self.stats["truncates"] += 1
                    # The frame minus its terminator, then clean EOF: the
                    # partial line a client must refuse to decode.
                    writer.write(line.rstrip(b"\n"))
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
                    return
                if action == "delay":
                    self.stats["delays"] += 1
                    await asyncio.sleep(self.plan.delay_seconds)
                writer.write(line)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
