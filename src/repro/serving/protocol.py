"""Wire protocol of the query server: newline-delimited JSON, versioned verbs.

This module is the single codec shared by server and client; the normative,
client-facing description of every verb, field and error code lives in
``docs/PROTOCOL.md`` (a test diffs that document against
:attr:`~repro.serving.server.QueryServer.VERBS` so the two cannot drift).

Framing
-------
One request or response per line: a UTF-8 JSON object terminated by ``\\n``,
at most :data:`MAX_LINE_BYTES` long.  Requests carry ``{"id", "verb", ...}``;
responses echo the ``id`` with ``"ok": true`` plus the verb's payload, or
``"ok": false`` plus an ``error`` object ``{"code", "message", "details"}``.

Versioning rule
---------------
:data:`PROTOCOL_VERSION` is a single integer, reported by the ``ping`` verb.
It is bumped on any breaking change (a verb removed or renamed, a required
field added, a field's type or meaning changed); purely additive changes (new
verbs, new optional fields, new error ``details`` keys) do not bump it.
Clients should ``ping`` after connecting and refuse to proceed on a version
they do not know.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

from ..mapreduce import Counters
from ..plan.algorithm import RunReport
from ..query.graph import ResultTuple
from ..temporal.interval import Interval

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ERROR_CODES",
    "E_BAD_REQUEST",
    "E_UNKNOWN_VERB",
    "E_NOT_FOUND",
    "E_EXISTS",
    "E_BUSY",
    "E_DRAINING",
    "E_UNAVAILABLE",
    "E_DEADLINE",
    "E_FAULT",
    "E_INTERNAL",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "ok_response",
    "error_response",
    "encode_intervals",
    "decode_intervals",
    "encode_results",
    "decode_results",
    "deterministic_metrics",
]

PROTOCOL_VERSION = 1
"""Bumped on breaking changes only; see the versioning rule in the module docstring."""

MAX_LINE_BYTES = 8 * 1024 * 1024
"""Upper bound on one framed line (requests and responses), ingest payloads included."""

# Error codes (the complete set; docs/PROTOCOL.md documents when each is used).
E_BAD_REQUEST = "BAD_REQUEST"
E_UNKNOWN_VERB = "UNKNOWN_VERB"
E_NOT_FOUND = "NOT_FOUND"
E_EXISTS = "EXISTS"
E_BUSY = "BUSY"
E_DRAINING = "DRAINING"
E_UNAVAILABLE = "UNAVAILABLE"
E_DEADLINE = "DEADLINE"
E_FAULT = "FAULT"
E_INTERNAL = "INTERNAL"

ERROR_CODES = (
    E_BAD_REQUEST,
    E_UNKNOWN_VERB,
    E_NOT_FOUND,
    E_EXISTS,
    E_BUSY,
    E_DRAINING,
    E_UNAVAILABLE,
    E_DEADLINE,
    E_FAULT,
    E_INTERNAL,
)


class ProtocolError(Exception):
    """A structured protocol-level failure, serialised as the ``error`` object."""

    def __init__(
        self, code: str, message: str, details: Mapping[str, Any] | None = None
    ) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}; expected one of {ERROR_CODES}")
        self.code = code
        self.message = message
        self.details = dict(details or {})
        super().__init__(f"{code}: {message}")

    def to_payload(self) -> dict[str, Any]:
        """The wire form of this error."""
        payload: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            payload["details"] = self.details
        return payload


# --------------------------------------------------------------------- framing
def encode_message(message: Mapping[str, Any]) -> bytes:
    """One framed line: compact JSON + newline, UTF-8."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one framed line into a JSON object (BAD_REQUEST on anything else)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(E_BAD_REQUEST, f"malformed JSON line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            E_BAD_REQUEST, f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: Any, payload: Mapping[str, Any]) -> dict[str, Any]:
    """A success response echoing the request id."""
    return {"id": request_id, "ok": True, **payload}


def error_response(request_id: Any, error: ProtocolError) -> dict[str, Any]:
    """A failure response echoing the request id."""
    return {"id": request_id, "ok": False, "error": error.to_payload()}


# ---------------------------------------------------------------------- fields
def encode_intervals(intervals: Iterable[Interval]) -> list[list[float]]:
    """Intervals as ``[uid, start, end]`` triples (payloads are not carried)."""
    return [[interval.uid, interval.start, interval.end] for interval in intervals]


def decode_intervals(payload: Any) -> list[Interval]:
    """Parse the ``[[uid, start, end], ...]`` wire form (BAD_REQUEST on mismatch)."""
    if not isinstance(payload, list):
        raise ProtocolError(E_BAD_REQUEST, "'intervals' must be a list of [uid, start, end]")
    intervals = []
    for index, item in enumerate(payload):
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 3
            or not all(isinstance(x, (int, float)) and not isinstance(x, bool) for x in item)
        ):
            raise ProtocolError(
                E_BAD_REQUEST,
                f"intervals[{index}] must be a numeric [uid, start, end] triple",
            )
        try:
            intervals.append(Interval(int(item[0]), float(item[1]), float(item[2])))
        except ValueError as error:
            raise ProtocolError(E_BAD_REQUEST, f"intervals[{index}]: {error}") from error
    return intervals


def encode_results(results: Sequence[ResultTuple]) -> list[dict[str, Any]]:
    """Result tuples as ``{"uids": [...], "score": float}`` objects.

    JSON round-trips Python floats exactly (``repr`` precision), so a served
    score compares ``==`` to the library's — the byte-identical contract.
    """
    return [{"uids": list(result.uids), "score": result.score} for result in results]


def decode_results(payload: Sequence[Mapping[str, Any]]) -> list[ResultTuple]:
    """The inverse of :func:`encode_results` (for clients and parity tests)."""
    return [
        ResultTuple(uids=tuple(int(uid) for uid in item["uids"]), score=float(item["score"]))
        for item in payload
    ]


def deterministic_metrics(report: RunReport) -> dict[str, Any]:
    """The deterministic slice of a :class:`RunReport` (no wall-clock keys).

    This is what the ``query`` verb returns under ``"metrics"`` and what the
    parity tests compare ``==`` between a served query and a direct library
    run: result count, shuffle and spill totals, and the merged engine
    counters (pruning, join work, ...).  Timings are reported separately under
    ``"timings"`` and excluded here on purpose.
    """
    counters = Counters()
    for metrics in report.metrics:
        counters.merge(metrics.counters)
    return {
        "results": len(report.results),
        "shuffle_records": report.shuffle_records,
        "shuffle_bytes": report.shuffle_bytes,
        "bytes_spilled": report.bytes_spilled,
        "spill_runs": report.spill_runs,
        "shm_segments": report.shm_segments,
        "counters": counters.as_dict(),
    }
