"""RTJ query graphs.

A Ranked Temporal Join query is a weakly connected, oriented, simple graph whose
vertices are bound to interval collections and whose edges carry scored temporal
predicates (Section 2 of the paper).  The query also fixes the monotone aggregation
function ``S`` and the number ``k`` of results to return.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from ..temporal.aggregation import Aggregation, AverageScore
from ..temporal.attributes import AttributeConstraint
from ..temporal.interval import Interval, IntervalCollection
from ..temporal.predicates import ScoredPredicate

__all__ = ["QueryEdge", "RTJQuery", "ResultTuple"]


@dataclass(frozen=True)
class QueryEdge:
    """A directed query edge ``(source, target)`` labelled with a scored predicate.

    The predicate is stored over its canonical variables ``x``/``y``; ``x`` binds to
    the source vertex and ``y`` to the target vertex.  ``attributes`` holds optional
    Boolean constraints over the two intervals' payloads (hybrid queries, the
    paper's future-work extension): they act as filters and do not contribute to
    the score.
    """

    source: str
    target: str
    predicate: ScoredPredicate
    attributes: tuple[AttributeConstraint, ...] = ()

    def score(self, assignment: Mapping[str, Interval]) -> float:
        """Scored evaluation on a variable assignment covering source and target."""
        return self.predicate.score(assignment[self.source], assignment[self.target])

    def holds(self, assignment: Mapping[str, Interval]) -> bool:
        """Boolean evaluation (temporal predicate and attribute constraints)."""
        return self.predicate.holds(
            assignment[self.source], assignment[self.target]
        ) and self.attributes_hold(assignment)

    def attributes_hold(self, assignment: Mapping[str, Interval]) -> bool:
        """True when every attribute constraint of the edge is satisfied."""
        if not self.attributes:
            return True
        source = assignment[self.source]
        target = assignment[self.target]
        return all(constraint.matches(source, target) for constraint in self.attributes)

    def key(self) -> tuple[str, str]:
        """The ``(source, target)`` pair identifying this edge."""
        return (self.source, self.target)


@dataclass(frozen=True, slots=True)
class ResultTuple:
    """One result of an RTJ query: interval uids per vertex plus the aggregate score."""

    uids: tuple[int, ...]
    score: float

    def sort_key(self) -> tuple[float, tuple[int, ...]]:
        """Deterministic ordering: descending score, then ascending uids."""
        return (-self.score, self.uids)


@dataclass
class RTJQuery:
    """An n-ary Ranked Temporal Join query.

    Parameters
    ----------
    vertices:
        Vertex names in a fixed order; result tuples list interval ids in this
        order.
    collections:
        Mapping from vertex name to its :class:`IntervalCollection`.
    edges:
        Query edges with their scored predicates.
    k:
        Number of results to return.
    aggregation:
        Monotone aggregation of the per-edge scores; defaults to the normalised
        sum used in the paper's experiments.
    """

    vertices: tuple[str, ...]
    collections: dict[str, IntervalCollection]
    edges: tuple[QueryEdge, ...]
    k: int = 100
    aggregation: Aggregation | None = None
    name: str = ""
    _edge_index: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.aggregation is None:
            self.aggregation = AverageScore(num_edges=max(1, len(self.edges)))
        self._edge_index = {edge.key(): i for i, edge in enumerate(self.edges)}
        self.validate()

    # -------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check the structural constraints of Section 2.

        The query graph must be simple (no self loops, no anti-parallel duplicate
        edges), oriented, weakly connected, and every vertex must be bound to a
        collection.  ``k`` must be positive.
        """
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not self.vertices:
            raise ValueError("query has no vertices")
        if len(set(self.vertices)) != len(self.vertices):
            raise ValueError("duplicate vertex names")
        missing = [v for v in self.vertices if v not in self.collections]
        if missing:
            raise ValueError(f"vertices without a collection: {missing}")
        if not self.edges and len(self.vertices) > 1:
            raise ValueError("a multi-vertex query needs at least one edge")
        seen: set[tuple[str, str]] = set()
        for edge in self.edges:
            if edge.source == edge.target:
                raise ValueError(f"self loop on vertex {edge.source!r}")
            if edge.source not in self.collections or edge.target not in self.collections:
                raise ValueError(f"edge {edge.key()} references an unknown vertex")
            if edge.key() in seen:
                raise ValueError(f"duplicate edge {edge.key()}")
            if (edge.target, edge.source) in seen:
                raise ValueError(
                    f"anti-parallel edges between {edge.source!r} and {edge.target!r}"
                )
            seen.add(edge.key())
        if not self._is_weakly_connected():
            raise ValueError("query graph must be weakly connected")

    def _is_weakly_connected(self) -> bool:
        if len(self.vertices) <= 1:
            return True
        adjacency: dict[str, set[str]] = {v: set() for v in self.vertices}
        for edge in self.edges:
            adjacency[edge.source].add(edge.target)
            adjacency[edge.target].add(edge.source)
        stack = [self.vertices[0]]
        seen = {self.vertices[0]}
        while stack:
            vertex = stack.pop()
            for neighbour in adjacency[vertex]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self.vertices)

    # ----------------------------------------------------------------- queries
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def collection_of(self, vertex: str) -> IntervalCollection:
        """Collection bound to ``vertex``."""
        return self.collections[vertex]

    def edge_position(self, edge: QueryEdge) -> int:
        """Index of ``edge`` in edge order (used by weighted aggregations)."""
        return self._edge_index[edge.key()]

    def edges_between(self, bound: Iterable[str], new_vertex: str) -> list[QueryEdge]:
        """Edges connecting ``new_vertex`` to any vertex already in ``bound``."""
        bound_set = set(bound)
        result = []
        for edge in self.edges:
            if edge.source == new_vertex and edge.target in bound_set:
                result.append(edge)
            elif edge.target == new_vertex and edge.source in bound_set:
                result.append(edge)
        return result

    # ------------------------------------------------------------------ scoring
    def score_assignment(self, assignment: Mapping[str, Interval]) -> float:
        """Aggregate score of a full assignment of intervals to vertices."""
        scores = [edge.score(assignment) for edge in self.edges]
        return self.aggregation.combine(scores)

    def score_tuple(self, uids: Sequence[int]) -> float:
        """Aggregate score of a result tuple given by interval ids (vertex order)."""
        assignment = {
            vertex: self.collections[vertex].get(uid)
            for vertex, uid in zip(self.vertices, uids)
        }
        return self.score_assignment(assignment)

    def boolean_holds(self, assignment: Mapping[str, Interval]) -> bool:
        """True when every edge predicate holds in the Boolean interpretation."""
        return all(edge.holds(assignment) for edge in self.edges)

    def admits(self, assignment: Mapping[str, Interval]) -> bool:
        """True when the assignment satisfies every attribute constraint (hybrid queries)."""
        return all(edge.attributes_hold(assignment) for edge in self.edges)

    @property
    def has_attribute_constraints(self) -> bool:
        """True when any edge carries attribute constraints."""
        return any(edge.attributes for edge in self.edges)

    # ------------------------------------------------------------------ helpers
    def with_k(self, k: int) -> "RTJQuery":
        """Copy of the query with a different ``k``."""
        return replace(self, k=k)

    def with_collections(self, collections: Mapping[str, IntervalCollection]) -> "RTJQuery":
        """Copy of the query bound to different collections (same vertex names)."""
        return replace(self, collections=dict(collections))

    def join_order(self) -> list[str]:
        """A join order: BFS over the undirected query graph from the first vertex.

        Every vertex after the first is connected to at least one previously
        visited vertex, so a left-deep evaluation can always use an index lookup on
        a connecting edge.
        """
        adjacency: dict[str, set[str]] = {v: set() for v in self.vertices}
        for edge in self.edges:
            adjacency[edge.source].add(edge.target)
            adjacency[edge.target].add(edge.source)
        order = [self.vertices[0]]
        seen = {self.vertices[0]}
        frontier = [self.vertices[0]]
        while frontier:
            next_frontier = []
            for vertex in frontier:
                for neighbour in sorted(adjacency[vertex]):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(f"{e.source}-{e.predicate.name}->{e.target}" for e in self.edges)
        return f"RTJQuery({self.name or 'unnamed'}: {edges}, k={self.k})"
