"""RTJ query model: graphs, edges, result tuples and a fluent builder."""

from .builder import QueryBuilder
from .graph import QueryEdge, ResultTuple, RTJQuery

__all__ = ["QueryBuilder", "QueryEdge", "ResultTuple", "RTJQuery"]
