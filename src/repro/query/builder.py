"""Fluent builder for RTJ queries.

The builder is the public entry point for composing queries: bind collections to
vertex names, attach scored predicates to edges (by name or as
:class:`~repro.temporal.predicates.ScoredPredicate` objects), pick ``k`` and the
aggregation function, then :meth:`QueryBuilder.build`.
"""

from __future__ import annotations

from typing import Mapping

from typing import Sequence

from ..temporal.aggregation import Aggregation
from ..temporal.attributes import AttributeConstraint
from ..temporal.comparators import PredicateParams
from ..temporal.interval import IntervalCollection
from ..temporal.predicates import ScoredPredicate, predicate_by_name
from .graph import QueryEdge, RTJQuery

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Incrementally assemble an :class:`~repro.query.graph.RTJQuery`.

    Example
    -------
    >>> from repro.temporal import PredicateParams
    >>> builder = (QueryBuilder(name="Qs,m", params=PredicateParams.of(4, 16, 0, 10))
    ...            .add_collection("x1", c1)
    ...            .add_collection("x2", c2)
    ...            .add_collection("x3", c3)
    ...            .add_predicate("x1", "x2", "starts")
    ...            .add_predicate("x2", "x3", "meets")
    ...            .top(100))
    >>> query = builder.build()
    """

    def __init__(
        self,
        name: str = "",
        params: PredicateParams | None = None,
    ) -> None:
        self._name = name
        self._params = params or PredicateParams.of(4.0, 16.0, 0.0, 10.0)
        self._vertices: list[str] = []
        self._collections: dict[str, IntervalCollection] = {}
        self._edges: list[QueryEdge] = []
        self._k = 100
        self._aggregation: Aggregation | None = None

    # ------------------------------------------------------------------ inputs
    def add_collection(self, vertex: str, collection: IntervalCollection) -> "QueryBuilder":
        """Bind ``collection`` to a new vertex named ``vertex``."""
        if vertex in self._collections:
            raise ValueError(f"vertex {vertex!r} already defined")
        self._vertices.append(vertex)
        self._collections[vertex] = collection
        return self

    def add_collections(
        self, collections: Mapping[str, IntervalCollection]
    ) -> "QueryBuilder":
        """Bind several collections at once (in mapping order)."""
        for vertex, collection in collections.items():
            self.add_collection(vertex, collection)
        return self

    # ------------------------------------------------------------------- edges
    def add_predicate(
        self,
        source: str,
        target: str,
        predicate: str | ScoredPredicate,
        params: PredicateParams | None = None,
        attributes: Sequence[AttributeConstraint] | None = None,
    ) -> "QueryBuilder":
        """Add an edge ``source -> target`` labelled with a scored predicate.

        ``predicate`` may be a predicate name (resolved through
        :func:`~repro.temporal.predicates.predicate_by_name`, with the source
        collection's average length supplied for the extended predicates) or an
        already-built :class:`ScoredPredicate`.  ``attributes`` attaches payload
        constraints (hybrid queries), e.g. "different countries".
        """
        if source not in self._collections or target not in self._collections:
            raise ValueError("add collections before predicates")
        if isinstance(predicate, str):
            avg = self._collections[source].average_length() if len(self._collections[source]) else None
            predicate_obj = predicate_by_name(predicate, params or self._params, avg_length=avg)
        else:
            predicate_obj = predicate if params is None else predicate.with_params(params)
        self._edges.append(
            QueryEdge(source, target, predicate_obj, tuple(attributes or ()))
        )
        return self

    # ----------------------------------------------------------------- options
    def top(self, k: int) -> "QueryBuilder":
        """Set the number of results to return."""
        self._k = k
        return self

    def aggregate_with(self, aggregation: Aggregation) -> "QueryBuilder":
        """Use a custom monotone aggregation function instead of the average."""
        self._aggregation = aggregation
        return self

    def scoring(self, params: PredicateParams) -> "QueryBuilder":
        """Set the default scoring parameters for predicates added afterwards."""
        self._params = params
        return self

    # ------------------------------------------------------------------- build
    def build(self) -> RTJQuery:
        """Validate and return the query."""
        return RTJQuery(
            vertices=tuple(self._vertices),
            collections=dict(self._collections),
            edges=tuple(self._edges),
            k=self._k,
            aggregation=self._aggregation,
            name=self._name,
        )
