"""Cooperative query cancellation, checked at task boundaries.

The serving layer needs to abandon a running query when its deadline expires
without tearing down the worker pool that query shares with every other
session.  Killing threads is impossible and killing pool processes would
poison sibling queries, so cancellation is *cooperative*: a
:class:`CancelToken` is set by whoever owns the deadline (the server's event
loop) and observed by the engine **between task waves** — the natural
preemption points of the Map-Reduce dataflow, where no partial task output
has been merged yet.

The token travels in a :mod:`contextvars` context variable rather than
through every plan/algorithm/engine signature: the caller wraps the blocking
execution in :func:`cancel_scope` (on the thread that runs it) and
:meth:`MapReduceEngine.run` calls :func:`check_cancelled` at each task
boundary.  Code that never uses scopes pays one ``ContextVar.get`` per wave
and is otherwise unaffected.

Granularity: a cancelled query stops before the *next* wave of map or reduce
tasks launches; an individual task that is already running finishes (and its
output is discarded along with the whole job).  That bounds cancellation
latency by the longest single task, not the longest job.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Iterator

__all__ = [
    "CancelToken",
    "QueryCancelledError",
    "active_token",
    "cancel_scope",
    "check_cancelled",
]


class QueryCancelledError(RuntimeError):
    """The active :class:`CancelToken` was set; execution stopped at a task boundary."""

    def __init__(self, reason: str = "cancelled") -> None:
        self.reason = reason
        super().__init__(reason)


class CancelToken:
    """A thread-safe, one-shot cancellation flag.

    ``cancel`` may be called from any thread (the serving event loop cancels
    tokens owned by executor threads); the first call wins and records its
    ``reason``, later calls are ignored.  ``check`` raises
    :class:`QueryCancelledError` once the token is set.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        """Set the token (idempotent; the first caller's ``reason`` is kept)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether the token has been set."""
        return self._event.is_set()

    @property
    def reason(self) -> str:
        """The reason recorded by the first ``cancel`` call."""
        return self._reason

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` if the token is set."""
        if self._event.is_set():
            raise QueryCancelledError(self._reason)


_ACTIVE: contextvars.ContextVar["CancelToken | None"] = contextvars.ContextVar(
    "repro-cancel-token", default=None
)


def active_token() -> "CancelToken | None":
    """The token installed by the innermost :func:`cancel_scope`, if any."""
    return _ACTIVE.get()


def check_cancelled() -> None:
    """Raise :class:`QueryCancelledError` if the active token (if any) is set.

    This is the hook the engine calls at task boundaries; with no active
    scope it is a single ``ContextVar`` read.
    """
    token = _ACTIVE.get()
    if token is not None:
        token.check()


@contextlib.contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Install ``token`` as the active cancellation token for this context.

    Must be entered on the thread that runs the cancellable work (context
    variables are per-thread unless a context is explicitly propagated);
    scopes nest, the innermost token winning.
    """
    reset = _ACTIVE.set(token)
    try:
        yield token
    finally:
        _ACTIVE.reset(reset)
