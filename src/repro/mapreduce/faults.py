"""Deterministic fault injection for the Map-Reduce substrate.

Real clusters lose tasks: workers crash, JVMs die mid-write, a node straggles
ten times past the median.  Hadoop answers with task retries and speculative
execution; this module provides the *test half* of that story — a way to make
chaos reproducible so the retry/speculation machinery can be proven correct:

* a :class:`FaultPlan` is a declarative, serialisable schedule of faults keyed
  by (job name, phase, task index, attempt number) — explicit :class:`FaultRule`
  entries, plus an optional *seeded* random component whose decisions depend
  only on the key (never on execution order or timing), so the same plan
  injects the same faults on every backend and every run;
* a :class:`FaultInjectingBackend` wraps any
  :class:`~repro.mapreduce.backends.ExecutionBackend` and applies the plan to
  the tasks flowing through it: a matching task attempt fails before execution
  (``fail``), fails after execution with its outputs discarded
  (``fail_after`` — exercising exactly-once output semantics), or is delayed
  (``delay`` — the straggler generator for speculation tests).

The engine retries failed attempts up to
:attr:`~repro.mapreduce.ClusterConfig.max_task_attempts`; as long as every
injected failure count stays below that budget, a chaotic run is
observationally identical to a fault-free one — results, counters, shuffle
volumes, everything but wall-clock time.  That invariant is enforced by the
chaos parity matrix in ``tests/test_chaos_parity.py``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from hashlib import blake2b
from pathlib import Path
from typing import Any, Mapping, Sequence

from .backends.base import ExecutionBackend, Task, TaskFailure, TaskResult

__all__ = ["FAULT_ACTIONS", "InjectedFault", "FaultRule", "FaultPlan", "FaultInjectingBackend"]

FAULT_ACTIONS = ("fail", "fail_after", "delay")
"""Valid ``FaultRule.action`` values."""

_PHASES = ("map", "reduce", "*")


class InjectedFault(RuntimeError):
    """The synthetic failure raised/recorded by fault injection."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: where it strikes and what it does.

    ``job`` is an ``fnmatch`` pattern over job names (``"tkij-join*"``),
    ``phase`` is ``"map"``, ``"reduce"`` or ``"*"``, ``task`` pins one task
    index (``None`` matches all) and ``attempts`` lists the attempt numbers the
    rule fires on — injecting on attempts ``(0, 1)`` under a budget of 4 means
    two failures, then a clean third attempt.

    ``delay`` sleeps ``delay_seconds`` before running the task; with
    ``delay_once`` (the default) only the *first launch* of a given attempt
    sleeps, so a speculative duplicate of the straggler runs at full speed and
    can win the race — which is exactly the scenario speculation exists for.
    (Launch-scoped state lives in the wrapper object, so it is shared on the
    thread backend; a process-pool duplicate is pickled afresh and re-fires.)
    """

    action: str
    job: str = "*"
    phase: str = "*"
    task: int | None = None
    attempts: tuple[int, ...] = (0,)
    delay_seconds: float = 0.0
    delay_once: bool = True

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.phase not in _PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; expected one of {_PHASES}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.action == "delay" and self.delay_seconds == 0:
            raise ValueError("a delay rule needs delay_seconds > 0")
        object.__setattr__(self, "attempts", tuple(self.attempts))
        if any(attempt < 0 for attempt in self.attempts):
            raise ValueError("attempt numbers are non-negative")

    def matches(self, job: str, phase: str, task: int, attempt: int) -> bool:
        """Whether this rule fires on one (job, phase, task, attempt) key."""
        return (
            fnmatchcase(job, self.job)
            and self.phase in ("*", phase)
            and (self.task is None or self.task == task)
            and attempt in self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, serialisable schedule of task faults.

    Explicit ``rules`` are checked first (first match wins).  The seeded random
    component then fails a pseudo-random ``failure_rate`` fraction of tasks on
    their first ``max_failures_per_task`` attempts: the decision is a keyed
    hash of ``(seed, job, phase, task)``, so it is identical across runs,
    backends and arrival orders — seeded chaos, not flaky chaos.  Keep
    ``max_failures_per_task`` below the cluster's attempt budget and every
    injected failure is retried away.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int | None = None
    failure_rate: float = 0.0
    max_failures_per_task: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must lie in [0, 1]")
        if self.failure_rate > 0 and self.seed is None:
            raise ValueError("a random failure_rate needs a seed to stay deterministic")
        if self.max_failures_per_task <= 0:
            raise ValueError("max_failures_per_task must be positive")

    # ------------------------------------------------------------------ lookup
    def rule_for(self, job: str, phase: str, task: int, attempt: int) -> FaultRule | None:
        """The fault to inject on one task attempt, or ``None`` to run it clean."""
        for rule in self.rules:
            if rule.matches(job, phase, task, attempt):
                return rule
        if (
            self.seed is not None
            and self.failure_rate > 0
            and attempt < self.max_failures_per_task
            and self._draw(job, phase, task) < self.failure_rate
        ):
            return _SEEDED_FAILURE
        return None

    def _draw(self, job: str, phase: str, task: int) -> float:
        """Uniform [0, 1) draw keyed by (seed, job, phase, task) — order-free."""
        key = f"{self.seed}:{job}:{phase}:{task}".encode()
        digest = blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    # --------------------------------------------------------------- serialise
    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict (the ``--fault-plan`` file format)."""
        payload = asdict(self)
        payload["rules"] = [asdict(rule) for rule in self.rules]
        for rule in payload["rules"]:
            rule["attempts"] = list(rule["attempts"])
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Parse the dict form, with actionable errors on malformed input."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"fault plan must be a JSON object, got {type(payload).__name__}")
        known = {"rules", "seed", "failure_rate", "max_failures_per_task"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys {sorted(unknown)}; expected {sorted(known)}")
        rules_payload = payload.get("rules", [])
        if not isinstance(rules_payload, Sequence) or isinstance(rules_payload, (str, bytes)):
            raise ValueError("fault-plan 'rules' must be a list of rule objects")
        rules = []
        for index, rule in enumerate(rules_payload):
            if not isinstance(rule, Mapping):
                raise ValueError(f"fault-plan rule #{index} must be an object")
            try:
                rules.append(FaultRule(**{k: tuple(v) if k == "attempts" else v for k, v in rule.items()}))
            except TypeError as error:
                raise ValueError(f"fault-plan rule #{index}: {error}") from error
        return cls(
            rules=tuple(rules),
            seed=payload.get("seed"),
            failure_rate=payload.get("failure_rate", 0.0),
            max_failures_per_task=payload.get("max_failures_per_task", 1),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--fault-plan``)."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise ValueError(f"cannot read fault plan {str(path)!r}: {error}") from error
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan {str(path)!r} is not valid JSON: {error}") from error
        return cls.from_json(payload)

    def dump(self, path: str | Path) -> Path:
        """Write the plan as JSON and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8")
        return path


_SEEDED_FAILURE = FaultRule(action="fail", job="*", phase="*", task=None, attempts=())
"""Sentinel rule applied by the seeded random component (attempt gating is done
by ``rule_for``, so the sentinel's own ``attempts`` tuple is never consulted)."""


class _FaultTask:
    """One task wrapped with the fault action chosen for its attempt key.

    Fire-once delay state is launch-scoped: shared across speculative
    duplicates on the thread backend (same object), reset by pickling on the
    process backend (fresh copy per worker).
    """

    def __init__(self, task: Task, rule: FaultRule):
        self.task = task
        self.rule = rule
        self._lock = threading.Lock()
        self._delay_fired = False

    def __getstate__(self) -> dict[str, Any]:
        return {"task": self.task, "rule": self.rule}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._delay_fired = False

    def _failure(self, message: str, elapsed: float, counters=None) -> TaskFailure:
        return TaskFailure(
            task_id=self.task.task_id,
            attempt=getattr(self.task, "attempt", 0),
            error_type=InjectedFault.__name__,
            message=message,
            elapsed_seconds=elapsed,
            phase=self.task.phase,
            counters=counters,
        )

    def __call__(self) -> "TaskResult | TaskFailure":
        rule = self.rule
        if rule.action == "fail":
            return self._failure("injected fault before task execution", 0.0)
        if rule.action == "delay":
            fire = True
            if rule.delay_once:
                with self._lock:
                    fire = not self._delay_fired
                    self._delay_fired = True
            if fire:
                time.sleep(rule.delay_seconds)
            return self.task()
        # fail_after: run to completion, then discard the outputs — the
        # worker "died" after the work but before committing it.
        started = time.perf_counter()
        result = self.task()
        elapsed = time.perf_counter() - started
        if isinstance(result, TaskFailure):
            return result  # the task already failed on its own; report that
        return self._failure(
            "injected fault after task execution (outputs discarded)",
            elapsed,
            counters=result.counters,
        )


class FaultInjectingBackend(ExecutionBackend):
    """Wraps any execution backend and applies a :class:`FaultPlan` to its tasks.

    Sits *between* the engine and the real backend, so injected faults flow
    through the genuine retry and speculation machinery: the engine sees
    ordinary :class:`TaskFailure` results, the inner backend executes (and may
    speculatively duplicate) the wrapped tasks.  Everything else — pickling
    contract, worker pools, speculation counters — delegates to the inner
    backend.  ``injected_faults`` counts the rule applications for tests.
    """

    name = "fault-injecting"

    def __init__(self, inner: ExecutionBackend, plan: FaultPlan) -> None:
        # ``inner`` must exist before the base initialiser runs: it assigns the
        # speculation counters, whose setters delegate to the inner backend.
        self.inner = inner
        self.plan = plan
        self.injected_faults = 0
        super().__init__(inner.max_workers)

    # ----------------------------------------------------------- delegation
    @property
    def requires_pickling(self) -> bool:  # type: ignore[override]
        return self.inner.requires_pickling

    @property
    def transfer(self) -> str | None:  # type: ignore[override]
        return self.inner.transfer

    @property
    def parallelism(self) -> int:
        return self.inner.parallelism

    @property
    def speculative_launches(self) -> int:  # type: ignore[override]
        return self.inner.speculative_launches

    @speculative_launches.setter
    def speculative_launches(self, value: int) -> None:
        self.inner.speculative_launches = value

    @property
    def speculative_wins(self) -> int:  # type: ignore[override]
        return self.inner.speculative_wins

    @speculative_wins.setter
    def speculative_wins(self, value: int) -> None:
        self.inner.speculative_wins = value

    # ------------------------------------------------------------ execution
    def run_tasks(self, tasks: Sequence[Task]) -> "list[TaskResult | TaskFailure]":
        wrapped: list[Task] = []
        for task in tasks:
            rule = self.plan.rule_for(
                task.job.name,
                task.phase,
                task.task_id,
                getattr(task, "attempt", 0),
            )
            if rule is None:
                wrapped.append(task)
            else:
                self.injected_faults += 1
                wrapped.append(_FaultTask(task, rule))  # type: ignore[arg-type]
        return self.inner.run_tasks(wrapped)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjectingBackend({self.inner!r}, plan={self.plan!r})"
