"""Out-of-core shuffle: sorted on-disk runs and spilled partitions.

When ``ClusterConfig.memory_budget_bytes`` is set, the engine's shuffle keeps
a running byte estimate of every partition and, whenever the resident total
crosses the budget, freezes the largest partition into one *sorted run* on
disk and clears it (DESIGN.md §10).  A partition may spill several times; the
reduce phase then streams each reducer over a k-way merge of its runs plus the
in-memory remainder, never materialising the full partition dict again.

Two run formats, chosen per spill by inspecting the values:

* a **columnar run** (every value is an
  :class:`~repro.columnar.IntervalColumns`) writes the three dense columns of
  every batch back to back with ``numpy.tofile`` — one flat file, three
  sections, no pickling of array data — and reads them back as ``np.memmap``
  slices, so replaying a run is zero-copy and page-cache friendly;
* a **framed pickle run** (anything else, including mixed values) writes one
  ``pickle.dump`` frame per key and streams them back one key at a time.

Both formats store keys in the engine's canonical
:func:`~repro.mapreduce.backends.partition_sort_key` order, which is what
makes the merge in :meth:`SpilledPartition.sorted_items` line up with the
in-memory reduce path: same key order, and within a key the values
concatenate run-by-run in spill chronology with the resident remainder last —
exactly the arrival order an unbounded shuffle would have produced.  That
invariant is why a budgeted run is byte-identical to an in-memory one.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from .backends.base import partition_sort_key

__all__ = [
    "ColumnarRun",
    "PickleRun",
    "SpilledPartition",
    "SpillManager",
    "SPILL_DIR_PREFIX",
]

SPILL_DIR_PREFIX = "tkij-spill-"
"""Prefix of every per-job spill directory (created under the system tempdir).
Leak tests glob for it, so keep it recognisable."""

_UIDS_DTYPE = np.dtype(np.int64)
_TIME_DTYPE = np.dtype(np.float64)

KeyItems = Iterator[tuple[Any, list[Any]]]


@dataclass(frozen=True)
class ColumnarRun:
    """One sorted run of columnar batches: a flat 3-section file plus its index.

    The file holds all uids, then all starts, then all ends (8-byte elements,
    so every section stays aligned); ``entries`` records, per key in sorted
    order, the row length and payload tuple of each of its batches.  Payload
    tuples are rare (hybrid queries only) and are arbitrary Python objects, so
    they live in the index, not the flat file.
    """

    path: str
    entries: tuple[tuple[Any, tuple[int, ...], tuple[tuple | None, ...]], ...]
    total_rows: int

    @property
    def num_values(self) -> int:
        return sum(len(lengths) for _, lengths, _ in self.entries)

    def items(self) -> KeyItems:
        """Stream ``(key, [batch, ...])`` in sorted key order, zero-copy.

        Each batch's columns are ``memmap`` slices over the run file: nothing
        is read until a kernel touches the rows, and nothing is ever copied
        into driver memory wholesale.
        """
        from ..columnar.columns import IntervalColumns

        uids = np.memmap(self.path, dtype=_UIDS_DTYPE, mode="r", shape=(self.total_rows,))
        starts = np.memmap(
            self.path,
            dtype=_TIME_DTYPE,
            mode="r",
            offset=self.total_rows * _UIDS_DTYPE.itemsize,
            shape=(self.total_rows,),
        )
        ends = np.memmap(
            self.path,
            dtype=_TIME_DTYPE,
            mode="r",
            offset=self.total_rows * (_UIDS_DTYPE.itemsize + _TIME_DTYPE.itemsize),
            shape=(self.total_rows,),
        )
        row = 0
        for key, lengths, payloads in self.entries:
            batches = []
            for length, payload in zip(lengths, payloads):
                batches.append(
                    IntervalColumns(
                        uids[row : row + length],
                        starts[row : row + length],
                        ends[row : row + length],
                        payload,
                    )
                )
                row += length
            yield key, batches


@dataclass(frozen=True)
class PickleRun:
    """One sorted run of arbitrary records: one pickle frame per key."""

    path: str
    num_keys: int
    num_values: int

    def items(self) -> KeyItems:
        """Stream ``(key, values)`` frames in the order they were written."""
        with open(self.path, "rb") as handle:
            for _ in range(self.num_keys):
                yield pickle.load(handle)


@dataclass(frozen=True)
class SpilledPartition:
    """One reduce partition that (partly) lives on disk.

    ``runs`` are in spill order; ``resident`` is whatever accumulated after
    the last spill.  The whole object is picklable — runs carry paths and
    indexes, and the engine's transfer strategy prepares ``resident`` like any
    in-memory partition — so spilled reduce tasks run on every backend.
    """

    runs: tuple[ColumnarRun | PickleRun, ...]
    resident: Mapping[Any, list[Any]]

    @property
    def input_records(self) -> int:
        """Total shuffled values, counted without materialising any run."""
        return sum(run.num_values for run in self.runs) + sum(
            len(values) for values in self.resident.values()
        )

    def with_resident(self, resident: Mapping[Any, list[Any]]) -> "SpilledPartition":
        """The same runs over a re-prepared in-memory remainder."""
        return replace(self, resident=resident)

    def sorted_items(self) -> KeyItems:
        """K-way merge of runs + resident in canonical key order.

        Sources are merged on ``(partition_sort_key, source index)``, with the
        resident remainder as the last source, so equal keys group adjacently
        and their value lists concatenate in arrival order.  Grouping copies a
        value list only when a second source actually contributes to the same
        key — the common single-source key stays zero-copy.
        """

        def decorated(index: int, items: KeyItems):
            for key, values in items:
                yield (partition_sort_key(key), index), key, values

        streams = [decorated(index, run.items()) for index, run in enumerate(self.runs)]
        streams.append(
            decorated(
                len(self.runs),
                (
                    (key, self.resident[key])
                    for key in sorted(self.resident, key=partition_sort_key)
                ),
            )
        )
        merged = heapq.merge(*streams, key=lambda item: item[0])
        current_key: Any = _NO_KEY
        current_values: list[Any] = []
        owns_values = False
        for _, key, values in merged:
            if current_key is _NO_KEY:
                current_key, current_values, owns_values = key, values, False
            elif key == current_key:
                if not owns_values:
                    # Copy before extending: the incoming lists belong to the
                    # runs/resident dict and must not be mutated.
                    current_values = list(current_values)
                    owns_values = True
                current_values.extend(values)
            else:
                yield current_key, current_values
                current_key, current_values, owns_values = key, values, False
        if current_key is not _NO_KEY:
            yield current_key, current_values


_NO_KEY = object()


class SpillManager:
    """Owns one job's spill directory, run files and byte accounting.

    The directory is created lazily on the first spill and removed — with
    every run file in it — by :meth:`cleanup`, which the engine calls in the
    job-level ``finally``: a job that fails or exhausts its retry budget
    leaves no spill files behind.
    """

    def __init__(self, job_name: str) -> None:
        self.job_name = job_name
        self._directory: Path | None = None
        self._run_ids = itertools.count()
        self.runs_written = 0
        self.bytes_spilled = 0

    @property
    def directory(self) -> Path:
        if self._directory is None:
            self._directory = Path(tempfile.mkdtemp(prefix=SPILL_DIR_PREFIX))
        return self._directory

    # ----------------------------------------------------------------- spills
    def spill(
        self, partition_index: int, partition: Mapping[Any, list[Any]]
    ) -> ColumnarRun | PickleRun:
        """Freeze one partition's current contents into a sorted run on disk."""
        from ..columnar.columns import IntervalColumns

        items = [
            (key, partition[key])
            for key in sorted(partition, key=partition_sort_key)
        ]
        columnar = bool(items) and all(
            isinstance(value, IntervalColumns)
            for _, values in items
            for value in values
        )
        run_id = next(self._run_ids)
        suffix = "cols" if columnar else "pkl"
        path = self.directory / f"part{partition_index:04d}-run{run_id:04d}.{suffix}"
        if columnar:
            run = self._write_columnar(path, items)
        else:
            run = self._write_pickle(path, items)
        self.runs_written += 1
        self.bytes_spilled += os.path.getsize(path)
        return run

    @staticmethod
    def _write_columnar(path: Path, items: list[tuple[Any, list[Any]]]) -> ColumnarRun:
        total_rows = sum(len(batch) for _, batches in items for batch in batches)
        with open(path, "wb") as handle:
            # Three passes, one section per column: tofile streams each batch
            # without ever concatenating the run in memory.
            for column, dtype in (
                ("uids", _UIDS_DTYPE),
                ("starts", _TIME_DTYPE),
                ("ends", _TIME_DTYPE),
            ):
                for _, batches in items:
                    for batch in batches:
                        np.ascontiguousarray(
                            getattr(batch, column), dtype=dtype
                        ).tofile(handle)
        entries = tuple(
            (
                key,
                tuple(len(batch) for batch in batches),
                tuple(batch.payloads for batch in batches),
            )
            for key, batches in items
        )
        return ColumnarRun(path=str(path), entries=entries, total_rows=total_rows)

    @staticmethod
    def _write_pickle(path: Path, items: list[tuple[Any, list[Any]]]) -> PickleRun:
        num_values = 0
        with open(path, "wb") as handle:
            for key, values in items:
                pickle.dump((key, list(values)), handle, protocol=pickle.HIGHEST_PROTOCOL)
                num_values += len(values)
        return PickleRun(path=str(path), num_keys=len(items), num_values=num_values)

    # ---------------------------------------------------------------- cleanup
    def cleanup(self) -> None:
        """Remove the spill directory and everything in it (idempotent)."""
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None
