"""Cluster configuration and job metrics.

The paper's experiments run on an 8-node Hadoop cluster with 6 workers and 24
reducers.  The engine keeps the same bookkeeping a real cluster would expose —
per-task wall-clock time, shuffle volume and counters, so that load imbalance
and replication cost can be measured the way the paper measures them — and
executes tasks on a pluggable backend: sequentially in-process by default, or
on a thread/process pool (see :mod:`repro.mapreduce.backends`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .counters import Counters

if TYPE_CHECKING:  # pragma: no cover - type-only imports (cycle-free)
    from .backends.base import TaskFailure
    from .faults import FaultPlan

__all__ = ["BACKEND_NAMES", "TRANSFER_NAMES", "ClusterConfig", "TaskMetrics", "JobMetrics"]

BACKEND_NAMES = ("serial", "thread", "process")
"""Valid ``ClusterConfig.backend`` values (the execution-backend registry keys)."""

TRANSFER_NAMES = ("inline", "pickle", "shm")
"""Valid ``ClusterConfig.transfer`` values (the transfer-strategy registry keys)."""


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    ``num_reducers`` mirrors the paper's 24 reducers (scaled down by default);
    ``num_mappers`` controls how input splits are formed in the map phase.
    ``backend`` selects how tasks execute (``serial``, ``thread`` or
    ``process``) and ``max_workers`` caps the worker pool of the parallel
    backends (``None`` lets the backend pick, typically the CPU count).

    The fault-tolerance knobs mirror Hadoop's: ``max_task_attempts`` is the
    total attempt budget per task (4, like ``mapreduce.map.maxattempts``; a
    task whose every attempt fails raises
    :class:`~repro.mapreduce.TaskFailedError`); ``speculative_slowdown`` opts
    the pool backends into speculative re-execution of stragglers (``None``
    disables it, a factor > 1 launches a backup once a task runs that many
    times longer than the batch median); ``fault_plan`` injects a declarative
    :class:`~repro.mapreduce.FaultPlan` into every backend the cluster creates
    — the deterministic chaos hook the fault tests are built on.
    """

    num_reducers: int = 8
    num_mappers: int = 4
    backend: str = "serial"
    max_workers: int | None = None
    max_task_attempts: int = 4
    speculative_slowdown: float | None = None
    fault_plan: "FaultPlan | None" = None
    transfer: str | None = None
    """Transfer strategy for task inputs (``inline``, ``pickle`` or ``shm``;
    see :mod:`repro.mapreduce.transfer`).  ``None`` defers to the backend's
    default: zero-copy ``inline`` in-process, ``pickle`` across processes."""
    memory_budget_bytes: int | None = None
    """Shuffle memory budget.  ``None`` keeps every partition resident (the
    historical behaviour); a positive value makes the shuffle spill partitions
    to sorted on-disk runs whenever the resident estimate crosses the budget,
    and reduce tasks stream a k-way merge of the runs (DESIGN.md §10)."""

    def __post_init__(self) -> None:
        if self.num_reducers <= 0 or self.num_mappers <= 0:
            raise ValueError("cluster sizes must be positive")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {sorted(BACKEND_NAMES)}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.max_task_attempts <= 0:
            raise ValueError("max_task_attempts must be positive")
        if self.speculative_slowdown is not None and self.speculative_slowdown <= 1.0:
            raise ValueError("speculative_slowdown must exceed 1.0")
        if self.fault_plan is not None and not hasattr(self.fault_plan, "rule_for"):
            raise ValueError("fault_plan must be a FaultPlan (or expose rule_for)")
        if self.transfer is not None and self.transfer not in TRANSFER_NAMES:
            raise ValueError(
                f"unknown transfer {self.transfer!r}; expected one of {sorted(TRANSFER_NAMES)}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")


@dataclass
class TaskMetrics:
    """Wall-clock time and record counts of one map or reduce task.

    ``attempt`` is the attempt number that actually produced the task's output
    (0 in a fault-free run; failed attempts are recorded separately in
    :attr:`JobMetrics.failed_attempts`).
    """

    task_id: int
    elapsed_seconds: float = 0.0
    input_records: int = 0
    output_records: int = 0
    attempt: int = 0


@dataclass
class JobMetrics:
    """Aggregate metrics of one executed Map-Reduce job.

    ``failed_attempts`` records every discarded task attempt (retried or not)
    and ``speculative_launches``/``speculative_wins`` the straggler
    duplications — all *separate* from ``counters`` and the per-task lists, so
    the user-visible replication/balance figures of a faulty run stay
    byte-identical to a fault-free one.
    """

    job_name: str
    map_tasks: list[TaskMetrics] = field(default_factory=list)
    reduce_tasks: list[TaskMetrics] = field(default_factory=list)
    shuffle_records: int = 0
    shuffle_size: int = 0
    shuffle_bytes: int = 0
    """Estimated bytes shuffled (every strategy; see
    :func:`repro.mapreduce.transfer.record_nbytes`) — ``shuffle_size`` keeps
    the job-defined record-size units the paper's replication figures use."""
    bytes_spilled: int = 0
    spill_runs: int = 0
    shm_segments: int = 0
    counters: Counters = field(default_factory=Counters)
    elapsed_seconds: float = 0.0
    failed_attempts: "list[TaskFailure]" = field(default_factory=list)
    speculative_launches: int = 0
    speculative_wins: int = 0

    @property
    def retried_tasks(self) -> int:
        """Number of distinct (phase, task) slots that lost at least one attempt."""
        return len({(failure.phase, failure.task_id) for failure in self.failed_attempts})

    # -------------------------------------------------------------- summaries
    @property
    def max_reduce_seconds(self) -> float:
        """Running time of the slowest reduce task (Figure 8b)."""
        if not self.reduce_tasks:
            return 0.0
        return max(task.elapsed_seconds for task in self.reduce_tasks)

    @property
    def avg_reduce_seconds(self) -> float:
        """Mean reduce-task running time."""
        if not self.reduce_tasks:
            return 0.0
        return sum(task.elapsed_seconds for task in self.reduce_tasks) / len(self.reduce_tasks)

    @property
    def imbalance(self) -> float:
        """``max / avg`` reduce-task time, the imbalance metric of Figure 10b."""
        avg = self.avg_reduce_seconds
        if avg == 0.0:
            return 1.0
        return self.max_reduce_seconds / avg

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "shuffle_records": float(self.shuffle_records),
            "shuffle_size": float(self.shuffle_size),
            "shuffle_bytes": float(self.shuffle_bytes),
            "bytes_spilled": float(self.bytes_spilled),
            "spill_runs": float(self.spill_runs),
            "shm_segments": float(self.shm_segments),
            "max_reduce_seconds": self.max_reduce_seconds,
            "avg_reduce_seconds": self.avg_reduce_seconds,
            "imbalance": self.imbalance,
            "num_reduce_tasks": float(len(self.reduce_tasks)),
        }

    def observed_costs(self) -> dict[str, float]:
        """Work-proportional figures for the planner's observed-cost store.

        Counter-derived volumes plus the balance figures; timing keys
        (``elapsed_seconds``, per-phase seconds) stay with the caller, who
        knows which phase this job implemented.
        """
        return {
            "candidates_examined": float(self.counters.get("join.candidates_examined")),
            "tuples_scored": float(self.counters.get("join.tuples_scored")),
            "combinations_processed": float(self.counters.get("join.combinations_processed")),
            "combinations_skipped": float(self.counters.get("join.combinations_skipped")),
            "shuffle_records": float(self.shuffle_records),
            "max_reduce_seconds": self.max_reduce_seconds,
            "imbalance": self.imbalance,
        }
