"""Simulated Map-Reduce substrate: jobs, partitioners, engine, backends and metrics."""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    create_backend,
)
from .cluster import BACKEND_NAMES, ClusterConfig, JobMetrics, TaskMetrics
from .counters import Counters
from .engine import JobResult, MapReduceEngine
from .job import (
    FirstElementPartitioner,
    HashPartitioner,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    RoutingPartitioner,
    default_record_size,
)

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ClusterConfig",
    "JobMetrics",
    "TaskMetrics",
    "Counters",
    "JobResult",
    "MapReduceEngine",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "create_backend",
    "FirstElementPartitioner",
    "HashPartitioner",
    "MapReduceJob",
    "Mapper",
    "Partitioner",
    "Reducer",
    "RoutingPartitioner",
    "default_record_size",
]
