"""Simulated Map-Reduce substrate: jobs, partitioners, engine, backends, faults and metrics."""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    GuardedTask,
    ProcessPoolBackend,
    SerialBackend,
    TaskFailedError,
    TaskFailure,
    TaskResult,
    ThreadPoolBackend,
    create_backend,
)
from .cluster import BACKEND_NAMES, ClusterConfig, JobMetrics, TaskMetrics
from .counters import Counters
from .engine import JobResult, MapReduceEngine, create_cluster_backend
from .faults import (
    FAULT_ACTIONS,
    FaultInjectingBackend,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from .job import (
    FirstElementPartitioner,
    HashPartitioner,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    RoutingPartitioner,
    default_record_size,
)

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ClusterConfig",
    "JobMetrics",
    "TaskMetrics",
    "Counters",
    "JobResult",
    "MapReduceEngine",
    "create_cluster_backend",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "create_backend",
    "GuardedTask",
    "TaskResult",
    "TaskFailure",
    "TaskFailedError",
    "FAULT_ACTIONS",
    "FaultPlan",
    "FaultRule",
    "FaultInjectingBackend",
    "InjectedFault",
    "FirstElementPartitioner",
    "HashPartitioner",
    "MapReduceJob",
    "Mapper",
    "Partitioner",
    "Reducer",
    "RoutingPartitioner",
    "default_record_size",
]
