"""Simulated Map-Reduce substrate: jobs, partitioners, engine and metrics."""

from .cluster import ClusterConfig, JobMetrics, TaskMetrics
from .counters import Counters
from .engine import JobResult, MapReduceEngine
from .job import (
    HashPartitioner,
    MapReduceJob,
    Mapper,
    Partitioner,
    Reducer,
    RoutingPartitioner,
)

__all__ = [
    "ClusterConfig",
    "JobMetrics",
    "TaskMetrics",
    "Counters",
    "JobResult",
    "MapReduceEngine",
    "HashPartitioner",
    "MapReduceJob",
    "Mapper",
    "Partitioner",
    "Reducer",
    "RoutingPartitioner",
]
