"""Serial backend: today's deterministic single-thread execution (the default)."""

from __future__ import annotations

from typing import Sequence

from .base import ExecutionBackend, Task, TaskResult

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Runs every task inline, in task order, on the calling thread.

    This is the reference implementation: the parallel backends are correct
    exactly when they are observationally equivalent to this one (same
    outputs, same counters; only timings may differ).
    """

    name = "serial"

    def run_tasks(self, tasks: Sequence[Task]) -> list[TaskResult]:
        return [task() for task in tasks]
