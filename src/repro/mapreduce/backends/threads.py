"""Thread-pool backend built on :class:`concurrent.futures.ThreadPoolExecutor`.

Threads share the interpreter, so pure-Python map/reduce code is still bound
by the GIL; the value of this backend is (a) overlapping any I/O or
GIL-releasing work inside tasks and (b) exercising the concurrency contract
(shared-nothing tasks, ordered merge) without process start-up or pickling
cost.  It is also the parity canary: if thread and serial results ever
diverge, a task is mutating shared state.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from .base import ExecutionBackend, Task, TaskFailure, TaskResult, execute_task
from .speculation import run_tasks_with_speculation

__all__ = ["ThreadPoolBackend"]


class ThreadPoolBackend(ExecutionBackend):
    """Executes tasks on a lazily-created, reusable thread pool."""

    name = "thread"

    def __init__(
        self,
        max_workers: int | None = None,
        speculative_slowdown: float | None = None,
        speculative_min_seconds: float = 0.05,
    ) -> None:
        super().__init__(max_workers, speculative_slowdown, speculative_min_seconds)
        self._executor: ThreadPoolExecutor | None = None

    @property
    def parallelism(self) -> int:
        return self.max_workers or min(32, os.cpu_count() or 1)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            workers = self.max_workers or min(32, os.cpu_count() or 1)
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="mapreduce"
            )
        return self._executor

    def run_tasks(self, tasks: Sequence[Task]) -> "list[TaskResult | TaskFailure]":
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self.speculative_slowdown is not None:
            return run_tasks_with_speculation(
                self._ensure_executor(),
                tasks,
                self.speculative_slowdown,
                self.speculative_min_seconds,
                self,
            )
        # Executor.map preserves submission order, giving the deterministic
        # merge order the engine relies on.
        return list(self._ensure_executor().map(execute_task, tasks))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
