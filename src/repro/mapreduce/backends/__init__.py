"""Pluggable execution backends for the Map-Reduce engine.

A backend executes the independent tasks of one job phase (map splits,
reduce partitions) and returns per-task results in task order; the engine
merges them deterministically, so every backend produces identical outputs
and counters — only timings differ.  Select a backend by name through
:class:`~repro.mapreduce.cluster.ClusterConfig`::

    ClusterConfig(backend="process", max_workers=4)

or construct one directly and hand it to the engine.
"""

from ..cluster import BACKEND_NAMES
from .base import (
    ExecutionBackend,
    GuardedTask,
    MapTask,
    ReduceTask,
    Task,
    TaskFailedError,
    TaskFailure,
    TaskResult,
    execute_task,
)
from .processes import ProcessPoolBackend
from .serial import SerialBackend
from .threads import ThreadPoolBackend

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "MapTask",
    "ReduceTask",
    "Task",
    "GuardedTask",
    "TaskResult",
    "TaskFailure",
    "TaskFailedError",
    "execute_task",
    "BACKENDS",
    "create_backend",
]

BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}
"""Backend name -> class, keyed by the names ``ClusterConfig`` validates against."""

assert set(BACKENDS) == set(BACKEND_NAMES), "backend registry out of sync with ClusterConfig"


def create_backend(
    name: str,
    max_workers: int | None = None,
    speculative_slowdown: float | None = None,
    speculative_min_seconds: float = 0.05,
) -> ExecutionBackend:
    """Instantiate a backend by name (``serial``, ``thread`` or ``process``).

    The speculation knobs opt the pool backends into straggler duplication
    (see :class:`ExecutionBackend`); the serial backend accepts and ignores
    them — a single inline worker has nothing to overlap.
    """
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}")
    return BACKENDS[name](
        max_workers=max_workers,
        speculative_slowdown=speculative_slowdown,
        speculative_min_seconds=speculative_min_seconds,
    )
