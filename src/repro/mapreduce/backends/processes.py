"""Process-pool backend built on :class:`concurrent.futures.ProcessPoolExecutor`.

This is the backend that buys real CPU parallelism for the paper's
scalability experiments: each map split / reduce partition is pickled to a
worker process and executed there, like a (single-machine) Hadoop task slot.
The price is the pickling contract — the job's factories, partitioner and
``record_size`` must all be importable module-level objects (see
:mod:`repro.mapreduce.job`) — and a per-task serialisation cost, so speedup
only materialises once tasks are CPU-bound enough to dominate it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from .base import ExecutionBackend, Task, TaskFailure, TaskResult, execute_task
from .speculation import run_tasks_with_speculation

__all__ = ["ProcessPoolBackend"]


class ProcessPoolBackend(ExecutionBackend):
    """Executes tasks on a lazily-created, reusable process pool."""

    name = "process"
    requires_pickling = True

    def __init__(
        self,
        max_workers: int | None = None,
        speculative_slowdown: float | None = None,
        speculative_min_seconds: float = 0.05,
    ) -> None:
        super().__init__(max_workers, speculative_slowdown, speculative_min_seconds)
        self._executor: ProcessPoolExecutor | None = None

    @property
    def parallelism(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            workers = self.max_workers or os.cpu_count() or 1
            self._executor = ProcessPoolExecutor(max_workers=workers)
        return self._executor

    def run_tasks(self, tasks: Sequence[Task]) -> "list[TaskResult | TaskFailure]":
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self.speculative_slowdown is not None:
            # A speculative duplicate is pickled afresh for its own worker, so
            # launch-scoped fault state (a fire-once injected delay) re-fires in
            # the copy; speculation still preserves results — the duplicate is
            # the same pure task — it just wins fewer races than on threads.
            return run_tasks_with_speculation(
                self._ensure_executor(),
                tasks,
                self.speculative_slowdown,
                self.speculative_min_seconds,
                self,
            )
        # Executor.map preserves submission order, giving the deterministic
        # merge order the engine relies on.  chunksize=1 keeps the largest
        # task from serialising a whole chunk behind it.
        return list(self._ensure_executor().map(execute_task, tasks, chunksize=1))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
