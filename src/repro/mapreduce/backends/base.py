"""Execution-backend contract: tasks, task results and the backend interface.

The engine decomposes every job into independent *tasks* — one
:class:`MapTask` per input split and one :class:`ReduceTask` per shuffle
partition — and hands them to an :class:`ExecutionBackend` for execution.
Tasks are plain picklable callables (see DESIGN.md §3): everything a worker
needs (the job description, its slice of the data) travels inside the task,
and everything the engine needs back (outputs, per-task timing, counters)
travels inside the :class:`TaskResult`.  Backends MUST return results in task
order; the engine merges outputs and counters deterministically from that
order, which is what makes every backend produce byte-identical results.

For the process backend the pickling requirement is real: job factories must
be module-level classes or :func:`functools.partial` objects over them —
never lambdas or closures (see :mod:`repro.mapreduce.job`).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence, Union

from ..cluster import TaskMetrics
from ..counters import Counters
from ..job import KeyValue, MapReduceJob

__all__ = [
    "TaskResult",
    "TaskFailure",
    "TaskFailedError",
    "MapTask",
    "ReduceTask",
    "Task",
    "GuardedTask",
    "ExecutionBackend",
    "execute_task",
    "partition_sort_key",
    "iter_partition",
    "partition_input_records",
]


@dataclass
class TaskResult:
    """Everything one executed task sends back to the engine."""

    task_id: int
    outputs: list[KeyValue]
    metrics: TaskMetrics
    counters: Counters


@dataclass
class TaskFailure:
    """One failed task attempt: what died, when, and with which error.

    Failures travel through the same channel as results (backends return them
    in task order like any :class:`TaskResult`), so every backend — including
    the process pool, where a raised exception would poison the whole
    ``Executor.map`` batch — reports per-task failures the engine can retry.
    ``counters`` carries the discarded attempt's counters when they are known
    (an injected post-execution fault); they are recorded in
    :class:`~repro.mapreduce.cluster.JobMetrics` for observability but NEVER
    merged into the job's counters, keeping fault runs byte-identical to
    fault-free ones.
    """

    task_id: int
    attempt: int
    error_type: str
    message: str
    elapsed_seconds: float = 0.0
    phase: str = ""
    counters: Counters | None = None


class TaskFailedError(RuntimeError):
    """A task exhausted its attempt budget; carries the full attempt history."""

    def __init__(self, job_name: str, phase: str, task_id: int, attempts: list[TaskFailure]):
        self.job_name = job_name
        self.phase = phase
        self.task_id = task_id
        self.attempts = list(attempts)
        last = attempts[-1]
        super().__init__(
            f"{phase} task {task_id} of job {job_name!r} failed "
            f"{len(attempts)} attempt(s); last error: {last.error_type}: {last.message}"
        )


@dataclass(frozen=True)
class MapTask:
    """One map task: a fresh mapper applied to one input split.

    ``split`` is a tuple on pickling backends; non-pickling backends may pass
    the engine's own split list directly (tasks only iterate it).
    """

    phase = "map"

    job: MapReduceJob
    task_id: int
    split: Sequence[KeyValue]

    def __call__(self) -> TaskResult:
        mapper = self.job.mapper_factory()
        counters = Counters()
        mapper.setup(counters)
        metrics = TaskMetrics(task_id=self.task_id, input_records=len(self.split))
        outputs: list[KeyValue] = []
        started = time.perf_counter()
        for key, value in self.split:
            for pair in mapper.map(key, value):
                outputs.append(pair)
        metrics.elapsed_seconds = time.perf_counter() - started
        metrics.output_records = len(outputs)
        return TaskResult(self.task_id, outputs, metrics, counters)


def iter_partition(partition: Any):
    """Stream one partition's ``(key, values)`` groups in canonical key order.

    An in-memory partition (any mapping of key → value list) iterates its keys
    sorted by :func:`partition_sort_key`.  A spilled partition (anything
    exposing ``sorted_items``, see :class:`~repro.mapreduce.spill.SpilledPartition`)
    streams a k-way merge of its on-disk runs and resident remainder — in the
    *same* canonical order, which is what keeps budgeted runs byte-identical
    to unbounded ones.
    """
    sorted_items = getattr(partition, "sorted_items", None)
    if sorted_items is not None:
        return sorted_items()
    return ((key, partition[key]) for key in sorted(partition, key=partition_sort_key))


def partition_input_records(partition: Any) -> int:
    """Total shuffled values in one partition, without materialising runs."""
    input_records = getattr(partition, "input_records", None)
    if input_records is not None:
        return int(input_records)
    return sum(len(values) for values in partition.values())


@dataclass(frozen=True)
class ReduceTask:
    """One reduce task: a fresh reducer folded over one shuffle partition.

    Keys are reduced in a deterministic order independent of insertion order,
    so that all backends emit identical output sequences.  ``partition`` is
    either an in-memory mapping or a spilled partition streaming its groups
    from sorted on-disk runs; the reducer never sees the difference.
    """

    phase = "reduce"

    job: MapReduceJob
    task_id: int
    partition: Any

    def __call__(self) -> TaskResult:
        reducer = self.job.reducer_factory()
        counters = Counters()
        reducer.setup(counters)
        metrics = TaskMetrics(
            task_id=self.task_id,
            input_records=partition_input_records(self.partition),
        )
        outputs: list[KeyValue] = []
        started = time.perf_counter()
        for key, values in iter_partition(self.partition):
            for pair in reducer.reduce(key, values):
                outputs.append(pair)
        for pair in reducer.cleanup():
            outputs.append(pair)
        metrics.elapsed_seconds = time.perf_counter() - started
        metrics.output_records = len(outputs)
        return TaskResult(self.task_id, outputs, metrics, counters)


@dataclass(frozen=True)
class GuardedTask:
    """A task plus its attempt number, with failures captured as values.

    The engine wraps every map/reduce task in one of these before handing the
    batch to the backend: a raised exception (a mapper bug, an
    :class:`~repro.mapreduce.faults.InjectedFault`) becomes a
    :class:`TaskFailure` in the result list instead of killing the whole batch,
    which is what makes task-level retries possible on every backend.  The
    failed attempt's outputs and counters are dropped here — exactly-once
    semantics are enforced at the capture point, not by the merge.

    Attribute access falls through to the wrapped task (``job``, ``task_id``,
    ``split``/``partition``, ``phase``), so backends and fault plans can
    introspect a guarded task exactly like a raw one.
    """

    task: "MapTask | ReduceTask"
    attempt: int = 0

    def __call__(self) -> "TaskResult | TaskFailure":
        started = time.perf_counter()
        try:
            return self.task()
        except Exception as error:  # noqa: BLE001 - the capture point for retries
            return TaskFailure(
                task_id=self.task.task_id,
                attempt=self.attempt,
                error_type=type(error).__name__,
                message=str(error),
                elapsed_seconds=time.perf_counter() - started,
                phase=self.task.phase,
            )

    def __getattr__(self, name: str) -> Any:
        # Delegate everything the dataclass itself does not define; guard the
        # underscore space so pickling a half-restored instance cannot recurse.
        if name.startswith("_") or name == "task":
            raise AttributeError(name)
        return getattr(self.task, name)


Task = Union[MapTask, ReduceTask, GuardedTask]


def execute_task(task: Task) -> "TaskResult | TaskFailure":
    """Run one task (module-level so executors can ship it to workers)."""
    return task()


def partition_sort_key(key: Any) -> Any:
    """Deterministic ordering of heterogeneous keys inside a partition."""
    return (str(type(key)), repr(key))


class ExecutionBackend(ABC):
    """Executes a batch of independent tasks and returns results in task order.

    Backends own whatever worker state they need (thread/process pools are
    created lazily on first use) and release it in :meth:`close`.  They are
    reusable across jobs: the engine keeps one backend for its lifetime so
    pool start-up cost is amortised over many jobs.

    ``requires_pickling`` declares whether tasks cross a process boundary.
    It is the legacy form of the transfer contract: the engine now resolves a
    full :class:`~repro.mapreduce.transfer.TransferStrategy` per job — from
    ``ClusterConfig.transfer`` when set, else from the backend's ``transfer``
    default, else ``"pickle"``/``"inline"`` according to this flag — so
    backends written against the old boolean keep their exact behaviour:
    ``False`` (serial/thread) yields the zero-copy ``inline`` strategy whose
    tasks read the very containers the engine built, ``True`` (process) the
    ``pickle`` strategy with its defensive ``tuple``/``dict`` freezes.
    ``transfer`` lets a backend prefer a specific strategy by name instead
    (e.g. ``"shm"`` to ship columnar batches through shared memory).

    ``speculative_slowdown`` opts a pool backend into speculative execution of
    straggler tasks: once a task has run longer than ``slowdown × median`` of
    the completed tasks of its batch (and at least ``speculative_min_seconds``),
    a duplicate is launched and the first finisher wins — the loser is
    cancelled, or its result discarded if already running.  Tasks are pure, so
    whichever copy wins, outputs and counters are identical; only wall-clock
    changes.  The serial backend ignores the knob (there is nothing to overlap).
    ``speculative_launches``/``speculative_wins`` count duplicate launches and
    the races a backup actually won.
    """

    name: str = "abstract"
    requires_pickling: bool = False
    transfer: str | None = None
    """Preferred transfer-strategy name (``None``: derive from the flag above)."""

    def __init__(
        self,
        max_workers: int | None = None,
        speculative_slowdown: float | None = None,
        speculative_min_seconds: float = 0.05,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if speculative_slowdown is not None and speculative_slowdown <= 1.0:
            raise ValueError("speculative_slowdown must exceed 1.0 (a straggler factor)")
        if speculative_min_seconds < 0:
            raise ValueError("speculative_min_seconds must be non-negative")
        self.max_workers = max_workers
        self.speculative_slowdown = speculative_slowdown
        self.speculative_min_seconds = speculative_min_seconds
        self.speculative_launches = 0
        self.speculative_wins = 0

    @property
    def parallelism(self) -> int:
        """How many tasks this backend genuinely runs at once.

        A dispatch hint, not a limit: under a shuffle memory budget the engine
        sizes its map waves to this, so pipelining map results into the
        shuffle never starves a pool of runnable tasks.  The base answer is
        ``max_workers`` (or 1); pool backends override it with their actual
        lazy default so an unconfigured pool still reports its real width.
        """
        return self.max_workers or 1

    @abstractmethod
    def run_tasks(self, tasks: Sequence[Task]) -> "list[TaskResult | TaskFailure]":
        """Execute every task; result ``i`` corresponds to ``tasks[i]``.

        A :class:`TaskFailure` entry reports a captured failed attempt (tasks
        wrapped in :class:`GuardedTask` never raise); the engine decides
        whether to retry it.
        """

    def close(self) -> None:
        """Release worker resources (idempotent; the backend stays usable)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"
