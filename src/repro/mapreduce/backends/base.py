"""Execution-backend contract: tasks, task results and the backend interface.

The engine decomposes every job into independent *tasks* — one
:class:`MapTask` per input split and one :class:`ReduceTask` per shuffle
partition — and hands them to an :class:`ExecutionBackend` for execution.
Tasks are plain picklable callables (see DESIGN.md §3): everything a worker
needs (the job description, its slice of the data) travels inside the task,
and everything the engine needs back (outputs, per-task timing, counters)
travels inside the :class:`TaskResult`.  Backends MUST return results in task
order; the engine merges outputs and counters deterministically from that
order, which is what makes every backend produce byte-identical results.

For the process backend the pickling requirement is real: job factories must
be module-level classes or :func:`functools.partial` objects over them —
never lambdas or closures (see :mod:`repro.mapreduce.job`).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence, Union

from ..cluster import TaskMetrics
from ..counters import Counters
from ..job import KeyValue, MapReduceJob

__all__ = [
    "TaskResult",
    "MapTask",
    "ReduceTask",
    "Task",
    "ExecutionBackend",
    "execute_task",
    "partition_sort_key",
]


@dataclass
class TaskResult:
    """Everything one executed task sends back to the engine."""

    task_id: int
    outputs: list[KeyValue]
    metrics: TaskMetrics
    counters: Counters


@dataclass(frozen=True)
class MapTask:
    """One map task: a fresh mapper applied to one input split.

    ``split`` is a tuple on pickling backends; non-pickling backends may pass
    the engine's own split list directly (tasks only iterate it).
    """

    job: MapReduceJob
    task_id: int
    split: Sequence[KeyValue]

    def __call__(self) -> TaskResult:
        mapper = self.job.mapper_factory()
        counters = Counters()
        mapper.setup(counters)
        metrics = TaskMetrics(task_id=self.task_id, input_records=len(self.split))
        outputs: list[KeyValue] = []
        started = time.perf_counter()
        for key, value in self.split:
            for pair in mapper.map(key, value):
                outputs.append(pair)
        metrics.elapsed_seconds = time.perf_counter() - started
        metrics.output_records = len(outputs)
        return TaskResult(self.task_id, outputs, metrics, counters)


@dataclass(frozen=True)
class ReduceTask:
    """One reduce task: a fresh reducer folded over one shuffle partition.

    Keys are reduced in a deterministic order independent of insertion order,
    so that all backends emit identical output sequences.
    """

    job: MapReduceJob
    task_id: int
    partition: dict[Any, list[Any]]

    def __call__(self) -> TaskResult:
        reducer = self.job.reducer_factory()
        counters = Counters()
        reducer.setup(counters)
        metrics = TaskMetrics(
            task_id=self.task_id,
            input_records=sum(len(values) for values in self.partition.values()),
        )
        outputs: list[KeyValue] = []
        started = time.perf_counter()
        for key in sorted(self.partition.keys(), key=partition_sort_key):
            for pair in reducer.reduce(key, self.partition[key]):
                outputs.append(pair)
        for pair in reducer.cleanup():
            outputs.append(pair)
        metrics.elapsed_seconds = time.perf_counter() - started
        metrics.output_records = len(outputs)
        return TaskResult(self.task_id, outputs, metrics, counters)


Task = Union[MapTask, ReduceTask]


def execute_task(task: Task) -> TaskResult:
    """Run one task (module-level so executors can ship it to workers)."""
    return task()


def partition_sort_key(key: Any) -> Any:
    """Deterministic ordering of heterogeneous keys inside a partition."""
    return (str(type(key)), repr(key))


class ExecutionBackend(ABC):
    """Executes a batch of independent tasks and returns results in task order.

    Backends own whatever worker state they need (thread/process pools are
    created lazily on first use) and release it in :meth:`close`.  They are
    reusable across jobs: the engine keeps one backend for its lifetime so
    pool start-up cost is amortised over many jobs.

    ``requires_pickling`` declares whether tasks cross a process boundary.
    When it is ``False`` (serial/thread) the engine takes a zero-copy fast
    path: map splits and shuffle partitions are handed to tasks as the very
    containers the engine built, skipping the defensive ``tuple``/``dict``
    copies that only exist to shrink pickles for the process backend.
    """

    name: str = "abstract"
    requires_pickling: bool = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    @abstractmethod
    def run_tasks(self, tasks: Sequence[Task]) -> list[TaskResult]:
        """Execute every task; result ``i`` corresponds to ``tasks[i]``."""

    def close(self) -> None:
        """Release worker resources (idempotent; the backend stays usable)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(max_workers={self.max_workers})"
