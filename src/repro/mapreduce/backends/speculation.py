"""Speculative execution of straggler tasks on a ``concurrent.futures`` pool.

This is the in-process analogue of Hadoop's speculative execution: the batch
is submitted task by task, completions are observed as they happen, and any
task that keeps running past ``slowdown × median`` of the completed tasks'
durations (and past a floor of ``min_seconds``) gets a duplicate launch.  The
first copy to finish supplies the task's result; the other is cancelled if it
has not started, or its result silently discarded if it has — tasks are pure,
so the race never changes outputs or counters, only wall-clock time.

The helper is shared by the thread and process backends.  Results are returned
in task order, preserving the deterministic-merge contract of
:class:`~repro.mapreduce.backends.ExecutionBackend`.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from typing import TYPE_CHECKING, Sequence

from .base import Task, TaskFailure, TaskResult, execute_task

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .base import ExecutionBackend

__all__ = ["run_tasks_with_speculation"]

_POLL_SECONDS = 0.02
"""How often the watcher re-evaluates stragglers while no task completes."""


def run_tasks_with_speculation(
    executor: Executor,
    tasks: Sequence[Task],
    slowdown: float,
    min_seconds: float,
    backend: "ExecutionBackend",
) -> "list[TaskResult | TaskFailure]":
    """Run ``tasks`` with straggler duplication; results come back in task order.

    ``backend.speculative_launches``/``speculative_wins`` are incremented for
    every duplicate launched and every race a backup won.  Durations are
    measured from submission, so a task queued behind a full pool can be
    speculated too — the backup queues as well, which wastes at most one slot.
    """
    results: "list[TaskResult | TaskFailure | None]" = [None] * len(tasks)
    settled = [False] * len(tasks)
    index_of: dict[Future, int] = {}
    primary: dict[int, Future] = {}
    backup: dict[int, Future] = {}
    submitted_at: dict[int, float] = {}

    pending: set[Future] = set()
    for index, task in enumerate(tasks):
        future = executor.submit(execute_task, task)
        index_of[future] = index
        primary[index] = future
        submitted_at[index] = time.perf_counter()
        pending.add(future)

    durations: list[float] = []
    remaining = len(tasks)
    while remaining:
        done, pending = wait(pending, timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED)
        now = time.perf_counter()
        for future in done:
            index = index_of[future]
            if settled[index] or future.cancelled():
                continue  # the loser of a settled race; its result is discarded
            error = future.exception()
            if error is not None:
                # Unguarded tasks propagate like Executor.map would; guarded
                # tasks report failures as TaskFailure values instead.
                raise error
            results[index] = future.result()
            settled[index] = True
            remaining -= 1
            if not isinstance(results[index], TaskFailure):
                # Failed attempts (an injected "fail" settles near-instantly)
                # would drag the median toward zero and trigger a backup for
                # every healthy task; the straggler baseline is successes only.
                durations.append(now - submitted_at[index])
            if backup.get(index) is future:
                backend.speculative_wins += 1
            loser = backup.get(index) if future is primary[index] else primary[index]
            if loser is not None and loser is not future:
                loser.cancel()
        if remaining and durations:
            threshold = max(min_seconds, slowdown * statistics.median(durations))
            for index, is_settled in enumerate(settled):
                if is_settled or index in backup:
                    continue
                if now - submitted_at[index] >= threshold:
                    duplicate = executor.submit(execute_task, tasks[index])
                    index_of[duplicate] = index
                    backup[index] = duplicate
                    pending.add(duplicate)
                    backend.speculative_launches += 1
    return results  # type: ignore[return-value] - every slot is settled
