"""Job counters.

Map-Reduce implementations expose named counters that tasks increment; TKIJ's
evaluation relies on them to report shuffle volume (records replicated to several
reducers), the number of candidate results evaluated, and the number pruned.

Counters are the per-task side channel of the execution backends: every map or
reduce task gets a fresh bag, workers fill it (possibly in another process —
bags are picklable), and the engine folds the bags back with
:meth:`Counters.merge` in task order.  Counter addition is commutative, so
every backend produces identical aggregate counters regardless of the order
tasks actually finished in.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import ItemsView

__all__ = ["Counters"]


@dataclass
class Counters:
    """A bag of named integer counters."""

    values: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero if absent)."""
        self.values[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this bag."""
        for name, value in other.values.items():
            self.values[name] += value

    def items(self) -> ItemsView[str, int]:
        return self.values.items()

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for reports)."""
        return dict(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"Counters({inner})"
