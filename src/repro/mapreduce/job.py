"""Map-Reduce job interfaces.

The engine executes jobs expressed with the classic interface of Dean &
Ghemawat: a mapper emits ``(key, value)`` pairs for every input record, pairs are
shuffled to reducers by a partitioner, and each reducer folds the values of every
key it owns.  Jobs may declare a custom partitioner (TKIJ routes buckets to the
reducers chosen by DTB rather than by hash) and a record-size estimator used for
shuffle-volume accounting.

**Picklability contract.**  Map splits and reduce partitions may execute on a
process pool (``ClusterConfig(backend="process")``), in which case the whole
job description is pickled into every task.  ``mapper_factory``,
``reducer_factory``, ``partitioner`` and ``record_size`` must therefore be
importable module-level objects: classes, functions, or
:func:`functools.partial` over them.  A lambda or a locally-defined closure
works on the serial and thread backends but raises a pickling error on the
process backend — prefer ``functools.partial(MyMapper, arg1, arg2)`` to
``lambda: MyMapper(arg1, arg2)`` everywhere.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .counters import Counters

__all__ = [
    "Mapper",
    "Reducer",
    "Partitioner",
    "HashPartitioner",
    "RoutingPartitioner",
    "FirstElementPartitioner",
    "MapReduceJob",
    "default_record_size",
]

KeyValue = tuple[Any, Any]


class Mapper(ABC):
    """Transforms one input record into zero or more ``(key, value)`` pairs."""

    def setup(self, counters: Counters) -> None:
        """Called once before the task processes its split."""
        self.counters = counters

    @abstractmethod
    def map(self, key: Any, value: Any) -> Iterator[KeyValue]:
        """Emit intermediate pairs for one input record."""


class Reducer(ABC):
    """Folds all values of one intermediate key into zero or more output pairs."""

    def setup(self, counters: Counters) -> None:
        """Called once before the task processes its partition."""
        self.counters = counters

    @abstractmethod
    def reduce(self, key: Any, values: list[Any]) -> Iterator[KeyValue]:
        """Emit output pairs for one key and all of its values."""

    def cleanup(self) -> Iterator[KeyValue]:
        """Emit trailing output after every key of the partition was reduced."""
        return iter(())


class Partitioner(ABC):
    """Chooses the reducer responsible for an intermediate key."""

    @abstractmethod
    def partition(self, key: Any, num_reducers: int) -> int:
        """Index (0-based) of the reducer that receives ``key``."""


class HashPartitioner(Partitioner):
    """Default partitioner: stable hash of the key modulo the reducer count."""

    def partition(self, key: Any, num_reducers: int) -> int:
        return _stable_hash(key) % num_reducers


class RoutingPartitioner(Partitioner):
    """Partitioner driven by an explicit routing table.

    TKIJ's join phase uses this to send every (bucket, interval) pair to exactly
    the reducers DTB selected.  Keys missing from the table fall back to hashing.
    """

    def __init__(self, routing: dict[Any, int]) -> None:
        self._routing = routing

    def partition(self, key: Any, num_reducers: int) -> int:
        if key in self._routing:
            return self._routing[key] % num_reducers
        return _stable_hash(key) % num_reducers


class FirstElementPartitioner(Partitioner):
    """Partitions composite keys by their first element.

    Jobs whose mappers already encode the destination in the key — TKIJ's join
    phase emits ``(reducer, vertex, bucket)``, the baselines emit
    ``(partition, ...)`` — route on that element directly: an integer first
    element is taken modulo the reducer count, anything else falls back to the
    stable hash.  Stateless, hence trivially picklable for the process backend.
    """

    def partition(self, key: Any, num_reducers: int) -> int:
        first = key[0]
        if isinstance(first, int) and not isinstance(first, bool):
            return first % num_reducers
        return _stable_hash(first) % num_reducers


def _stable_hash(key: Any) -> int:
    """Deterministic, process-independent hash for keys made of primitives/tuples."""
    if isinstance(key, tuple):
        value = 1469598103
        for item in key:
            value = (value * 1099511628211 + _stable_hash(item)) % (2 ** 61 - 1)
        return value
    if isinstance(key, str):
        value = 1469598103
        for char in key:
            value = (value * 31 + ord(char)) % (2 ** 61 - 1)
        return value
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key % (2 ** 61 - 1)
    if isinstance(key, float):
        return int(key * 1000003) % (2 ** 61 - 1)
    return abs(hash(key))


def default_record_size(key: Any, value: Any) -> int:
    """Default shuffle-size estimate: one abstract unit per record.

    A module-level function (not a lambda) so that job descriptions stay
    picklable for the process backend.
    """
    return 1


@dataclass
class MapReduceJob:
    """A complete job description handed to the engine.

    ``record_size`` estimates the size (in abstract units, e.g. records) of one
    shuffled value; the engine multiplies it into the shuffle counters so that the
    I/O comparisons of the paper (Figure 8's shuffle-cost discussion) can be
    reproduced without serialising anything.

    Every callable field must honour the module-level picklability contract
    (see the module docstring) for the job to run on the process backend.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    partitioner: Partitioner | None = None
    num_reducers: int = 1
    record_size: Callable[[Any, Any], int] = default_record_size

    def make_partitioner(self) -> Partitioner:
        return self.partitioner if self.partitioner is not None else HashPartitioner()
