"""Transfer strategies: how map splits and shuffle partitions reach tasks.

Historically the engine keyed its copy behaviour off one backend flag
(``ExecutionBackend.requires_pickling``): serial/thread tasks received the
engine's own containers, the process backend got defensive ``tuple``/``dict``
freezes and paid a full pickle of every record.  This module promotes that
flag into a :class:`TransferStrategy` object with three implementations
(DESIGN.md §10):

``inline``
    Today's zero-copy fast path.  Splits and partitions are handed to tasks
    exactly as the engine built them; correct only when tasks run in the
    engine's own address space (serial/thread).

``pickle``
    Today's process fallback.  Splits freeze to tuples and partitions to plain
    dicts — the smallest honest pickles — and every record crosses the process
    boundary by value.

``shm``
    Columnar zero-copy across processes.  Any
    :class:`~repro.columnar.IntervalColumns` value in a split or partition is
    converted (once per source batch, deduplicated by a
    :class:`~repro.columnar.SharedMemoryPool`) into a
    :class:`~repro.columnar.SharedIntervalColumns` whose pickle is a segment
    descriptor, so the process backend ships names instead of column bytes.
    Scalar records still travel by value, which makes the strategy safe for
    every job mix.

The engine resolves its strategy from ``ClusterConfig.transfer`` when set,
else from the backend's declared default (``ExecutionBackend.transfer``), else
from the legacy ``requires_pickling`` flag — so custom backends written
against the old contract keep working unchanged.

The module also owns the shuffle byte estimator used for
``JobMetrics.shuffle_bytes`` and the spill budget: cheap structural estimates
for the hot types (intervals, columns, numbers, strings), a pickle-size probe
only for exotic values.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

import numpy as np

from .cluster import TRANSFER_NAMES
from .job import KeyValue

__all__ = [
    "TransferStrategy",
    "InlineTransfer",
    "PickleTransfer",
    "SharedMemoryTransfer",
    "TRANSFERS",
    "create_transfer",
    "estimate_nbytes",
    "record_nbytes",
]


# ------------------------------------------------------------------ accounting
_PICKLE_FALLBACK_BYTES = 64


def estimate_nbytes(value: Any) -> int:
    """Cheap, deterministic size estimate of one shuffled key or value.

    This is accounting, not serialisation: identical across strategies and
    backends (so ``shuffle_bytes`` is byte-identical everywhere) and O(1) for
    the types the join actually shuffles.  Columnar batches answer through
    ``transfer_nbytes``; interval-like records (``uid``/``start``/``end``) are
    charged their three fixed fields; containers recurse; anything else pays a
    one-off pickle probe.
    """
    probe = getattr(value, "transfer_nbytes", None)
    if probe is not None:
        return int(probe())
    if value is None or isinstance(value, (bool, int, float)):
        return 8
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (bytes, bytearray)):
        return 33 + len(value)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if hasattr(value, "uid") and hasattr(value, "start") and hasattr(value, "end"):
        payload = getattr(value, "payload", None)
        return 32 if payload is None else 32 + estimate_nbytes(payload)
    if isinstance(value, (tuple, list)):
        return 56 + 8 * len(value) + sum(estimate_nbytes(item) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in value.items()
        )
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - estimation must never fail a job
        return _PICKLE_FALLBACK_BYTES


def record_nbytes(key: Any, value: Any) -> int:
    """Estimated bytes of one shuffled ``(key, value)`` record."""
    return estimate_nbytes(key) + estimate_nbytes(value)


# ------------------------------------------------------------------ strategies
class TransferStrategy(ABC):
    """How task inputs cross the engine/worker boundary for one backend.

    ``prepare_split``/``prepare_partition`` run on the driver just before task
    construction; whatever they return is what the task object carries (and,
    on a process backend, what gets pickled).  ``release_job`` runs in the
    engine's job-level ``finally`` — success, :class:`TaskFailedError` and
    retry paths alike — and must drop any cross-process resources the job
    acquired.  ``requires_pickling`` keeps the old backend contract observable
    (tests and the fault-injection wrapper read it).
    """

    name: str = "abstract"
    requires_pickling: bool = False

    @abstractmethod
    def prepare_split(self, split: Sequence[KeyValue]) -> Sequence[KeyValue]:
        """The form of one map split handed to its task."""

    def prepare_partition(self, partition: Any) -> Any:
        """The form of one reduce partition handed to its task.

        Spilled partitions (anything exposing ``with_resident``) keep their
        on-disk runs untouched — runs are already compact and picklable — and
        have only their resident remainder prepared.
        """
        if hasattr(partition, "with_resident"):
            return partition.with_resident(self._prepare_mapping(partition.resident))
        return self._prepare_mapping(partition)

    @abstractmethod
    def _prepare_mapping(self, partition: Mapping[Any, list[Any]]) -> Any:
        """Prepare one in-memory key→values mapping."""

    # ------------------------------------------------------------- lifecycle
    def release_job(self) -> None:
        """Release per-job resources (called on job close, even on failure)."""

    def close(self) -> None:
        """Release everything (called when the engine closes)."""
        self.release_job()

    # --------------------------------------------------------------- metrics
    @property
    def segments_created(self) -> int:
        """Shared-memory segments created so far (0 for non-shm strategies)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class InlineTransfer(TransferStrategy):
    """Zero-copy within one address space: tasks read the engine's containers."""

    name = "inline"
    requires_pickling = False

    def prepare_split(self, split: Sequence[KeyValue]) -> Sequence[KeyValue]:
        return split

    def _prepare_mapping(self, partition: Mapping[Any, list[Any]]) -> Any:
        return partition


class PickleTransfer(TransferStrategy):
    """Freeze to the smallest honest pickles: tuples for splits, dicts for partitions."""

    name = "pickle"
    requires_pickling = True

    def prepare_split(self, split: Sequence[KeyValue]) -> Sequence[KeyValue]:
        return tuple(split)

    def _prepare_mapping(self, partition: Mapping[Any, list[Any]]) -> Any:
        return dict(partition)


class SharedMemoryTransfer(TransferStrategy):
    """Ship columnar batches through shared memory, everything else by value."""

    name = "shm"
    requires_pickling = True

    def __init__(self) -> None:
        # Imported here (not at module top) to keep repro.mapreduce importable
        # without pulling the columnar package in for non-shm users.
        from ..columnar.shm import SharedMemoryPool

        self.pool = SharedMemoryPool()

    def _share(self, value: Any) -> Any:
        from ..columnar.columns import IntervalColumns

        if isinstance(value, IntervalColumns):
            return self.pool.share(value)
        return value

    def prepare_split(self, split: Sequence[KeyValue]) -> Sequence[KeyValue]:
        return tuple((key, self._share(value)) for key, value in split)

    def _prepare_mapping(self, partition: Mapping[Any, list[Any]]) -> Any:
        return {
            key: [self._share(value) for value in values]
            for key, values in partition.items()
        }

    def release_job(self) -> None:
        self.pool.release_job()

    def close(self) -> None:
        self.pool.close()

    @property
    def segments_created(self) -> int:
        return self.pool.segments_created


TRANSFERS: dict[str, type[TransferStrategy]] = {
    InlineTransfer.name: InlineTransfer,
    PickleTransfer.name: PickleTransfer,
    SharedMemoryTransfer.name: SharedMemoryTransfer,
}
"""Strategy name -> class, keyed by the names ``ClusterConfig`` validates against."""

assert set(TRANSFERS) == set(TRANSFER_NAMES), "transfer registry out of sync with ClusterConfig"


def create_transfer(name: str) -> TransferStrategy:
    """Instantiate a transfer strategy by name (``inline``, ``pickle`` or ``shm``)."""
    if name not in TRANSFERS:
        raise ValueError(f"unknown transfer {name!r}; expected one of {sorted(TRANSFERS)}")
    return TRANSFERS[name]()
