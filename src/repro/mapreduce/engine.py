"""In-process Map-Reduce engine.

This is the execution substrate that stands in for Hadoop (see DESIGN.md §2).  The
engine runs a :class:`~repro.mapreduce.job.MapReduceJob` over an in-memory input,
reproducing the dataflow of a real cluster:

1. the input is split into ``num_mappers`` splits and each split becomes one
   :class:`~repro.mapreduce.backends.MapTask` (fresh mapper instance, per-task
   timing and counters);
2. intermediate pairs are shuffled to ``num_reducers`` partitions according to the
   job's partitioner, counting shuffled records and their estimated size; under a
   ``ClusterConfig.memory_budget_bytes`` the map tasks are dispatched in waves of
   ``backend.parallelism`` with each wave's outputs routed into the shuffle before
   the next wave launches, and the shuffle spills oversized partitions to sorted
   on-disk runs (:mod:`repro.mapreduce.spill`) — the driver's resident footprint
   stays bounded by the budget plus one wave, not the dataset;
3. each partition becomes one :class:`~repro.mapreduce.backends.ReduceTask`
   grouping values by key (per-task timing recorded — the quantity behind the
   paper's "max time reducer" and imbalance plots); spilled partitions stream a
   k-way merge of their runs instead of a materialised dict.

How task inputs reach the backend is the job of a
:class:`~repro.mapreduce.transfer.TransferStrategy` (``inline``, ``pickle`` or
``shm``), resolved per engine from ``ClusterConfig.transfer`` or the backend's
default — see DESIGN.md §10.  The ``shm`` strategy ships columnar batches
through shared-memory segments; the engine releases them in a job-level
``finally``, so failed and retried jobs never leak ``/dev/shm`` entries.

Tasks execute on a pluggable :class:`~repro.mapreduce.backends.ExecutionBackend`
selected through :class:`~repro.mapreduce.cluster.ClusterConfig`: serially (the
default, fully deterministic), on a thread pool, or on a process pool for real
CPU parallelism.  Backends return task results in task order and the engine
merges outputs and counters from that order, so all parallelism-sensitive
quantities (replication, balance, query results) are identical across backends —
only wall-clock timings differ.

The engine is fault-tolerant at the task level (DESIGN.md §9): every task is
wrapped in a :class:`~repro.mapreduce.backends.GuardedTask` so a failing
attempt comes back as a :class:`~repro.mapreduce.backends.TaskFailure` value
instead of an exception, is retried with a fresh attempt number up to
``ClusterConfig.max_task_attempts``, and only the winning attempt's outputs
and counters are merged — failed attempts are recorded separately in
:class:`~repro.mapreduce.cluster.JobMetrics`, keeping every user-visible
figure byte-identical to a fault-free run.  A task that exhausts its budget
raises :class:`~repro.mapreduce.backends.TaskFailedError` with the full
attempt history.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .backends import (
    ExecutionBackend,
    GuardedTask,
    MapTask,
    ReduceTask,
    TaskFailedError,
    TaskFailure,
    TaskResult,
    create_backend,
)
from .cancellation import check_cancelled
from .cluster import ClusterConfig, JobMetrics
from .counters import Counters
from .faults import FaultInjectingBackend
from .job import KeyValue, MapReduceJob
from .spill import SpilledPartition, SpillManager
from .transfer import TransferStrategy, create_transfer, record_nbytes

__all__ = ["JobResult", "MapReduceEngine", "create_cluster_backend"]


def create_cluster_backend(cluster: ClusterConfig) -> ExecutionBackend:
    """Build the execution backend a cluster config describes.

    One construction path for everyone (the engine, the plan
    :class:`~repro.plan.ExecutionContext`): backend by name, speculation knobs
    applied, and — when the config carries a fault plan — wrapped in a
    :class:`~repro.mapreduce.faults.FaultInjectingBackend` so injected chaos
    flows through the same retry machinery everywhere.
    """
    backend = create_backend(
        cluster.backend,
        cluster.max_workers,
        speculative_slowdown=cluster.speculative_slowdown,
    )
    if cluster.fault_plan is not None:
        backend = FaultInjectingBackend(backend, cluster.fault_plan)
    return backend


@dataclass
class JobResult:
    """Output pairs and metrics of one executed job."""

    outputs: list[KeyValue]
    metrics: JobMetrics
    reducer_outputs: list[list[KeyValue]] = field(default_factory=list)

    @property
    def counters(self) -> Counters:
        return self.metrics.counters


class _ShuffleSink:
    """Routes intermediate pairs into reduce partitions, spilling under a budget.

    The sink is the streaming half of the shuffle: the map phase feeds it one
    result's outputs at a time and each output list is consumed destructively
    (slots nulled as they are routed) so that spilling actually frees driver
    memory — otherwise the flat output lists would pin every value the
    partitions reference.  ``finish`` returns one payload per reducer: a
    ``defaultdict`` for fully-resident partitions, a
    :class:`~repro.mapreduce.spill.SpilledPartition` once a partition has runs
    on disk.  Freezing/sharing for the backend happens lazily per task in
    ``MapReduceEngine._run_reduce_phase``.
    """

    def __init__(
        self,
        job: MapReduceJob,
        cluster: ClusterConfig,
        spill: SpillManager | None,
        metrics: JobMetrics,
    ) -> None:
        self.job = job
        self.metrics = metrics
        self.budget = cluster.memory_budget_bytes
        self.spill = spill
        self.num_reducers = job.num_reducers or cluster.num_reducers
        self.partitioner = job.make_partitioner()
        self.partitions: list[dict[Any, list[Any]]] = [
            defaultdict(list) for _ in range(self.num_reducers)
        ]
        self.runs: list[list[Any]] = [[] for _ in range(self.num_reducers)]
        self.partition_bytes = [0] * self.num_reducers
        self.resident_bytes = 0

    def route(self, outputs: list[KeyValue]) -> None:
        for index in range(len(outputs)):
            key, value = outputs[index]
            outputs[index] = None  # type: ignore[call-overload]
            reducer_index = self.partitioner.partition(key, self.num_reducers)
            self.partitions[reducer_index][key].append(value)
            self.metrics.shuffle_records += 1
            self.metrics.shuffle_size += self.job.record_size(key, value)
            nbytes = record_nbytes(key, value)
            self.metrics.shuffle_bytes += nbytes
            if self.budget is None:
                continue
            self.partition_bytes[reducer_index] += nbytes
            self.resident_bytes += nbytes
            while self.resident_bytes > self.budget:
                # Spill the largest resident partition; repeat until back under
                # budget (one giant record can only leave its own partition).
                victim = max(range(self.num_reducers), key=self.partition_bytes.__getitem__)
                if self.partition_bytes[victim] <= 0:
                    break
                self.runs[victim].append(self.spill.spill(victim, self.partitions[victim]))
                self.resident_bytes -= self.partition_bytes[victim]
                self.partition_bytes[victim] = 0
                self.partitions[victim] = defaultdict(list)

    def finish(self) -> list[Any]:
        return [
            SpilledPartition(runs=tuple(partition_runs), resident=partition)
            if partition_runs
            else partition
            for partition, partition_runs in zip(self.partitions, self.runs)
        ]


class MapReduceEngine:
    """Executes Map-Reduce jobs on the simulated cluster.

    The engine keeps one execution backend for its lifetime (so thread/process
    pools are reused across jobs); ``close()`` — or using the engine as a
    context manager — releases the backend's workers.  An injected ``backend``
    may be shared between several engines; the engine only closes a backend it
    created itself, the caller stays responsible for an injected one.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        self._owns_backend = backend is None
        self.backend = backend or create_cluster_backend(self.cluster)
        self.transfer = self._resolve_transfer()
        self._spill: SpillManager | None = None
        self.history: list[JobMetrics] = []

    def _resolve_transfer(self) -> TransferStrategy:
        """The transfer strategy this engine moves task inputs with.

        The cluster config wins when it names one; otherwise the backend's
        declared default applies, falling back to the legacy
        ``requires_pickling`` flag so pre-strategy backends keep their exact
        behaviour (``pickle`` across processes, zero-copy ``inline`` at home).
        """
        name = self.cluster.transfer
        if name is None:
            name = getattr(self.backend, "transfer", None)
        if name is None:
            name = "pickle" if self.backend.requires_pickling else "inline"
        return create_transfer(name)

    # ------------------------------------------------------------------ public
    def run(self, job: MapReduceJob, input_pairs: Iterable[KeyValue]) -> JobResult:
        """Run ``job`` over ``input_pairs`` and return outputs plus metrics."""
        check_cancelled()
        started = time.perf_counter()
        metrics = JobMetrics(job_name=job.name)
        records = list(input_pairs)
        if self.cluster.memory_budget_bytes is not None:
            self._spill = SpillManager(job.name)
        segments_before = self.transfer.segments_created
        try:
            partitions = self._run_map_phase(job, records, metrics)
            del records  # splits are dispatched; drop the driver's extra copy
            outputs, per_reducer = self._run_reduce_phase(job, partitions, metrics)
        finally:
            # Job close: runs on success, on TaskFailedError after exhausted
            # retries, and on any crash in between — spill files and shared
            # segments never outlive the job.
            metrics.shm_segments = self.transfer.segments_created - segments_before
            self.transfer.release_job()
            if self._spill is not None:
                metrics.bytes_spilled = self._spill.bytes_spilled
                metrics.spill_runs = self._spill.runs_written
                self._spill.cleanup()
                self._spill = None

        metrics.elapsed_seconds = time.perf_counter() - started
        self.history.append(metrics)
        return JobResult(outputs=outputs, metrics=metrics, reducer_outputs=per_reducer)

    def close(self) -> None:
        """Release the engine's own backend workers (idempotent).

        Safe to call any number of times, including after a job raised (a
        failed job never leaves the backend in an unclosable state — worker
        pools shut down regardless), and the engine stays usable afterwards:
        pool backends lazily recreate their workers on the next job.  Injected
        backends are left running — whoever created them closes them.
        """
        if self._owns_backend:
            self.backend.close()
        self.transfer.close()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------- phases
    def _run_tasks_reliably(
        self,
        job: MapReduceJob,
        tasks: "Sequence[MapTask | ReduceTask]",
        phase: str,
        metrics: JobMetrics,
    ) -> list[TaskResult]:
        """Execute one phase's tasks with retries; results come back in task order.

        Every task is wrapped in a :class:`GuardedTask` carrying its attempt
        number; failed attempts (returned as :class:`TaskFailure` values) are
        recorded in ``metrics.failed_attempts`` — outputs and counters of the
        failed attempt discarded, exactly-once — and the task is re-dispatched
        with the next attempt number until it succeeds or the cluster's
        ``max_task_attempts`` budget is exhausted, which raises a
        :class:`TaskFailedError` carrying the attempt history.  Retry waves
        preserve task order, so merges stay deterministic under any fault
        schedule.  Speculation statistics are drained from the backend into the
        job metrics per phase.
        """
        budget = self.cluster.max_task_attempts
        outcomes: list[TaskResult | None] = [None] * len(tasks)
        attempt = [0] * len(tasks)
        history: dict[int, list[TaskFailure]] = defaultdict(list)
        pending = list(range(len(tasks)))
        spec_launches = self.backend.speculative_launches
        spec_wins = self.backend.speculative_wins
        while pending:
            # Task-boundary cancellation point: a deadline set by the serving
            # layer stops the job before the next wave launches, never mid-task.
            check_cancelled()
            wave = [GuardedTask(task=tasks[index], attempt=attempt[index]) for index in pending]
            retry: list[int] = []
            for index, outcome in zip(pending, self.backend.run_tasks(wave)):
                if isinstance(outcome, TaskFailure):
                    outcome.phase = phase
                    history[index].append(outcome)
                    metrics.failed_attempts.append(outcome)
                    if attempt[index] + 1 >= budget:
                        raise TaskFailedError(
                            job.name, phase, tasks[index].task_id, history[index]
                        )
                    attempt[index] += 1
                    retry.append(index)
                else:
                    outcome.metrics.attempt = attempt[index]
                    outcomes[index] = outcome
            pending = retry
        metrics.speculative_launches += self.backend.speculative_launches - spec_launches
        metrics.speculative_wins += self.backend.speculative_wins - spec_wins
        return outcomes  # type: ignore[return-value] - every slot is filled

    def _run_map_phase(
        self, job: MapReduceJob, records: Sequence[KeyValue], metrics: JobMetrics
    ) -> list[Any]:
        """Run the map tasks and shuffle their outputs into reduce partitions.

        Without a memory budget every task goes out in one wave and the sink
        routes the collected outputs afterwards — the classic barrier.  Under a
        ``ClusterConfig.memory_budget_bytes`` the tasks are dispatched in waves
        of ``backend.parallelism`` and each wave's outputs are routed (and
        possibly spilled) before the next wave launches, so the driver never
        holds more than one wave of unrouted map outputs plus the budgeted
        resident partitions.  Results are consumed in task order either way,
        so outputs, counters and shuffle accounting stay byte-identical.
        """
        splits = self._split(records, self.cluster.num_mappers)
        # The transfer strategy decides the split's form: inline hands tasks
        # the engine's own lists, pickle freezes compact tuples, shm converts
        # columnar values to shared-segment descriptors.
        tasks = [
            MapTask(job=job, task_id=task_id, split=self.transfer.prepare_split(split))
            for task_id, split in enumerate(splits)
        ]
        sink = _ShuffleSink(job, self.cluster, self._spill, metrics)
        if self.cluster.memory_budget_bytes is None:
            wave = max(1, len(tasks))
        else:
            wave = max(1, self.backend.parallelism)
        for start in range(0, len(tasks), wave):
            for result in self._run_tasks_reliably(job, tasks[start : start + wave], "map", metrics):
                metrics.map_tasks.append(result.metrics)
                metrics.counters.merge(result.counters)
                sink.route(result.outputs)
                result.outputs = []  # routed; drop the task's reference
        return sink.finish()

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: list[Any],
        metrics: JobMetrics,
    ) -> tuple[list[KeyValue], list[list[KeyValue]]]:
        tasks = []
        for task_id in range(len(partitions)):
            # Lazy per-task preparation: drop the engine's partition slot
            # before freezing, so the driver never holds both the defaultdict
            # and the frozen/shared copy of more than one partition at a time.
            payload = partitions[task_id]
            partitions[task_id] = None
            tasks.append(
                ReduceTask(
                    job=job,
                    task_id=task_id,
                    partition=self.transfer.prepare_partition(payload),
                )
            )
        outputs: list[KeyValue] = []
        per_reducer: list[list[KeyValue]] = []
        for result in self._run_tasks_reliably(job, tasks, "reduce", metrics):
            metrics.reduce_tasks.append(result.metrics)
            metrics.counters.merge(result.counters)
            outputs.extend(result.outputs)
            per_reducer.append(result.outputs)
        return outputs, per_reducer

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _split(records: Sequence[KeyValue], num_splits: int) -> list[list[KeyValue]]:
        """Round-robin the input into at most ``num_splits`` non-empty splits.

        Fewer records than splits yield one single-record split per record, and
        an empty input yields no splits at all — small streaming batches would
        otherwise dispatch (and, on the process backend, pickle) map tasks that
        carry no work.
        """
        num_splits = min(num_splits, len(records))
        splits: list[list[KeyValue]] = [[] for _ in range(num_splits)]
        for index, record in enumerate(records):
            splits[index % num_splits].append(record)
        return splits
