"""In-process Map-Reduce engine.

This is the execution substrate that stands in for Hadoop (see DESIGN.md §2).  The
engine runs a :class:`~repro.mapreduce.job.MapReduceJob` over an in-memory input,
reproducing the dataflow of a real cluster:

1. the input is split into ``num_mappers`` splits and each split becomes one
   :class:`~repro.mapreduce.backends.MapTask` (fresh mapper instance, per-task
   timing and counters);
2. intermediate pairs are shuffled to ``num_reducers`` partitions according to the
   job's partitioner, counting shuffled records and their estimated size;
3. each partition becomes one :class:`~repro.mapreduce.backends.ReduceTask`
   grouping values by key (per-task timing recorded — the quantity behind the
   paper's "max time reducer" and imbalance plots).

Tasks execute on a pluggable :class:`~repro.mapreduce.backends.ExecutionBackend`
selected through :class:`~repro.mapreduce.cluster.ClusterConfig`: serially (the
default, fully deterministic), on a thread pool, or on a process pool for real
CPU parallelism.  Backends return task results in task order and the engine
merges outputs and counters from that order, so all parallelism-sensitive
quantities (replication, balance, query results) are identical across backends —
only wall-clock timings differ.

The engine is fault-tolerant at the task level (DESIGN.md §9): every task is
wrapped in a :class:`~repro.mapreduce.backends.GuardedTask` so a failing
attempt comes back as a :class:`~repro.mapreduce.backends.TaskFailure` value
instead of an exception, is retried with a fresh attempt number up to
``ClusterConfig.max_task_attempts``, and only the winning attempt's outputs
and counters are merged — failed attempts are recorded separately in
:class:`~repro.mapreduce.cluster.JobMetrics`, keeping every user-visible
figure byte-identical to a fault-free run.  A task that exhausts its budget
raises :class:`~repro.mapreduce.backends.TaskFailedError` with the full
attempt history.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .backends import (
    ExecutionBackend,
    GuardedTask,
    MapTask,
    ReduceTask,
    TaskFailedError,
    TaskFailure,
    TaskResult,
    create_backend,
)
from .cluster import ClusterConfig, JobMetrics
from .counters import Counters
from .faults import FaultInjectingBackend
from .job import KeyValue, MapReduceJob

__all__ = ["JobResult", "MapReduceEngine", "create_cluster_backend"]


def create_cluster_backend(cluster: ClusterConfig) -> ExecutionBackend:
    """Build the execution backend a cluster config describes.

    One construction path for everyone (the engine, the plan
    :class:`~repro.plan.ExecutionContext`): backend by name, speculation knobs
    applied, and — when the config carries a fault plan — wrapped in a
    :class:`~repro.mapreduce.faults.FaultInjectingBackend` so injected chaos
    flows through the same retry machinery everywhere.
    """
    backend = create_backend(
        cluster.backend,
        cluster.max_workers,
        speculative_slowdown=cluster.speculative_slowdown,
    )
    if cluster.fault_plan is not None:
        backend = FaultInjectingBackend(backend, cluster.fault_plan)
    return backend


@dataclass
class JobResult:
    """Output pairs and metrics of one executed job."""

    outputs: list[KeyValue]
    metrics: JobMetrics
    reducer_outputs: list[list[KeyValue]] = field(default_factory=list)

    @property
    def counters(self) -> Counters:
        return self.metrics.counters


class MapReduceEngine:
    """Executes Map-Reduce jobs on the simulated cluster.

    The engine keeps one execution backend for its lifetime (so thread/process
    pools are reused across jobs); ``close()`` — or using the engine as a
    context manager — releases the backend's workers.  An injected ``backend``
    may be shared between several engines; the engine only closes a backend it
    created itself, the caller stays responsible for an injected one.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        self._owns_backend = backend is None
        self.backend = backend or create_cluster_backend(self.cluster)
        self.history: list[JobMetrics] = []

    # ------------------------------------------------------------------ public
    def run(self, job: MapReduceJob, input_pairs: Iterable[KeyValue]) -> JobResult:
        """Run ``job`` over ``input_pairs`` and return outputs plus metrics."""
        started = time.perf_counter()
        metrics = JobMetrics(job_name=job.name)
        records = list(input_pairs)

        intermediate = self._run_map_phase(job, records, metrics)
        partitions = self._shuffle(job, intermediate, metrics)
        outputs, per_reducer = self._run_reduce_phase(job, partitions, metrics)

        metrics.elapsed_seconds = time.perf_counter() - started
        self.history.append(metrics)
        return JobResult(outputs=outputs, metrics=metrics, reducer_outputs=per_reducer)

    def close(self) -> None:
        """Release the engine's own backend workers (idempotent).

        Safe to call any number of times, including after a job raised (a
        failed job never leaves the backend in an unclosable state — worker
        pools shut down regardless), and the engine stays usable afterwards:
        pool backends lazily recreate their workers on the next job.  Injected
        backends are left running — whoever created them closes them.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "MapReduceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------- phases
    def _run_tasks_reliably(
        self,
        job: MapReduceJob,
        tasks: "Sequence[MapTask | ReduceTask]",
        phase: str,
        metrics: JobMetrics,
    ) -> list[TaskResult]:
        """Execute one phase's tasks with retries; results come back in task order.

        Every task is wrapped in a :class:`GuardedTask` carrying its attempt
        number; failed attempts (returned as :class:`TaskFailure` values) are
        recorded in ``metrics.failed_attempts`` — outputs and counters of the
        failed attempt discarded, exactly-once — and the task is re-dispatched
        with the next attempt number until it succeeds or the cluster's
        ``max_task_attempts`` budget is exhausted, which raises a
        :class:`TaskFailedError` carrying the attempt history.  Retry waves
        preserve task order, so merges stay deterministic under any fault
        schedule.  Speculation statistics are drained from the backend into the
        job metrics per phase.
        """
        budget = self.cluster.max_task_attempts
        outcomes: list[TaskResult | None] = [None] * len(tasks)
        attempt = [0] * len(tasks)
        history: dict[int, list[TaskFailure]] = defaultdict(list)
        pending = list(range(len(tasks)))
        spec_launches = self.backend.speculative_launches
        spec_wins = self.backend.speculative_wins
        while pending:
            wave = [GuardedTask(task=tasks[index], attempt=attempt[index]) for index in pending]
            retry: list[int] = []
            for index, outcome in zip(pending, self.backend.run_tasks(wave)):
                if isinstance(outcome, TaskFailure):
                    outcome.phase = phase
                    history[index].append(outcome)
                    metrics.failed_attempts.append(outcome)
                    if attempt[index] + 1 >= budget:
                        raise TaskFailedError(
                            job.name, phase, tasks[index].task_id, history[index]
                        )
                    attempt[index] += 1
                    retry.append(index)
                else:
                    outcome.metrics.attempt = attempt[index]
                    outcomes[index] = outcome
            pending = retry
        metrics.speculative_launches += self.backend.speculative_launches - spec_launches
        metrics.speculative_wins += self.backend.speculative_wins - spec_wins
        return outcomes  # type: ignore[return-value] - every slot is filled

    def _run_map_phase(
        self, job: MapReduceJob, records: Sequence[KeyValue], metrics: JobMetrics
    ) -> list[KeyValue]:
        splits = self._split(records, self.cluster.num_mappers)
        # Zero-copy fast path: only a pickling backend needs the compact tuple
        # copy of each split; serial/thread tasks iterate the engine's lists.
        pickling = self.backend.requires_pickling
        tasks = [
            MapTask(job=job, task_id=task_id, split=tuple(split) if pickling else split)
            for task_id, split in enumerate(splits)
        ]
        intermediate: list[KeyValue] = []
        for result in self._run_tasks_reliably(job, tasks, "map", metrics):
            metrics.map_tasks.append(result.metrics)
            metrics.counters.merge(result.counters)
            intermediate.extend(result.outputs)
        return intermediate

    def _shuffle(
        self, job: MapReduceJob, intermediate: Sequence[KeyValue], metrics: JobMetrics
    ) -> list[dict[Any, list[Any]]]:
        num_reducers = job.num_reducers or self.cluster.num_reducers
        partitioner = job.make_partitioner()
        partitions: list[dict[Any, list[Any]]] = [defaultdict(list) for _ in range(num_reducers)]
        for key, value in intermediate:
            reducer_index = partitioner.partition(key, num_reducers)
            partitions[reducer_index][key].append(value)
            metrics.shuffle_records += 1
            metrics.shuffle_size += job.record_size(key, value)
        if not self.backend.requires_pickling:
            # Zero-copy fast path: reduce tasks read the partitions as built.
            return partitions
        # Freeze to plain dicts: smaller pickles for the process backend.
        return [dict(partition) for partition in partitions]

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Sequence[dict[Any, list[Any]]],
        metrics: JobMetrics,
    ) -> tuple[list[KeyValue], list[list[KeyValue]]]:
        tasks = [
            ReduceTask(job=job, task_id=task_id, partition=partition)
            for task_id, partition in enumerate(partitions)
        ]
        outputs: list[KeyValue] = []
        per_reducer: list[list[KeyValue]] = []
        for result in self._run_tasks_reliably(job, tasks, "reduce", metrics):
            metrics.reduce_tasks.append(result.metrics)
            metrics.counters.merge(result.counters)
            outputs.extend(result.outputs)
            per_reducer.append(result.outputs)
        return outputs, per_reducer

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _split(records: Sequence[KeyValue], num_splits: int) -> list[list[KeyValue]]:
        """Round-robin the input into at most ``num_splits`` non-empty splits.

        Fewer records than splits yield one single-record split per record, and
        an empty input yields no splits at all — small streaming batches would
        otherwise dispatch (and, on the process backend, pickle) map tasks that
        carry no work.
        """
        num_splits = min(num_splits, len(records))
        splits: list[list[KeyValue]] = [[] for _ in range(num_splits)]
        for index, record in enumerate(records):
            splits[index % num_splits].append(record)
        return splits
