"""In-process Map-Reduce engine.

This is the execution substrate that stands in for Hadoop (see DESIGN.md §2).  The
engine runs a :class:`~repro.mapreduce.job.MapReduceJob` over an in-memory input,
reproducing the dataflow of a real cluster:

1. the input is split into ``num_mappers`` splits and each split is mapped by a
   fresh mapper instance (per-task timing recorded);
2. intermediate pairs are shuffled to ``num_reducers`` partitions according to the
   job's partitioner, counting shuffled records and their estimated size;
3. each partition is reduced by a fresh reducer instance, grouping values by key
   (per-task timing recorded — the quantity behind the paper's "max time reducer"
   and imbalance plots).

Execution is sequential and deterministic; all parallelism-sensitive quantities
(replication, balance) are measured rather than simulated with random delays.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .cluster import ClusterConfig, JobMetrics, TaskMetrics
from .counters import Counters
from .job import KeyValue, MapReduceJob

__all__ = ["JobResult", "MapReduceEngine"]


@dataclass
class JobResult:
    """Output pairs and metrics of one executed job."""

    outputs: list[KeyValue]
    metrics: JobMetrics
    reducer_outputs: list[list[KeyValue]] = field(default_factory=list)

    @property
    def counters(self) -> Counters:
        return self.metrics.counters


class MapReduceEngine:
    """Executes Map-Reduce jobs on the simulated cluster."""

    def __init__(self, cluster: ClusterConfig | None = None) -> None:
        self.cluster = cluster or ClusterConfig()
        self.history: list[JobMetrics] = []

    # ------------------------------------------------------------------ public
    def run(self, job: MapReduceJob, input_pairs: Iterable[KeyValue]) -> JobResult:
        """Run ``job`` over ``input_pairs`` and return outputs plus metrics."""
        started = time.perf_counter()
        metrics = JobMetrics(job_name=job.name)
        records = list(input_pairs)

        intermediate = self._run_map_phase(job, records, metrics)
        partitions = self._shuffle(job, intermediate, metrics)
        outputs, per_reducer = self._run_reduce_phase(job, partitions, metrics)

        metrics.elapsed_seconds = time.perf_counter() - started
        self.history.append(metrics)
        return JobResult(outputs=outputs, metrics=metrics, reducer_outputs=per_reducer)

    # ------------------------------------------------------------------- phases
    def _run_map_phase(
        self, job: MapReduceJob, records: Sequence[KeyValue], metrics: JobMetrics
    ) -> list[KeyValue]:
        splits = self._split(records, self.cluster.num_mappers)
        intermediate: list[KeyValue] = []
        for task_id, split in enumerate(splits):
            mapper = job.mapper_factory()
            task_counters = Counters()
            mapper.setup(task_counters)
            task = TaskMetrics(task_id=task_id, input_records=len(split))
            task_start = time.perf_counter()
            for key, value in split:
                for out_key, out_value in mapper.map(key, value):
                    intermediate.append((out_key, out_value))
                    task.output_records += 1
            task.elapsed_seconds = time.perf_counter() - task_start
            metrics.map_tasks.append(task)
            metrics.counters.merge(task_counters)
        return intermediate

    def _shuffle(
        self, job: MapReduceJob, intermediate: Sequence[KeyValue], metrics: JobMetrics
    ) -> list[dict[Any, list[Any]]]:
        num_reducers = job.num_reducers or self.cluster.num_reducers
        partitioner = job.make_partitioner()
        partitions: list[dict[Any, list[Any]]] = [defaultdict(list) for _ in range(num_reducers)]
        for key, value in intermediate:
            reducer_index = partitioner.partition(key, num_reducers)
            partitions[reducer_index][key].append(value)
            metrics.shuffle_records += 1
            metrics.shuffle_size += job.record_size(key, value)
        return partitions

    def _run_reduce_phase(
        self,
        job: MapReduceJob,
        partitions: Sequence[dict[Any, list[Any]]],
        metrics: JobMetrics,
    ) -> tuple[list[KeyValue], list[list[KeyValue]]]:
        outputs: list[KeyValue] = []
        per_reducer: list[list[KeyValue]] = []
        for task_id, partition in enumerate(partitions):
            reducer = job.reducer_factory()
            task_counters = Counters()
            reducer.setup(task_counters)
            task = TaskMetrics(
                task_id=task_id,
                input_records=sum(len(values) for values in partition.values()),
            )
            reducer_output: list[KeyValue] = []
            task_start = time.perf_counter()
            for key in sorted(partition.keys(), key=_sort_key):
                for out in reducer.reduce(key, partition[key]):
                    reducer_output.append(out)
            for out in reducer.cleanup():
                reducer_output.append(out)
            task.elapsed_seconds = time.perf_counter() - task_start
            task.output_records = len(reducer_output)
            metrics.reduce_tasks.append(task)
            metrics.counters.merge(task_counters)
            outputs.extend(reducer_output)
            per_reducer.append(reducer_output)
        return outputs, per_reducer

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _split(records: Sequence[KeyValue], num_splits: int) -> list[list[KeyValue]]:
        """Round-robin the input into ``num_splits`` splits (empty splits allowed)."""
        splits: list[list[KeyValue]] = [[] for _ in range(num_splits)]
        for index, record in enumerate(records):
            splits[index % num_splits].append(record)
        return splits


def _sort_key(key: Any) -> Any:
    """Deterministic ordering of heterogeneous keys inside a partition."""
    return (str(type(key)), repr(key))
