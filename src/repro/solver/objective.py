"""Objective functions for the bound solver.

The Bounds Problem of Section 3.3 maximises (or minimises) the aggregate score
``S`` of a query over the endpoint boxes of a bucket combination.  The objective is
represented here as a list of *edge objectives* -- one renamed scored predicate per
query edge -- combined by the query's monotone aggregation function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..temporal.aggregation import Aggregation
from ..temporal.interval import Interval
from ..temporal.predicates import ScoredPredicate
from ..temporal.terms import EndpointVar
from .domain import DomainSet

__all__ = ["EdgeObjective", "AggregateObjective"]


@dataclass(frozen=True)
class EdgeObjective:
    """One query edge's scored predicate, renamed onto the edge's vertex names."""

    source: str
    target: str
    predicate: ScoredPredicate

    @classmethod
    def from_edge(cls, source: str, target: str, predicate: ScoredPredicate) -> "EdgeObjective":
        """Rename the canonical ``x``/``y`` predicate onto the edge vertices."""
        return cls(source, target, predicate.rename(source, target))

    def evaluate(self, assignment: Mapping[str, Interval]) -> float:
        """Concrete edge score for an assignment covering both vertices."""
        scores = [c.score(assignment, self.predicate.params) for c in self.predicate.comparisons]
        return min(scores)

    def score_range(
        self, domains: Mapping[EndpointVar, tuple[float, float]]
    ) -> tuple[float, float]:
        """Relaxed (per-conjunct exact) score range over endpoint boxes."""
        return self.predicate.score_range(domains)


@dataclass(frozen=True)
class AggregateObjective:
    """Aggregate score of all query edges, the objective of the Bounds Problem."""

    edges: tuple[EdgeObjective, ...]
    aggregation: Aggregation

    def evaluate(self, assignment: Mapping[str, Interval]) -> float:
        """Aggregate score at a concrete assignment (a feasible objective value)."""
        return self.aggregation.combine([edge.evaluate(assignment) for edge in self.edges])

    def relaxed_range(self, domains: DomainSet) -> tuple[float, float]:
        """Box relaxation of the aggregate score.

        Each edge's range is exact per conjunct but edges are bounded independently,
        so shared variables are not coupled: the result is a valid outer bound
        (identical in spirit to the paper's *loose* bounds).
        """
        endpoint_domains = domains.endpoint_domains()
        lows: list[float] = []
        highs: list[float] = []
        for edge in self.edges:
            lo, hi = edge.score_range(endpoint_domains)
            lows.append(lo)
            highs.append(hi)
        return self.aggregation.lower_bound(lows), self.aggregation.upper_bound(highs)

    def edge_ranges(self, domains: DomainSet) -> list[tuple[float, float]]:
        """Per-edge relaxed score ranges (used by the loose strategy and DTB)."""
        endpoint_domains = domains.endpoint_domains()
        return [edge.score_range(endpoint_domains) for edge in self.edges]

    def combine(self, edge_bounds: Sequence[float]) -> float:
        """Aggregate already-computed per-edge bounds (monotone combination)."""
        return self.aggregation.combine(list(edge_bounds))
