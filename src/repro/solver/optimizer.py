"""Bound solver: analytical pairwise bounds and branch-and-bound joint bounds.

The paper delegates the Bounds Problem of Section 3.3 to the Choco constraint
solver.  This module is the substitute substrate: every scored predicate is a
``min`` of piecewise-linear comparators applied to linear endpoint terms, so

* for a *single edge* (a pair of buckets) the exact score range follows from
  interval arithmetic on the linear difference term plus the closed-form comparator
  image -- this is what the ``loose`` strategy needs;
* for a *joint* bucket combination (brute-force / second phase of two-phase) the
  coupling of shared variables across edges is recovered by branch-and-bound: the
  box relaxation provides valid outer bounds, representative feasible points
  provide inner bounds, and boxes are split until the gap closes or an iteration
  budget is exhausted.  Outer bounds are always reported, so the result is safe for
  pruning regardless of the budget.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .domain import DomainSet
from .objective import AggregateObjective

__all__ = ["SolverStats", "BranchAndBoundSolver"]


@dataclass
class SolverStats:
    """Counters describing the work done by the solver (reported by benchmarks)."""

    calls: int = 0
    nodes_explored: int = 0
    evaluations: int = 0

    def merge(self, other: "SolverStats") -> None:
        self.calls += other.calls
        self.nodes_explored += other.nodes_explored
        self.evaluations += other.evaluations


@dataclass
class BranchAndBoundSolver:
    """Computes score upper/lower bounds for bucket combinations.

    Parameters
    ----------
    tolerance:
        Stop refining a bound once the gap between the outer (relaxed) bound and
        the best feasible value found is below this threshold.
    max_nodes:
        Budget of branch-and-bound nodes per bound computation.  The returned bound
        is valid for any budget; a larger budget only tightens it.
    """

    tolerance: float = 1e-2
    max_nodes: int = 64
    stats: SolverStats = field(default_factory=SolverStats)

    # ------------------------------------------------------------------ public
    def bounds(self, objective: AggregateObjective, domains: DomainSet) -> tuple[float, float]:
        """``(LB, UB)`` of the aggregate score over the bucket combination.

        ``UB`` upper-bounds the maximum achievable score and ``LB`` lower-bounds the
        minimum achievable score, matching Definition 1 of the paper.
        """
        upper = self._optimize(objective, domains, maximize=True)
        lower = self._optimize(objective, domains, maximize=False)
        return lower, upper

    def upper_bound(self, objective: AggregateObjective, domains: DomainSet) -> float:
        """Upper bound on the maximum aggregate score over the combination."""
        return self._optimize(objective, domains, maximize=True)

    def lower_bound(self, objective: AggregateObjective, domains: DomainSet) -> float:
        """Lower bound on the minimum aggregate score over the combination."""
        return self._optimize(objective, domains, maximize=False)

    def relaxed_bounds(
        self, objective: AggregateObjective, domains: DomainSet
    ) -> tuple[float, float]:
        """Box-relaxation bounds without branching (the loose strategy's bounds)."""
        self.stats.calls += 1
        self.stats.evaluations += 1
        return objective.relaxed_range(domains)

    # ----------------------------------------------------------------- internal
    def _optimize(
        self, objective: AggregateObjective, domains: DomainSet, maximize: bool
    ) -> float:
        """Branch-and-bound outer bound of max (or min) of the objective."""
        self.stats.calls += 1
        sign = -1.0 if maximize else 1.0
        counter = itertools.count()

        relaxed_lo, relaxed_hi = objective.relaxed_range(domains)
        outer = relaxed_hi if maximize else relaxed_lo
        incumbent = objective.evaluate(domains.sample_assignment())
        self.stats.evaluations += 2

        # Priority queue ordered by most promising outer bound.
        heap: list[tuple[float, int, DomainSet]] = [(sign * outer, next(counter), domains)]
        best_outer = outer
        nodes = 0
        while heap and nodes < self.max_nodes:
            nodes += 1
            self.stats.nodes_explored += 1
            neg_outer, _, box = heapq.heappop(heap)
            box_outer = sign * neg_outer if maximize else neg_outer
            # Remaining heap entries are no better than this one; track the global
            # outer bound as max/min over the frontier plus the incumbent side.
            frontier = [box_outer] + [
                (sign * entry[0] if maximize else entry[0]) for entry in heap
            ]
            best_outer = max(frontier) if maximize else min(frontier)
            gap = (best_outer - incumbent) if maximize else (incumbent - best_outer)
            if gap <= self.tolerance:
                return best_outer

            var, endpoint, width = box.widest()
            if width <= 1e-9:
                continue
            for child in box.split(var, endpoint):
                child_lo, child_hi = objective.relaxed_range(child)
                child_outer = child_hi if maximize else child_lo
                value = objective.evaluate(child.sample_assignment())
                self.stats.evaluations += 2
                if maximize:
                    incumbent = max(incumbent, value)
                    if child_outer > incumbent + self.tolerance:
                        heapq.heappush(heap, (sign * child_outer, next(counter), child))
                    best_outer = max(best_outer, child_outer) if not heap else best_outer
                else:
                    incumbent = min(incumbent, value)
                    if child_outer < incumbent - self.tolerance:
                        heapq.heappush(heap, (child_outer, next(counter), child))

        if not heap:
            # Search space exhausted: the incumbent is attained, bounds are tight.
            return incumbent
        # Budget exhausted: report the loosest remaining outer bound (still valid).
        remaining = [
            (sign * entry[0] if maximize else entry[0]) for entry in heap
        ] + [incumbent]
        return max(remaining) if maximize else min(remaining)
