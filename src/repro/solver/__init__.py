"""Bound solver substrate: box domains, objectives and branch-and-bound bounds.

This package replaces the Choco constraint-programming solver the paper uses to
solve the Bounds Problem (Section 3.3); see DESIGN.md for the substitution
rationale.
"""

from .domain import DomainSet, VariableBox
from .objective import AggregateObjective, EdgeObjective
from .optimizer import BranchAndBoundSolver, SolverStats

__all__ = [
    "DomainSet",
    "VariableBox",
    "AggregateObjective",
    "EdgeObjective",
    "BranchAndBoundSolver",
    "SolverStats",
]
