"""Box domains for the bound solver.

A *bucket* of the statistics phase confines an interval's start to one granule and
its end to another.  For the bound solver this becomes a :class:`VariableBox`: an
axis-aligned box over the two endpoints of one query variable.  A
:class:`DomainSet` gathers the boxes of every variable of a bucket combination and
exposes the flat ``EndpointVar -> (low, high)`` mapping that linear terms and
comparators consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..temporal.interval import Interval
from ..temporal.terms import EndpointVar

__all__ = ["VariableBox", "DomainSet"]


@dataclass(frozen=True, slots=True)
class VariableBox:
    """Ranges of the start and end endpoints of one query variable.

    The box is *interval-feasible* when it contains at least one point with
    ``start <= end``, i.e. ``start_low <= end_high``.  Buckets produced from real
    data always satisfy this.
    """

    start_low: float
    start_high: float
    end_low: float
    end_high: float

    def __post_init__(self) -> None:
        if self.start_low > self.start_high or self.end_low > self.end_high:
            raise ValueError("malformed variable box")

    @property
    def is_feasible(self) -> bool:
        """True when the box admits an interval with ``start <= end``."""
        return self.start_low <= self.end_high

    @property
    def start_range(self) -> tuple[float, float]:
        return (self.start_low, self.start_high)

    @property
    def end_range(self) -> tuple[float, float]:
        return (self.end_low, self.end_high)

    def width(self, endpoint: str) -> float:
        """Width of the start or end range."""
        if endpoint == "start":
            return self.start_high - self.start_low
        return self.end_high - self.end_low

    def split(self, endpoint: str) -> tuple["VariableBox", "VariableBox"]:
        """Halve the box along one endpoint axis."""
        if endpoint == "start":
            mid = (self.start_low + self.start_high) / 2.0
            return (
                VariableBox(self.start_low, mid, self.end_low, self.end_high),
                VariableBox(mid, self.start_high, self.end_low, self.end_high),
            )
        mid = (self.end_low + self.end_high) / 2.0
        return (
            VariableBox(self.start_low, self.start_high, self.end_low, mid),
            VariableBox(self.start_low, self.start_high, mid, self.end_high),
        )

    def sample_interval(self, uid: int = -1) -> Interval:
        """A representative interval inside the box, respecting ``start <= end``.

        Used to obtain feasible objective values during branch-and-bound.  The
        midpoints are used when they already form a valid interval; otherwise the
        point is pulled onto the ``start <= end`` boundary.
        """
        start = (self.start_low + self.start_high) / 2.0
        end = (self.end_low + self.end_high) / 2.0
        if end < start:
            # Pull towards a feasible corner; feasibility guarantees overlap exists.
            start = min(start, self.end_high)
            end = max(end, start)
        return Interval(uid, start, end)

    @classmethod
    def from_granules(
        cls, start_granule: tuple[float, float], end_granule: tuple[float, float]
    ) -> "VariableBox":
        """Box for a bucket: start confined to one granule, end to another."""
        return cls(start_granule[0], start_granule[1], end_granule[0], end_granule[1])


@dataclass(frozen=True)
class DomainSet:
    """Boxes for every query variable of a bucket combination."""

    boxes: tuple[tuple[str, VariableBox], ...]

    @classmethod
    def from_mapping(cls, boxes: Mapping[str, VariableBox]) -> "DomainSet":
        return cls(tuple(sorted(boxes.items())))

    def as_mapping(self) -> dict[str, VariableBox]:
        return dict(self.boxes)

    def variables(self) -> list[str]:
        return [var for var, _ in self.boxes]

    def box_of(self, var: str) -> VariableBox:
        for name, box in self.boxes:
            if name == var:
                return box
        raise KeyError(var)

    def endpoint_domains(self) -> dict[EndpointVar, tuple[float, float]]:
        """Flat mapping consumed by linear-term interval arithmetic."""
        domains: dict[EndpointVar, tuple[float, float]] = {}
        for var, box in self.boxes:
            domains[EndpointVar(var, "start")] = box.start_range
            domains[EndpointVar(var, "end")] = box.end_range
        return domains

    def sample_assignment(self) -> dict[str, Interval]:
        """A feasible assignment of one representative interval per variable."""
        return {var: box.sample_interval() for var, box in self.boxes}

    def widest(self) -> tuple[str, str, float]:
        """Variable and endpoint with the widest range (the split target)."""
        best: tuple[str, str, float] | None = None
        for var, box in self.boxes:
            for endpoint in ("start", "end"):
                width = box.width(endpoint)
                if best is None or width > best[2]:
                    best = (var, endpoint, width)
        assert best is not None
        return best

    def split(self, var: str, endpoint: str) -> Iterator["DomainSet"]:
        """Split one variable's box along one endpoint axis; yields the two halves."""
        mapping = self.as_mapping()
        low_box, high_box = mapping[var].split(endpoint)
        for half in (low_box, high_box):
            new_mapping = dict(mapping)
            new_mapping[var] = half
            candidate = DomainSet.from_mapping(new_mapping)
            if half.is_feasible:
                yield candidate
