"""A small in-memory R-tree over (start, end) points.

The paper's reducers keep their input intervals in R-trees and issue score-threshold
lookups against them.  Intervals are indexed as 2-D points ``(start, end)``; queries
are axis-aligned boxes.  The tree is bulk-loaded with the Sort-Tile-Recursive (STR)
packing algorithm, which is simple, produces well-filled nodes and needs no
insertion logic (reducer inputs are static).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..temporal.interval import Interval

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    max_x: float
    min_y: float
    max_y: float

    def intersects(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    @staticmethod
    def everything() -> "Rect":
        inf = float("inf")
        return Rect(-inf, inf, -inf, inf)

    @staticmethod
    def bounding(rects: Sequence["Rect"]) -> "Rect":
        return Rect(
            min(r.min_x for r in rects),
            max(r.max_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_y for r in rects),
        )


@dataclass(slots=True)
class _Node:
    """An R-tree node: leaves hold intervals, inner nodes hold children."""

    rect: Rect
    children: list["_Node"]
    entries: list[Interval]

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTree:
    """Static STR-packed R-tree over intervals viewed as (start, end) points."""

    def __init__(self, intervals: Iterable[Interval], leaf_capacity: int = 32) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        self._leaf_capacity = leaf_capacity
        items = list(intervals)
        self._size = len(items)
        self._root = self._bulk_load(items) if items else None

    def __len__(self) -> int:
        return self._size

    # ---------------------------------------------------------------- building
    def _bulk_load(self, items: list[Interval]) -> _Node:
        leaves = self._pack_leaves(items)
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_level(nodes)
        return nodes[0]

    def _pack_leaves(self, items: list[Interval]) -> list[_Node]:
        capacity = self._leaf_capacity
        count = len(items)
        num_leaves = math.ceil(count / capacity)
        num_slabs = max(1, math.ceil(math.sqrt(num_leaves)))
        slab_size = math.ceil(count / num_slabs)
        ordered = sorted(items, key=lambda x: (x.start, x.end))
        leaves: list[_Node] = []
        for slab_index in range(num_slabs):
            slab = ordered[slab_index * slab_size:(slab_index + 1) * slab_size]
            slab.sort(key=lambda x: (x.end, x.start))
            for offset in range(0, len(slab), capacity):
                chunk = slab[offset:offset + capacity]
                rect = Rect(
                    min(x.start for x in chunk),
                    max(x.start for x in chunk),
                    min(x.end for x in chunk),
                    max(x.end for x in chunk),
                )
                leaves.append(_Node(rect, [], chunk))
        return leaves

    def _pack_level(self, nodes: list[_Node]) -> list[_Node]:
        capacity = self._leaf_capacity
        count = len(nodes)
        num_parents = math.ceil(count / capacity)
        num_slabs = max(1, math.ceil(math.sqrt(num_parents)))
        slab_size = math.ceil(count / num_slabs)
        ordered = sorted(nodes, key=lambda n: (n.rect.min_x, n.rect.min_y))
        parents: list[_Node] = []
        for slab_index in range(num_slabs):
            slab = ordered[slab_index * slab_size:(slab_index + 1) * slab_size]
            slab.sort(key=lambda n: (n.rect.min_y, n.rect.min_x))
            for offset in range(0, len(slab), capacity):
                chunk = slab[offset:offset + capacity]
                rect = Rect.bounding([n.rect for n in chunk])
                parents.append(_Node(rect, chunk, []))
        return parents

    # ---------------------------------------------------------------- querying
    def query(self, box: Rect) -> list[Interval]:
        """All indexed intervals whose (start, end) point lies inside ``box``."""
        if self._root is None:
            return []
        result: list[Interval] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(box):
                continue
            if node.is_leaf:
                for interval in node.entries:
                    if box.contains_point(interval.start, interval.end):
                        result.append(interval)
            else:
                stack.extend(node.children)
        return result

    def all(self) -> list[Interval]:
        """All indexed intervals (no filtering)."""
        return self.query(Rect.everything())
