"""Score-threshold interval lookups.

The local join of TKIJ repeatedly asks: *given an interval ``x_i`` and a score
value ``v``, return the intervals ``x_j`` with ``s-p(x_i, x_j) >= v``* (Section 4,
"Distributed join processing").  This module translates such a request into an
axis-aligned box over the (start, end) plane of the sought interval and answers it
with the :class:`~repro.index.rtree.RTree`.

The translation uses the closed form of the comparators: a comparison scores at
least ``v`` iff its linear difference term lies in a derivable range.  Comparisons
whose difference involves both endpoints of the target variable (e.g. the length
comparison of ``sparks``) cannot be boxed and are left to the exact residual
filter, so the box query always returns a superset of the true candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..temporal.comparators import ComparatorParams
from ..temporal.interval import Interval
from ..temporal.predicates import ScoredPredicate
from .rtree import Rect, RTree

__all__ = [
    "threshold_difference_range",
    "threshold_box",
    "box_window",
    "CompiledPredicateQuery",
    "ThresholdIndex",
]


def threshold_difference_range(
    kind: str, params: ComparatorParams, threshold: float
) -> tuple[float, float]:
    """Range of the difference ``d = left - right`` for which the comparator >= threshold.

    For thresholds at or below zero every difference qualifies; thresholds above one
    are unsatisfiable and yield an empty (inverted) range, which callers treat as
    "no candidates".
    """
    inf = float("inf")
    if threshold <= 0.0:
        return (-inf, inf)
    if threshold > 1.0:
        return (inf, -inf)
    if kind == "equals":
        slack = params.lam + params.rho * (1.0 - threshold)
        return (-slack, slack)
    # greater
    if params.rho == 0.0:
        return (params.lam, inf)
    return (params.lam + params.rho * threshold, inf)


def box_window(
    box: Rect, starts_sorted: np.ndarray, ends_sorted: np.ndarray
) -> tuple[tuple[int, int], tuple[int, int]]:
    """Translate a threshold box into half-open windows over sorted endpoints.

    Returns ``((s_lo, s_hi), (e_lo, e_hi))``: the slice of ``starts_sorted``
    holding exactly the values with ``box.min_x <= start <= box.max_x`` and the
    slice of ``ends_sorted`` holding exactly ``box.min_y <= end <= box.max_y``.
    ``searchsorted(..., side="left")`` on the lower bound is the first index
    with ``value >= bound`` and ``side="right"`` on the upper bound is the
    first index with ``value > bound`` — together the closed-interval test of
    :func:`repro.columnar.box_mask`, so a window is the box-mask candidate set
    of one dimension without touching the other ``n - window`` rows.
    """
    s_lo = int(np.searchsorted(starts_sorted, box.min_x, side="left"))
    s_hi = int(np.searchsorted(starts_sorted, box.max_x, side="right"))
    e_lo = int(np.searchsorted(ends_sorted, box.min_y, side="left"))
    e_hi = int(np.searchsorted(ends_sorted, box.max_y, side="right"))
    return (s_lo, s_hi), (e_lo, e_hi)


class CompiledPredicateQuery:
    """Pre-analysed threshold-box computation for one (predicate, fixed var, target var).

    Splitting every comparison's linear difference into fixed-variable and
    target-variable coefficients once lets the hot path compute the box for a given
    fixed interval and threshold with plain arithmetic.
    """

    def __init__(self, predicate: ScoredPredicate, fixed_var: str, target_var: str) -> None:
        self.predicate = predicate
        self.fixed_var = fixed_var
        self.target_var = target_var
        self._comparisons: list[tuple[str, ComparatorParams, float, float, float, float, float]] = []
        for comparison in predicate.comparisons:
            diff = comparison.left - comparison.right
            fixed_start = fixed_end = target_start = target_end = 0.0
            for ev, coeff in diff.coefficients:
                if ev.var == fixed_var:
                    if ev.endpoint == "start":
                        fixed_start += coeff
                    else:
                        fixed_end += coeff
                elif ev.var == target_var:
                    if ev.endpoint == "start":
                        target_start += coeff
                    else:
                        target_end += coeff
                else:
                    raise ValueError(
                        f"comparison references variable {ev.var!r}, expected only "
                        f"{fixed_var!r} and {target_var!r}"
                    )
            params = comparison.comparator_params(predicate.params)
            self._comparisons.append(
                (comparison.kind, params, fixed_start, fixed_end,
                 target_start, target_end, diff.constant)
            )

    def box(self, fixed_interval: Interval, threshold: float) -> Rect | None:
        """Bounding box of target intervals whose score can reach ``threshold``.

        Returns ``None`` when no interval can qualify.  The box is a superset:
        callers must still evaluate the exact score.
        """
        inf = float("inf")
        min_x, max_x = -inf, inf
        min_y, max_y = -inf, inf
        for kind, params, f_start, f_end, a_start, a_end, base in self._comparisons:
            d_lo, d_hi = threshold_difference_range(kind, params, threshold)
            if d_lo > d_hi:
                return None
            const = base + f_start * fixed_interval.start + f_end * fixed_interval.end
            if a_start != 0.0 and a_end != 0.0:
                # Not axis-aligned (e.g. a length comparison): handled by exact filtering.
                continue
            if a_start == 0.0 and a_end == 0.0:
                # Constant difference: either always satisfiable or never.
                if not (d_lo <= const <= d_hi):
                    return None
                continue
            coeff = a_start if a_start != 0.0 else a_end
            lo = (d_lo - const) / coeff
            hi = (d_hi - const) / coeff
            if coeff < 0:
                lo, hi = hi, lo
            if a_start != 0.0:
                min_x, max_x = max(min_x, lo), min(max_x, hi)
            else:
                min_y, max_y = max(min_y, lo), min(max_y, hi)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, max_x, min_y, max_y)


def threshold_box(
    predicate: ScoredPredicate,
    fixed_var: str,
    fixed_interval: Interval,
    target_var: str,
    threshold: float,
) -> Rect | None:
    """Bounding box of target intervals whose predicate score can reach ``threshold``.

    Convenience wrapper over :class:`CompiledPredicateQuery` (which callers on the
    hot path should build once and reuse).
    """
    return CompiledPredicateQuery(predicate, fixed_var, target_var).box(
        fixed_interval, threshold
    )


@dataclass
class ThresholdIndex:
    """An R-tree of intervals answering score-threshold lookups for one variable.

    The index is built once per (reducer, bucket) and queried with a predicate, a
    fixed partner interval and a threshold.  ``exact=True`` additionally filters
    candidates with the true predicate score.

    Query results are returned in the insertion order of the indexed intervals,
    not in tree-traversal order: the local join's pruning thresholds evolve with
    the processing order, so a deterministic order is what makes the scalar and
    vector kernels (and all execution backends) enumerate identical tuples.
    """

    tree: RTree
    positions: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, intervals: Iterable[Interval], leaf_capacity: int = 32) -> "ThresholdIndex":
        rows = list(intervals)
        positions = {interval.uid: position for position, interval in enumerate(rows)}
        return cls(RTree(rows, leaf_capacity=leaf_capacity), positions)

    def __len__(self) -> int:
        return len(self.tree)

    def candidates_compiled(
        self,
        query: CompiledPredicateQuery,
        fixed_interval: Interval,
        threshold: float,
    ) -> list[Interval]:
        """Intervals whose score against ``fixed_interval`` may reach ``threshold``.

        Hot-path variant taking a pre-built :class:`CompiledPredicateQuery`.
        """
        box = query.box(fixed_interval, threshold)
        if box is None:
            return []
        found = self.tree.query(box)
        if self.positions:
            found.sort(key=lambda interval: self.positions[interval.uid])
        return found

    def candidates(
        self,
        predicate: ScoredPredicate,
        fixed_var: str,
        fixed_interval: Interval,
        target_var: str,
        threshold: float,
        exact: bool = False,
    ) -> list[Interval]:
        """Intervals whose predicate score against ``fixed_interval`` may reach ``threshold``."""
        box = threshold_box(predicate, fixed_var, fixed_interval, target_var, threshold)
        if box is None:
            return []
        found = self.tree.query(box)
        if self.positions:
            found.sort(key=lambda interval: self.positions[interval.uid])
        if not exact:
            return found
        return [
            candidate
            for candidate in found
            if _exact_score(predicate, fixed_var, fixed_interval, target_var, candidate)
            >= threshold
        ]

    def all(self) -> list[Interval]:
        """Every indexed interval."""
        return self.tree.all()


def _exact_score(
    predicate: ScoredPredicate,
    fixed_var: str,
    fixed_interval: Interval,
    target_var: str,
    candidate: Interval,
) -> float:
    assignment = {fixed_var: fixed_interval, target_var: candidate}
    return min(c.score(assignment, predicate.params) for c in predicate.comparisons)
