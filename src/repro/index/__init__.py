"""Spatial index substrate: an STR-packed R-tree and score-threshold lookups."""

from .interval_index import (
    CompiledPredicateQuery,
    ThresholdIndex,
    box_window,
    threshold_box,
    threshold_difference_range,
)
from .rtree import Rect, RTree

__all__ = [
    "CompiledPredicateQuery",
    "ThresholdIndex",
    "box_window",
    "threshold_box",
    "threshold_difference_range",
    "Rect",
    "RTree",
]
