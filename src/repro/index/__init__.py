"""Spatial index substrate: an STR-packed R-tree and score-threshold lookups."""

from .interval_index import (
    CompiledPredicateQuery,
    ThresholdIndex,
    threshold_box,
    threshold_difference_range,
)
from .rtree import Rect, RTree

__all__ = [
    "CompiledPredicateQuery",
    "ThresholdIndex",
    "threshold_box",
    "threshold_difference_range",
    "Rect",
    "RTree",
]
