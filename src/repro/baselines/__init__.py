"""Baselines: naive exact evaluation, All-Matrix and RCCIS Boolean interval joins."""

from .allmatrix import AllMatrixConfig, AllMatrixJoin
from .common import BaselineResult
from .naive import all_pair_scores, naive_boolean_matches, naive_top_k
from .rccis import RCCISConfig, RCCISJoin

__all__ = [
    "AllMatrixConfig",
    "AllMatrixJoin",
    "BaselineResult",
    "all_pair_scores",
    "naive_boolean_matches",
    "naive_top_k",
    "RCCISConfig",
    "RCCISJoin",
]
