"""Baselines: naive exact evaluation, All-Matrix and RCCIS Boolean interval joins."""

from .allmatrix import AllMatrixConfig, AllMatrixJoin
from .common import BaselineResult, boolean_query, compile_boolean_checker, top_k_matches
from .naive import all_pair_scores, naive_boolean_matches, naive_top_k
from .rccis import RCCISConfig, RCCISJoin

__all__ = [
    "AllMatrixConfig",
    "AllMatrixJoin",
    "BaselineResult",
    "boolean_query",
    "compile_boolean_checker",
    "top_k_matches",
    "all_pair_scores",
    "naive_boolean_matches",
    "naive_top_k",
    "RCCISConfig",
    "RCCISJoin",
]
