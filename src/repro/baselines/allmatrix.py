"""All-Matrix: the Boolean sequence-join baseline of Chawda et al. (EDBT 2014).

All-Matrix targets *sequence* queries (``before``-style predicates) where some
replication is unavoidable: each collection is range-partitioned into ``p``
partitions and one reducer is created per feasible n-tuple of partitions.  Every
interval is replicated to every reducer whose coordinate for its vertex matches the
interval's partition, which is why the baseline's shuffle cost — and therefore its
running time — grows steadily with the collection size (the behaviour Figure 11a
contrasts with TKIJ).

Following the paper's experimental protocol (Section 4.2.5), the baseline evaluates
the *Boolean* interpretation of the query's predicates, each reducer stops as soon
as it has found ``k`` results, and a final merge returns ``k`` of them (all with
score 1.0).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Iterator

from ..mapreduce import (
    ClusterConfig,
    ExecutionBackend,
    FirstElementPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
)
from ..query.graph import ResultTuple, RTJQuery
from ..solver.domain import DomainSet, VariableBox
from ..solver.objective import EdgeObjective
from ..temporal.comparators import PredicateParams
from .common import (
    BaselineResult,
    boolean_query,
    compile_boolean_checker,
    iter_batch_matches,
    top_k_matches,
)

__all__ = ["AllMatrixConfig", "AllMatrixJoin"]


@dataclass(frozen=True)
class AllMatrixConfig:
    """Knobs of the All-Matrix baseline."""

    num_partitions: int = 4
    boolean_params: PredicateParams = field(default_factory=PredicateParams.boolean)


def _partition_index(bounds: list[tuple[float, float]], start: float) -> int:
    """Index of the start-time partition containing ``start`` (clamped to the last)."""
    for index, (low, high) in enumerate(bounds):
        if low <= start <= high:
            return index
    return len(bounds) - 1


class _AllMatrixMapper(Mapper):
    """Replicates each interval to every reducer tuple matching its partition."""

    def __init__(self, partitions, reducers_by_vertex_partition) -> None:
        self._partitions = partitions
        self._reducers_by_vertex_partition = reducers_by_vertex_partition

    def map(self, key, value):
        vertex, interval = key, value
        partition = _partition_index(self._partitions[vertex], interval.start)
        for reducer_id in self._reducers_by_vertex_partition.get((vertex, partition), ()):
            self.counters.increment("allmatrix.intervals_shuffled")
            yield (reducer_id, vertex), interval


class _AllMatrixReducer(Reducer):
    """Boolean join over the reducer's local partitions, capped at k.

    The innermost pool is scored as one columnar batch per prefix tuple
    (:func:`iter_batch_matches`); hybrid queries with attribute constraints
    keep the scalar nested loop, which the batch kernels do not model.
    """

    def __init__(self, query: RTJQuery, k: int) -> None:
        self._query = query
        self._k = k
        self._intervals: dict[str, list] = {}

    def reduce(self, key, values):
        _, vertex = key
        self._intervals.setdefault(vertex, []).extend(values)
        return iter(())

    def cleanup(self) -> Iterator:
        if len(self._intervals) < len(self._query.vertices):
            return
        vertices = self._query.vertices
        pools = [self._intervals[vertex] for vertex in vertices]
        if self._query.has_attribute_constraints:
            check = compile_boolean_checker(self._query)
            found = 0
            for combo in itertools.product(*pools):
                self.counters.increment("allmatrix.tuples_checked")
                if check(combo):
                    found += 1
                    yield "match", ResultTuple(tuple(i.uid for i in combo), 1.0)
                    if found >= self._k:
                        return
            return
        for result in iter_batch_matches(
            self._query, pools, self._k, self.counters, "allmatrix.tuples_checked"
        ):
            yield "match", result


@dataclass
class AllMatrixJoin:
    """Runs the All-Matrix baseline for a query on the simulated cluster.

    ``backend`` optionally shares an already-created execution backend (the
    caller keeps ownership); otherwise the engine creates its own, released by
    ``close()`` or by using the baseline as a context manager.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    config: AllMatrixConfig = field(default_factory=AllMatrixConfig)
    backend: "ExecutionBackend | None" = None

    def __post_init__(self) -> None:
        self.engine = MapReduceEngine(self.cluster, self.backend)

    def close(self) -> None:
        """Release the engine's own backend workers (injected backends stay up)."""
        self.engine.close()

    def __enter__(self) -> "AllMatrixJoin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def execute(self, query: RTJQuery) -> BaselineResult:
        """Evaluate the Boolean interpretation of ``query`` and return up to ``k`` matches."""
        started = time.perf_counter()
        bool_query = boolean_query(query, self.config.boolean_params)

        partitions = self._build_partitions(bool_query)
        reducer_tuples = self._feasible_reducer_tuples(bool_query, partitions)
        reducer_lists: dict[tuple[str, int], list[int]] = {}
        for reducer_id, parts in enumerate(reducer_tuples):
            for vertex, part in zip(bool_query.vertices, parts):
                reducer_lists.setdefault((vertex, part), []).append(reducer_id)
        reducers_by_vertex_partition = {
            item: tuple(reducers) for item, reducers in reducer_lists.items()
        }

        input_pairs = [
            (vertex, interval)
            for vertex in bool_query.vertices
            for interval in bool_query.collections[vertex]
        ]
        job = MapReduceJob(
            name="allmatrix-join",
            mapper_factory=partial(_AllMatrixMapper, partitions, reducers_by_vertex_partition),
            reducer_factory=partial(_AllMatrixReducer, bool_query, bool_query.k),
            partitioner=FirstElementPartitioner(),
            num_reducers=max(1, len(reducer_tuples)),
        )
        job_result = self.engine.run(job, input_pairs)
        ordered = top_k_matches(job_result.outputs, bool_query.k)
        elapsed = time.perf_counter() - started
        return BaselineResult(
            name="All-Matrix",
            results=ordered,
            phase_metrics=[job_result.metrics],
            elapsed_seconds=elapsed,
        )

    # ----------------------------------------------------------------- internal
    def _build_partitions(self, query: RTJQuery) -> dict[str, list[tuple[float, float]]]:
        """Uniform start-time partitions per vertex collection."""
        partitions: dict[str, list[tuple[float, float]]] = {}
        for vertex in query.vertices:
            collection = query.collections[vertex]
            low, high = collection.time_range()
            width = (high - low) / self.config.num_partitions or 1.0
            partitions[vertex] = [
                (low + i * width, low + (i + 1) * width)
                for i in range(self.config.num_partitions)
            ]
            partitions[vertex][-1] = (partitions[vertex][-1][0], high)
        return partitions

    def _feasible_reducer_tuples(
        self, query: RTJQuery, partitions: dict[str, list[tuple[float, float]]]
    ) -> list[tuple[int, ...]]:
        """Partition tuples that can possibly satisfy every Boolean predicate.

        Feasibility is checked with the scored-range machinery under Boolean
        parameters: a tuple is kept when every edge's upper bound is positive given
        boxes covering the partitions (start confined to the partition, end
        unconstrained up to the collection maximum).
        """
        objectives = [
            EdgeObjective.from_edge(e.source, e.target, e.predicate) for e in query.edges
        ]
        tuples: list[tuple[int, ...]] = []
        ranges = [range(self.config.num_partitions) for _ in query.vertices]
        global_high = {
            vertex: query.collections[vertex].time_range()[1] for vertex in query.vertices
        }
        for candidate in itertools.product(*ranges):
            boxes = {}
            for vertex, part in zip(query.vertices, candidate):
                low, high = partitions[vertex][part]
                boxes[vertex] = VariableBox(low, high, low, global_high[vertex])
            domains = DomainSet.from_mapping(boxes).endpoint_domains()
            feasible = all(objective.score_range(domains)[1] > 0.0 for objective in objectives)
            if feasible:
                tuples.append(candidate)
        return tuples
