"""Shared helpers for the Boolean-join baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..mapreduce.cluster import JobMetrics
from ..query.graph import ResultTuple, RTJQuery
from ..temporal.interval import Interval

__all__ = ["BaselineResult", "compile_boolean_checker"]


def compile_boolean_checker(query: RTJQuery) -> Callable[[Sequence[Interval]], bool]:
    """A fast conjunction check for the Boolean interpretation of ``query``.

    The returned callable takes one interval per query vertex (in vertex order) and
    reports whether every edge predicate holds.  Baseline reducers enumerate large
    cross products, so the per-tuple check is compiled once instead of going through
    the generic assignment-dictionary path.
    """
    position = {vertex: index for index, vertex in enumerate(query.vertices)}
    compiled = [
        (position[edge.source], position[edge.target], edge.predicate.compile(), edge.attributes)
        for edge in query.edges
    ]

    def check(tuple_: Sequence[Interval]) -> bool:
        for source_index, target_index, scorer, attributes in compiled:
            source, target = tuple_[source_index], tuple_[target_index]
            if scorer(source, target) < 1.0:
                return False
            for constraint in attributes:
                if not constraint.matches(source, target):
                    return False
        return True

    return check


@dataclass
class BaselineResult:
    """Results and per-phase metrics of one baseline execution."""

    name: str
    results: list[ResultTuple]
    phase_metrics: list[JobMetrics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def shuffle_records(self) -> int:
        """Total records shuffled across all Map-Reduce phases."""
        return sum(metrics.shuffle_records for metrics in self.phase_metrics)

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        summary = {
            "elapsed_seconds": self.elapsed_seconds,
            "results": float(len(self.results)),
            "shuffle_records": float(self.shuffle_records),
        }
        for index, metrics in enumerate(self.phase_metrics):
            summary[f"phase{index}_seconds"] = metrics.elapsed_seconds
        return summary
