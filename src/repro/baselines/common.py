"""Shared helpers for the Boolean-join baselines.

Everything the two Chawda-et-al. baselines (All-Matrix, RCCIS) have in common
lives here: the Boolean reinterpretation of a scored query, the compiled
conjunction check their reducers run, the heap-based top-k merge of their match
outputs, and the result/metrics container the experiment reports consume.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..columnar import IntervalColumns, compile_vector
from ..mapreduce.counters import Counters
from ..mapreduce.cluster import JobMetrics
from ..query.graph import QueryEdge, ResultTuple, RTJQuery
from ..temporal.comparators import PredicateParams
from ..temporal.interval import Interval

__all__ = [
    "BaselineResult",
    "boolean_query",
    "compile_boolean_checker",
    "compile_batch_matcher",
    "iter_batch_matches",
    "top_k_matches",
]


def boolean_query(query: RTJQuery, params: PredicateParams | None = None) -> RTJQuery:
    """The query with every predicate forced to Boolean scoring parameters.

    The Boolean baselines evaluate the *Boolean* interpretation of the query
    (Section 4.2.5): scores collapse to 0/1, so every edge predicate is rebuilt
    with ``params`` (default ``PB``, all-zero tolerances).
    """
    params = params if params is not None else PredicateParams.boolean()
    edges = tuple(
        QueryEdge(e.source, e.target, e.predicate.with_params(params), e.attributes)
        for e in query.edges
    )
    return RTJQuery(
        vertices=query.vertices,
        collections=query.collections,
        edges=edges,
        k=query.k,
        aggregation=query.aggregation,
        name=f"{query.name}-boolean",
    )


def compile_boolean_checker(query: RTJQuery) -> Callable[[Sequence[Interval]], bool]:
    """A fast conjunction check for the Boolean interpretation of ``query``.

    The returned callable takes one interval per query vertex (in vertex order) and
    reports whether every edge predicate holds.  Baseline reducers enumerate large
    cross products, so the per-tuple check is compiled once instead of going through
    the generic assignment-dictionary path.
    """
    position = {vertex: index for index, vertex in enumerate(query.vertices)}
    compiled = [
        (position[edge.source], position[edge.target], edge.predicate.compile(), edge.attributes)
        for edge in query.edges
    ]

    def check(tuple_: Sequence[Interval]) -> bool:
        for source_index, target_index, scorer, attributes in compiled:
            source, target = tuple_[source_index], tuple_[target_index]
            if scorer(source, target) < 1.0:
                return False
            for constraint in attributes:
                if not constraint.matches(source, target):
                    return False
        return True

    return check


def compile_batch_matcher(
    query: RTJQuery,
) -> Callable[[Sequence[Interval], IntervalColumns], "np.ndarray | None"]:
    """Vectorized Boolean conjunction over the last vertex's candidate batch.

    The returned matcher takes one interval per *prefix* vertex (vertex order,
    all but the last) plus the last vertex's pool as columns, and returns the
    per-candidate match mask — or ``None`` when a prefix-only edge already
    fails, in which case the whole batch is a miss.  Scores come from the same
    compiled comparator arithmetic as :func:`compile_boolean_checker`
    (vectorized in :mod:`repro.columnar`), so the mask equals the scalar
    conjunction exactly.  Attribute constraints are not handled here; callers
    with hybrid queries keep the scalar path.
    """
    position = {vertex: index for index, vertex in enumerate(query.vertices)}
    last_index = len(query.vertices) - 1
    prefix_edges = []
    last_edges = []
    for edge in query.edges:
        source, target = position[edge.source], position[edge.target]
        if last_index in (source, target):
            last_edges.append((source, target, compile_vector(edge.predicate)))
        else:
            prefix_edges.append((source, target, edge.predicate.compile()))

    def matcher(prefix: Sequence[Interval], columns: IntervalColumns):
        for source, target, scorer in prefix_edges:
            if scorer(prefix[source], prefix[target]) < 1.0:
                return None
        mask = np.ones(len(columns), dtype=bool)
        for source, target, scorer in last_edges:
            if source == last_index:
                fixed = prefix[target]
                values = scorer(columns.starts, columns.ends, fixed.start, fixed.end)
            else:
                fixed = prefix[source]
                values = scorer(fixed.start, fixed.end, columns.starts, columns.ends)
            mask &= values >= 1.0
        return mask

    return matcher


def iter_batch_matches(
    query: RTJQuery,
    pools: Sequence[Sequence[Interval]],
    k: int,
    counters: Counters,
    counter_name: str,
    extra_mask: Callable[[Sequence[Interval], IntervalColumns], np.ndarray] | None = None,
) -> Iterator[ResultTuple]:
    """Boolean matches in cross-product order, capped at ``k``, batch-scored.

    Columnar twin of the baseline reducers' nested loop: the innermost pool is
    scored as one batch per prefix tuple.  Matches arrive in the same order the
    scalar enumeration produces them and the ``counter_name`` counter keeps the
    scalar semantics exactly — every enumerated tuple counts as checked, and
    the enumeration stops right at the ``k``-th match (tuples after it in the
    final batch were never examined, so they are not counted).  ``extra_mask``
    injects a per-candidate filter evaluated before matching (RCCIS's granule
    deduplication).
    """
    matcher = compile_batch_matcher(query)
    columns = IntervalColumns.from_intervals(pools[-1])
    batch = len(columns)
    found = 0
    for prefix in itertools.product(*pools[:-1]):
        mask = matcher(prefix, columns)
        if mask is None:
            counters.increment(counter_name, batch)
            continue
        if extra_mask is not None:
            mask &= extra_mask(prefix, columns)
        hits = np.flatnonzero(mask)
        needed = k - found
        if len(hits) >= needed:
            counters.increment(counter_name, int(hits[needed - 1]) + 1)
            chosen = hits[:needed]
        else:
            counters.increment(counter_name, batch)
            chosen = hits
        prefix_uids = tuple(interval.uid for interval in prefix)
        for row in chosen:
            yield ResultTuple(prefix_uids + (int(columns.uids[row]),), 1.0)
        found += len(chosen)
        if found >= k:
            return


def top_k_matches(
    outputs: Iterable[tuple[object, ResultTuple]], k: int, key: str = "match"
) -> list[ResultTuple]:
    """The k best ``(key, ResultTuple)`` job outputs, heap-merged and ordered.

    Baseline join jobs emit their matches under a common output key; this keeps
    the top ``k`` by the deterministic ``ResultTuple.sort_key()`` ordering
    (descending score, interval-id tie-break) without sorting the full list.
    """
    matches = (value for out_key, value in outputs if out_key == key)
    return heapq.nsmallest(k, matches, key=lambda result: result.sort_key())


@dataclass
class BaselineResult:
    """Results and per-phase metrics of one baseline execution."""

    name: str
    results: list[ResultTuple]
    phase_metrics: list[JobMetrics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def shuffle_records(self) -> int:
        """Total records shuffled across all Map-Reduce phases."""
        return sum(metrics.shuffle_records for metrics in self.phase_metrics)

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase wall-clock times keyed by job name (for RunReport plumbing)."""
        return {metrics.job_name: metrics.elapsed_seconds for metrics in self.phase_metrics}

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        summary = {
            "elapsed_seconds": self.elapsed_seconds,
            "results": float(len(self.results)),
            "shuffle_records": float(self.shuffle_records),
        }
        for index, metrics in enumerate(self.phase_metrics):
            summary[f"phase{index}_seconds"] = metrics.elapsed_seconds
        return summary
