"""Shared helpers for the Boolean-join baselines.

Everything the two Chawda-et-al. baselines (All-Matrix, RCCIS) have in common
lives here: the Boolean reinterpretation of a scored query, the compiled
conjunction check their reducers run, the heap-based top-k merge of their match
outputs, and the result/metrics container the experiment reports consume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..mapreduce.cluster import JobMetrics
from ..query.graph import QueryEdge, ResultTuple, RTJQuery
from ..temporal.comparators import PredicateParams
from ..temporal.interval import Interval

__all__ = [
    "BaselineResult",
    "boolean_query",
    "compile_boolean_checker",
    "top_k_matches",
]


def boolean_query(query: RTJQuery, params: PredicateParams | None = None) -> RTJQuery:
    """The query with every predicate forced to Boolean scoring parameters.

    The Boolean baselines evaluate the *Boolean* interpretation of the query
    (Section 4.2.5): scores collapse to 0/1, so every edge predicate is rebuilt
    with ``params`` (default ``PB``, all-zero tolerances).
    """
    params = params if params is not None else PredicateParams.boolean()
    edges = tuple(
        QueryEdge(e.source, e.target, e.predicate.with_params(params), e.attributes)
        for e in query.edges
    )
    return RTJQuery(
        vertices=query.vertices,
        collections=query.collections,
        edges=edges,
        k=query.k,
        aggregation=query.aggregation,
        name=f"{query.name}-boolean",
    )


def compile_boolean_checker(query: RTJQuery) -> Callable[[Sequence[Interval]], bool]:
    """A fast conjunction check for the Boolean interpretation of ``query``.

    The returned callable takes one interval per query vertex (in vertex order) and
    reports whether every edge predicate holds.  Baseline reducers enumerate large
    cross products, so the per-tuple check is compiled once instead of going through
    the generic assignment-dictionary path.
    """
    position = {vertex: index for index, vertex in enumerate(query.vertices)}
    compiled = [
        (position[edge.source], position[edge.target], edge.predicate.compile(), edge.attributes)
        for edge in query.edges
    ]

    def check(tuple_: Sequence[Interval]) -> bool:
        for source_index, target_index, scorer, attributes in compiled:
            source, target = tuple_[source_index], tuple_[target_index]
            if scorer(source, target) < 1.0:
                return False
            for constraint in attributes:
                if not constraint.matches(source, target):
                    return False
        return True

    return check


def top_k_matches(
    outputs: Iterable[tuple[object, ResultTuple]], k: int, key: str = "match"
) -> list[ResultTuple]:
    """The k best ``(key, ResultTuple)`` job outputs, heap-merged and ordered.

    Baseline join jobs emit their matches under a common output key; this keeps
    the top ``k`` by the deterministic ``ResultTuple.sort_key()`` ordering
    (descending score, interval-id tie-break) without sorting the full list.
    """
    matches = (value for out_key, value in outputs if out_key == key)
    return heapq.nsmallest(k, matches, key=lambda result: result.sort_key())


@dataclass
class BaselineResult:
    """Results and per-phase metrics of one baseline execution."""

    name: str
    results: list[ResultTuple]
    phase_metrics: list[JobMetrics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def shuffle_records(self) -> int:
        """Total records shuffled across all Map-Reduce phases."""
        return sum(metrics.shuffle_records for metrics in self.phase_metrics)

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase wall-clock times keyed by job name (for RunReport plumbing)."""
        return {metrics.job_name: metrics.elapsed_seconds for metrics in self.phase_metrics}

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment reports."""
        summary = {
            "elapsed_seconds": self.elapsed_seconds,
            "results": float(len(self.results)),
            "shuffle_records": float(self.shuffle_records),
        }
        for index, metrics in enumerate(self.phase_metrics):
            summary[f"phase{index}_seconds"] = metrics.elapsed_seconds
        return summary
