"""Naive exact evaluation (correctness oracle and score-distribution probe).

``naive_top_k`` enumerates the full cross product of the query's collections and
scores every tuple; it is exponential and only usable on small inputs, but it is
the ground truth every distributed strategy is tested against.  ``all_pair_scores``
supports the score-distribution experiment of Figure 7, which ranks *all* pairs of
two collections under a single scored predicate.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..columnar import compile_vector
from ..query.graph import ResultTuple, RTJQuery
from ..temporal.interval import IntervalCollection
from ..temporal.predicates import ScoredPredicate

__all__ = ["naive_top_k", "naive_boolean_matches", "all_pair_scores"]


def naive_top_k(query: RTJQuery, k: int | None = None) -> list[ResultTuple]:
    """Exact top-k of an RTJ query by exhaustive enumeration."""
    k = k if k is not None else query.k
    heap: list[tuple[float, tuple[int, ...]]] = []
    vertices = query.vertices
    position = {vertex: index for index, vertex in enumerate(vertices)}
    pools = [query.collections[vertex].intervals for vertex in vertices]
    scorers = [
        (position[edge.source], position[edge.target], edge.predicate.compile())
        for edge in query.edges
    ]
    filters = [
        (position[edge.source], position[edge.target], edge.attributes)
        for edge in query.edges
        if edge.attributes
    ]
    aggregation = query.aggregation
    for combo in itertools.product(*pools):
        if filters and any(
            not constraint.matches(combo[i], combo[j])
            for i, j, constraints in filters
            for constraint in constraints
        ):
            continue
        scores = [scorer(combo[i], combo[j]) for i, j, scorer in scorers]
        score = aggregation.combine(scores)
        uids = tuple(interval.uid for interval in combo)
        if len(heap) < k:
            heapq.heappush(heap, (score, uids))
        elif score > heap[0][0]:
            heapq.heapreplace(heap, (score, uids))
    ordered = sorted(heap, key=lambda item: (-item[0], item[1]))
    return [ResultTuple(uids=uids, score=score) for score, uids in ordered]


def naive_boolean_matches(query: RTJQuery, limit: int | None = None) -> list[ResultTuple]:
    """All tuples satisfying every Boolean predicate (score 1.0), optionally capped."""
    matches: list[ResultTuple] = []
    vertices = query.vertices
    pools = [query.collections[vertex].intervals for vertex in vertices]
    for combo in itertools.product(*pools):
        assignment = dict(zip(vertices, combo))
        if query.boolean_holds(assignment):
            matches.append(ResultTuple(tuple(i.uid for i in combo), 1.0))
            if limit is not None and len(matches) >= limit:
                break
    return matches


def all_pair_scores(
    predicate: ScoredPredicate,
    left: IntervalCollection,
    right: IntervalCollection,
    top: int | None = None,
) -> np.ndarray:
    """Scores of all (x, y) pairs under one scored predicate, sorted descending.

    Used by the Figure 7 experiment to plot the score of the rank-r result for the
    four predicates compared in the paper.  ``top`` truncates the returned array.

    Runs on the vectorized predicate kernel: one numpy batch per left interval
    against the right collection's cached start/end columns (bit-identical to
    the scalar compiled scorer).
    """
    scorer = compile_vector(predicate)
    right_starts, right_ends = right.starts, right.ends
    width = len(right)
    scores = np.empty(len(left) * width, dtype=float)
    for position, x in enumerate(left):
        scores[position * width : (position + 1) * width] = scorer(
            x.start, x.end, right_starts, right_ends
        )
    scores[::-1].sort()
    if top is not None:
        return scores[:top]
    return scores
