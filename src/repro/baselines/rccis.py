"""RCCIS: the Boolean colocation-join baseline of Chawda et al. (EDBT 2014).

RCCIS targets *colocation* queries where all predicates require the intervals to
intersect (``overlaps``, ``meets``, ``starts``, ...).  It range-partitions the
global time axis into as many granules as reducers and proceeds in two Map-Reduce
phases:

1. a replication-planning phase that computes, for every interval, the granules it
   spans (its replication list) — this is the phase whose cost grows with the
   collection size and that TKIJ's statistics-driven TopBuckets sidesteps
   (Figure 11b/c);
2. a join phase where each interval is shuffled to every granule it spans and each
   reducer evaluates the Boolean query over its colocated intervals, reporting a
   result only in the granule containing the latest start among the joined
   intervals (so no result is produced twice), stopping at ``k`` results.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Iterator

import numpy as np

from ..mapreduce import (
    ClusterConfig,
    ExecutionBackend,
    FirstElementPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
)
from ..query.graph import ResultTuple, RTJQuery
from ..temporal.comparators import PredicateParams
from .common import (
    BaselineResult,
    boolean_query,
    compile_boolean_checker,
    iter_batch_matches,
    top_k_matches,
)

__all__ = ["RCCISConfig", "RCCISJoin"]


@dataclass(frozen=True)
class RCCISConfig:
    """Knobs of the RCCIS baseline."""

    num_granules: int = 8
    # Intersection slack: colocation queries under scored semantics tolerate small
    # gaps; the Boolean baseline uses zero slack.
    boolean_params: PredicateParams = field(default_factory=PredicateParams.boolean)


@dataclass(frozen=True)
class _GranuleMap:
    """Uniform time-axis granulation, as a picklable callable (workers need it)."""

    low: float
    high: float
    width: float
    num_granules: int

    def __call__(self, timestamp: float) -> int:
        if timestamp >= self.high:
            return self.num_granules - 1
        return min(int((timestamp - self.low) / self.width), self.num_granules - 1)

    def batch(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorized ``__call__`` (same expression, elementwise-identical)."""
        timestamps = np.asarray(timestamps, dtype=float)
        indexes = ((timestamps - self.low) / self.width).astype(np.int64)
        np.minimum(indexes, self.num_granules - 1, out=indexes)
        indexes[timestamps >= self.high] = self.num_granules - 1
        return indexes


class _ReplicationMapper(Mapper):
    """Phase 1 map: compute the granules spanned by each interval."""

    def __init__(self, granule_of) -> None:
        self._granule_of = granule_of

    def map(self, key, value):
        vertex, interval = key, value
        first = self._granule_of(interval.start)
        last = self._granule_of(interval.end)
        self.counters.increment("rccis.replication_entries", last - first + 1)
        yield (vertex, interval.uid), (interval, tuple(range(first, last + 1)))


class _ReplicationReducer(Reducer):
    """Phase 1 reduce: pass the replication lists through (identity aggregation)."""

    def reduce(self, key, values):
        for value in values:
            yield key, value


class _JoinMapper(Mapper):
    """Phase 2 map: replicate each interval to every granule it spans."""

    def map(self, key, value):
        vertex, _ = key
        interval, granules = value
        for granule in granules:
            self.counters.increment("rccis.intervals_shuffled")
            yield (granule, vertex), interval


class _JoinReducer(Reducer):
    """Phase 2 reduce: Boolean join of colocated intervals, deduplicated, capped at k."""

    def __init__(self, query: RTJQuery, k: int, granule_of) -> None:
        self._query = query
        self._k = k
        self._granule_of = granule_of
        self._granule: int | None = None
        self._intervals: dict[str, list] = {}

    def reduce(self, key, values):
        granule, vertex = key
        self._granule = granule
        self._intervals.setdefault(vertex, []).extend(values)
        return iter(())

    def cleanup(self) -> Iterator:
        if self._granule is None or len(self._intervals) < len(self._query.vertices):
            return
        vertices = self._query.vertices
        pools = [self._intervals[vertex] for vertex in vertices]
        if self._query.has_attribute_constraints:
            yield from self._cleanup_scalar(pools)
            return
        granule_map, granule = self._granule_of, self._granule

        def dedup_mask(prefix, columns):
            # Deduplication: only the granule of the latest start reports the
            # result; the latest start of (prefix + candidate) is elementwise
            # max of the prefix maximum and the candidate start column.
            latest = np.maximum(
                max(interval.start for interval in prefix), columns.starts
            )
            return granule_map.batch(latest) == granule

        for result in iter_batch_matches(
            self._query, pools, self._k, self.counters, "rccis.tuples_checked",
            extra_mask=dedup_mask,
        ):
            yield "match", result

    def _cleanup_scalar(self, pools) -> Iterator:
        """Scalar nested loop, kept for hybrid queries with attribute filters."""
        check = compile_boolean_checker(self._query)
        found = 0
        for combo in itertools.product(*pools):
            self.counters.increment("rccis.tuples_checked")
            latest_start = max(interval.start for interval in combo)
            if self._granule_of(latest_start) != self._granule:
                continue
            if check(combo):
                found += 1
                yield "match", ResultTuple(tuple(i.uid for i in combo), 1.0)
                if found >= self._k:
                    return


@dataclass
class RCCISJoin:
    """Runs the RCCIS baseline for a query on the simulated cluster.

    ``backend`` optionally shares an already-created execution backend (the
    caller keeps ownership); otherwise the engine creates its own, released by
    ``close()`` or by using the baseline as a context manager.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    config: RCCISConfig = field(default_factory=RCCISConfig)
    backend: "ExecutionBackend | None" = None

    def __post_init__(self) -> None:
        self.engine = MapReduceEngine(self.cluster, self.backend)

    def close(self) -> None:
        """Release the engine's own backend workers (injected backends stay up)."""
        self.engine.close()

    def __enter__(self) -> "RCCISJoin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def execute(self, query: RTJQuery) -> BaselineResult:
        """Evaluate the Boolean interpretation of ``query`` and return up to ``k`` matches."""
        started = time.perf_counter()
        bool_query = boolean_query(query, self.config.boolean_params)

        low = min(
            bool_query.collections[v].time_range()[0] for v in bool_query.vertices
        )
        high = max(
            bool_query.collections[v].time_range()[1] for v in bool_query.vertices
        )
        width = (high - low) / self.config.num_granules or 1.0
        granule_of = _GranuleMap(low, high, width, self.config.num_granules)

        input_pairs = [
            (vertex, interval)
            for vertex in bool_query.vertices
            for interval in bool_query.collections[vertex]
        ]

        # Phase 1: replication planning.
        planning_job = MapReduceJob(
            name="rccis-replication",
            mapper_factory=partial(_ReplicationMapper, granule_of),
            reducer_factory=_ReplicationReducer,
            num_reducers=self.cluster.num_reducers,
        )
        planning_result = self.engine.run(planning_job, input_pairs)

        # Phase 2: colocation join.
        join_job = MapReduceJob(
            name="rccis-join",
            mapper_factory=_JoinMapper,
            reducer_factory=partial(_JoinReducer, bool_query, bool_query.k, granule_of),
            partitioner=FirstElementPartitioner(),
            num_reducers=self.config.num_granules,
        )
        join_result = self.engine.run(join_job, planning_result.outputs)

        ordered = top_k_matches(join_result.outputs, bool_query.k)
        elapsed = time.perf_counter() - started
        return BaselineResult(
            name="RCCIS",
            results=ordered,
            phase_metrics=[planning_result.metrics, join_result.metrics],
            elapsed_seconds=elapsed,
        )
