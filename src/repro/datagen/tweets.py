"""Hashtag-lifespan generator (the tweet-analysis scenario of the introduction).

The paper motivates RTJ queries with tweet analysis: intervals are the lifespans of
hashtags, and queries such as ``meets`` or ``sparks`` find discussion topics that
started roughly when another ended, or short-lived topics preceding a long-lasting
one (the ``#JeSuisCharlie`` example).  This generator produces hashtag lifespans
with a small number of long-lasting "event" hashtags and a majority of short-lived
ones, so the ``sparks`` predicate has meaningful matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..temporal.interval import Interval, IntervalCollection

__all__ = ["TweetConfig", "generate_hashtag_collection"]


@dataclass(frozen=True)
class TweetConfig:
    """Parameters of the hashtag-lifespan workload."""

    num_hashtags: int = 2_000
    horizon_hours: float = 24.0 * 14.0
    long_lived_fraction: float = 0.05
    short_mean_hours: float = 2.0
    long_mean_hours: float = 72.0

    def __post_init__(self) -> None:
        if self.num_hashtags <= 0:
            raise ValueError("num_hashtags must be positive")
        if not 0.0 <= self.long_lived_fraction <= 1.0:
            raise ValueError("long_lived_fraction must be in [0, 1]")


def generate_hashtag_collection(
    name: str = "hashtags", config: TweetConfig | None = None, seed: int | None = None
) -> IntervalCollection:
    """Hashtag lifespans in hours, with a heavy-tailed mix of short and long topics."""
    config = config or TweetConfig()
    rng = np.random.default_rng(seed)

    num_long = int(config.num_hashtags * config.long_lived_fraction)
    num_short = config.num_hashtags - num_long

    starts = rng.uniform(0.0, config.horizon_hours, size=config.num_hashtags)
    short_lengths = rng.exponential(config.short_mean_hours, size=num_short) + 0.1
    long_lengths = rng.exponential(config.long_mean_hours, size=num_long) + 12.0
    lengths = np.concatenate([short_lengths, long_lengths])
    kinds = ["short"] * num_short + ["long"] * num_long

    intervals = [
        Interval(
            uid,
            float(start),
            float(start + length),
            payload={"hashtag": f"#topic{uid}", "kind": kind},
        )
        for uid, (start, length, kind) in enumerate(zip(starts, lengths, kinds))
    ]
    return IntervalCollection(name, intervals)
