"""Network-traffic trace simulator (paper Section 4.3).

The paper's real dataset are firewall logs of a data-hosting company: packets
exchanged between clients and servers, grouped into *connections* by keeping
consecutive packets of the same (client, server) pair whose timestamps are within
60 seconds of each other.  The resulting connections have a skewed start-point
distribution and a heavy-tailed length distribution (minimum 1 s, average 54 s,
maximum ≈ 86 000 s; Figure 12).

That trace is proprietary, so this module simulates it (see DESIGN.md §2): clients
open sessions against servers with a diurnal, bursty arrival process and exchange
packets whose inter-arrival times are drawn from a heavy-tailed distribution.  The
packet→connection grouping rule is then applied verbatim.  The defaults are tuned
so the published marginals are matched qualitatively (skewed starts, lognormal-ish
lengths with a mean of a few tens of seconds and a very long tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..temporal.interval import Interval, IntervalCollection

__all__ = [
    "Packet",
    "NetworkTraceConfig",
    "generate_packet_log",
    "connections_from_packets",
    "generate_network_collection",
    "sample_collection",
]


@dataclass(frozen=True, slots=True)
class Packet:
    """One logged packet: a (client, server) pair and a timestamp in seconds."""

    client: int
    server: int
    timestamp: float


@dataclass(frozen=True)
class NetworkTraceConfig:
    """Parameters of the simulated firewall log."""

    num_clients: int = 200
    num_servers: int = 40
    num_sessions: int = 5_000
    duration_seconds: float = 86_400.0
    connection_gap_seconds: float = 60.0
    mean_packets_per_session: float = 8.0
    # Lognormal parameters of packet inter-arrival times (seconds) within a session;
    # the heavy tail produces both sub-second bursts and very long-lived connections.
    interarrival_mu: float = 1.2
    interarrival_sigma: float = 1.4
    # A small fraction of sessions are long-lived (persistent connections, keep-alive
    # traffic); they produce the multi-hour tail of the length distribution.
    long_session_fraction: float = 0.03
    long_session_packet_factor: float = 30.0
    # Fraction of sessions concentrated in the two "business hours" bursts, giving
    # the skewed start-point distribution of Figure 12a.
    peak_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.num_sessions <= 0 or self.num_clients <= 0 or self.num_servers <= 0:
            raise ValueError("sizes must be positive")
        if not 0.0 <= self.peak_fraction <= 1.0:
            raise ValueError("peak_fraction must be in [0, 1]")


def generate_packet_log(
    config: NetworkTraceConfig | None = None, seed: int | None = None
) -> list[Packet]:
    """Simulate the raw packet log (unordered in time, as a real log dump would be)."""
    config = config or NetworkTraceConfig()
    rng = np.random.default_rng(seed)
    packets: list[Packet] = []

    num_peaked = int(config.num_sessions * config.peak_fraction)
    peak_centers = np.array([0.35, 0.65]) * config.duration_seconds
    peak_width = 0.08 * config.duration_seconds

    session_starts = np.empty(config.num_sessions)
    peaked_choice = rng.integers(0, len(peak_centers), size=num_peaked)
    session_starts[:num_peaked] = rng.normal(
        peak_centers[peaked_choice], peak_width
    )
    session_starts[num_peaked:] = rng.uniform(
        0.0, config.duration_seconds, size=config.num_sessions - num_peaked
    )
    session_starts = np.clip(session_starts, 0.0, config.duration_seconds)

    clients = rng.integers(0, config.num_clients, size=config.num_sessions)
    # Server popularity follows a Zipf-like law: a few servers receive most traffic.
    server_weights = 1.0 / np.arange(1, config.num_servers + 1)
    server_weights /= server_weights.sum()
    servers = rng.choice(config.num_servers, size=config.num_sessions, p=server_weights)

    packet_counts = rng.poisson(config.mean_packets_per_session, size=config.num_sessions) + 1
    long_lived = rng.random(config.num_sessions) < config.long_session_fraction
    packet_counts = np.where(
        long_lived,
        (packet_counts * config.long_session_packet_factor).astype(int),
        packet_counts,
    )
    for session_index in range(config.num_sessions):
        timestamp = float(session_starts[session_index])
        client = int(clients[session_index])
        server = int(servers[session_index])
        for _ in range(int(packet_counts[session_index])):
            packets.append(Packet(client, server, timestamp))
            gap = float(rng.lognormal(config.interarrival_mu, config.interarrival_sigma))
            timestamp += gap
    return packets


def connections_from_packets(
    packets: Iterable[Packet],
    gap_seconds: float = 60.0,
    collection_name: str = "connections",
) -> IntervalCollection:
    """Group packets into connections exactly as the paper's preprocessing does.

    Packets of the same (client, server) pair are sorted by timestamp and split
    whenever the gap between consecutive packets exceeds ``gap_seconds``; each group
    becomes one connection ``[client, server, start, end]`` with a minimum length of
    one second (the paper's minimum observed length).
    """
    by_pair: dict[tuple[int, int], list[float]] = {}
    for packet in packets:
        by_pair.setdefault((packet.client, packet.server), []).append(packet.timestamp)

    intervals: list[Interval] = []
    uid = 0
    for (client, server), timestamps in sorted(by_pair.items()):
        timestamps.sort()
        group_start = timestamps[0]
        previous = timestamps[0]
        for timestamp in timestamps[1:]:
            if timestamp - previous > gap_seconds:
                intervals.append(_connection(uid, client, server, group_start, previous))
                uid += 1
                group_start = timestamp
            previous = timestamp
        intervals.append(_connection(uid, client, server, group_start, previous))
        uid += 1
    return IntervalCollection(collection_name, intervals)


def _connection(uid: int, client: int, server: int, start: float, end: float) -> Interval:
    end = max(end, start + 1.0)
    return Interval(uid, start, end, payload={"client": client, "server": server})


def generate_network_collection(
    config: NetworkTraceConfig | None = None,
    seed: int | None = None,
    collection_name: str = "connections",
) -> IntervalCollection:
    """End-to-end convenience: simulate packets and build the connection collection."""
    config = config or NetworkTraceConfig()
    packets = generate_packet_log(config, seed)
    return connections_from_packets(packets, config.connection_gap_seconds, collection_name)


def sample_collection(
    collection: IntervalCollection,
    fraction: float,
    seed: int | None = None,
    name: str | None = None,
) -> IntervalCollection:
    """Random sample of a collection, as the paper's 5 %–35 % scalability sweep does."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    size = max(1, int(len(collection) * fraction))
    indices = rng.choice(len(collection), size=size, replace=False)
    chosen = [collection[i] for i in sorted(indices)]
    renumbered = [
        Interval(new_uid, interval.start, interval.end, interval.payload)
        for new_uid, interval in enumerate(chosen)
    ]
    return IntervalCollection(name or f"{collection.name}-{int(fraction * 100)}pct", renumbered)
