"""Workload generators: synthetic uniform data, simulated network traces, hashtags."""

from .network import (
    NetworkTraceConfig,
    Packet,
    connections_from_packets,
    generate_network_collection,
    generate_packet_log,
    sample_collection,
)
from .synthetic import SyntheticConfig, generate_collections, generate_uniform_collection
from .tweets import TweetConfig, generate_hashtag_collection

__all__ = [
    "NetworkTraceConfig",
    "Packet",
    "connections_from_packets",
    "generate_network_collection",
    "generate_packet_log",
    "sample_collection",
    "SyntheticConfig",
    "generate_collections",
    "generate_uniform_collection",
    "TweetConfig",
    "generate_hashtag_collection",
]
