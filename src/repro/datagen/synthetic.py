"""Synthetic interval generator (paper Section 4.2).

The paper generates intervals with a pseudo-random uniform generator: start points
uniform in ``[0, 1e5]`` and lengths uniform in ``[1, 100]``, integer endpoints
(the same parameters as Chawda et al.).  The generator is seedable so experiments
are reproducible, and both single collections and families of collections (one per
query vertex) can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..temporal.interval import Interval, IntervalCollection

__all__ = ["SyntheticConfig", "generate_uniform_collection", "generate_collections"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the uniform synthetic workload."""

    size: int = 10_000
    start_min: float = 0.0
    start_max: float = 100_000.0
    length_min: float = 1.0
    length_max: float = 100.0
    integer_endpoints: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.start_max < self.start_min:
            raise ValueError("start_max must not precede start_min")
        if self.length_min <= 0 or self.length_max < self.length_min:
            raise ValueError("invalid length range")


def generate_uniform_collection(
    name: str, config: SyntheticConfig | None = None, seed: int | None = None
) -> IntervalCollection:
    """One collection of uniformly distributed intervals."""
    config = config or SyntheticConfig()
    rng = np.random.default_rng(seed)
    starts = rng.uniform(config.start_min, config.start_max, size=config.size)
    lengths = rng.uniform(config.length_min, config.length_max, size=config.size)
    if config.integer_endpoints:
        starts = np.floor(starts)
        lengths = np.maximum(1.0, np.round(lengths))
    ends = starts + lengths
    intervals = [
        Interval(uid, float(start), float(end))
        for uid, (start, end) in enumerate(zip(starts, ends))
    ]
    return IntervalCollection(name, intervals)


def generate_collections(
    num_collections: int,
    config: SyntheticConfig | None = None,
    seed: int = 7,
    name_prefix: str = "C",
) -> dict[str, IntervalCollection]:
    """A family of collections ``C1..Cn`` with independent seeds derived from ``seed``."""
    if num_collections <= 0:
        raise ValueError("num_collections must be positive")
    collections: dict[str, IntervalCollection] = {}
    for index in range(num_collections):
        name = f"{name_prefix}{index + 1}"
        collections[name] = generate_uniform_collection(
            name, config, seed=seed + index * 1_000_003
        )
    return collections
