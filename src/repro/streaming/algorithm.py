"""The streaming TKIJ evaluator (``tkij-streaming`` in the registry).

``StreamingTKIJ`` keeps a top-k answer fresh while interval batches arrive,
without recomputing phases (a)-(e) from scratch:

* phase (a) is maintained incrementally through the context's
  :class:`~repro.plan.StatisticsCache` (``update`` applies the paper's §3.2
  ``update_statistics`` to the cached bucket matrices);
* phase (b) reuses a cross-batch pairwise-bounds memo — granule boundaries are
  fixed between replans, so bound primitives never change;
* phases (c)-(d) run only over *candidate* bucket combinations: those touching
  a bucket the current batch wrote into (all-old combinations cannot form new
  tuples) whose score upper bound can still crack the persistent top-k
  (appends never evict results, so the k-th score is non-decreasing and every
  previously pruned tuple stays pruned);
* phase (e) merges the batch's results into the persistent k-heap.

A full replan — fresh statistics at the current time range, full pipeline —
is triggered by :meth:`AutoPlanner.should_replan` when the stream outgrows the
granule boundaries the plan was built on (doubling schedule), or when a batch
mostly falls outside the cached granule range.

The evaluator degrades gracefully to a one-shot full evaluation on plain
static collections, so it is a drop-in registry citizen; streams are expressed
by binding the query to :class:`StreamingCollection` objects and calling
``run`` after ingesting each batch.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..core.distribution import ASSIGNERS
from ..core.local_join import LocalJoinConfig
from ..core.merge import merge_top_k
from ..core.operators import (
    DistributeOp,
    FilteredDistributeOp,
    JoinOp,
    MergeOp,
    PhaseState,
    PrunedJoinOp,
    StatisticsOp,
    TopBucketsOp,
    collections_by_name,
    run_pipeline,
)
from ..core.top_buckets import STRATEGIES
from ..mapreduce import MapReduceEngine
from ..plan.algorithm import Algorithm, ExecutionPlan, RunReport
from ..plan.algorithms import PLAN_MODES, resolve_join_config
from ..plan.context import ExecutionContext
from ..plan.planner import AutoPlanner
from ..plan.registry import register
from ..query.graph import RTJQuery
from ..solver import BranchAndBoundSolver
from .collection import StreamingCollection
from .operators import CandidateFilter, IncrementalTopBucketsOp
from .state import BatchReport, StreamState, StreamingRunResult

__all__ = ["StreamingTKIJ"]

_RESOLVED_KNOBS = ("num_granules", "strategy", "assigner")


class StreamingTKIJ(Algorithm):
    """Incremental top-k temporal joins over appending collections."""

    name = "tkij-streaming"
    title = "TKIJ (streaming)"
    scored = True

    def plan(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        mode: str = "manual",
        stream_id: str = "default",
        num_granules: int = 20,
        strategy: str = "loose",
        assigner: str = "dtb",
        kernel: str | None = None,
        join_config: LocalJoinConfig | None = None,
        solver: BranchAndBoundSolver | None = None,
        planner: AutoPlanner | None = None,
    ) -> ExecutionPlan:
        if mode not in PLAN_MODES:
            raise ValueError(f"unknown plan mode {mode!r}; expected one of {PLAN_MODES}")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if assigner not in ASSIGNERS:
            raise ValueError(f"unknown assigner {assigner!r}; expected one of {sorted(ASSIGNERS)}")
        knobs: dict[str, Any] = {
            "mode": mode,
            "stream_id": stream_id,
            "num_granules": num_granules,
            "strategy": strategy,
            "assigner": assigner,
            # The kernel is resolved per (re)plan in _full_tick: an explicit
            # value always wins, otherwise auto mode applies the planner's
            # pick and manual mode keeps the join_config's own kernel.
            "kernel": kernel,
            "join_config": join_config or LocalJoinConfig(),
            "solver": solver or BranchAndBoundSolver(),
            "planner": planner or AutoPlanner(),
        }
        return ExecutionPlan(self.name, query, context, knobs)

    # ---------------------------------------------------------------- execute
    def execute(self, plan: ExecutionPlan) -> RunReport:
        query, context, knobs = plan.query, plan.context, plan.knobs
        collections = collections_by_name(query)
        streaming = {
            name: collection
            for name, collection in collections.items()
            if isinstance(collection, StreamingCollection)
        }
        state = self._stream_state(context, query, knobs["stream_id"])
        engine = MapReduceEngine(context.cluster, context.get_backend())

        reports: list[BatchReport] = []
        metrics = []
        if not state.initialized:
            committed = self._commit_tick(streaming)
            for name, collection in collections.items():
                if not len(collection):
                    raise ValueError(
                        f"collection {name!r} has no intervals yet; ingest a first "
                        "batch before evaluating the stream"
                    )
            inserted = sum(len(collection) for collection in collections.values())
            report, pstate = self._full_tick(
                query, context, engine, state, knobs,
                inserted=inserted, replanned=False, reason="initial full evaluation",
            )
            reports.append(report)
            metrics.extend([pstate.join_metrics, pstate.merge_metrics])
        while any(c.pending_batches for c in streaming.values()):
            committed = self._commit_tick(streaming)
            report, pstate = self._incremental_tick(
                query, context, engine, state, knobs, committed
            )
            reports.append(report)
            if pstate is not None:
                metrics.extend([pstate.join_metrics, pstate.merge_metrics])

        phase_seconds: dict[str, float] = {}
        for report in reports:
            for phase, seconds in report.phase_seconds.items():
                phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        raw = StreamingRunResult(
            results=list(state.results),
            batches=reports,
            batches_ingested=state.batches_ingested,
            replans=state.replans,
            plan_explanation=state.explanation,
        )
        return RunReport(
            algorithm=self.name,
            title=self.title,
            results=list(state.results),
            phase_seconds=phase_seconds,
            metrics=[m for m in metrics if m is not None],
            explanation=state.explanation,
            statistics_cached=reports[-1].statistics_cached if reports else True,
            elapsed_seconds=raw.total_seconds,
            raw=raw,
        )

    def plan_knobs(self, options: Mapping[str, Any]) -> dict[str, Any]:
        picked = {}
        for knob in ("mode", "num_granules", "strategy", "assigner", "kernel", "stream_id"):
            if options.get(knob) is not None:
                picked[knob] = options[knob]
        return picked

    # ------------------------------------------------------------------ ticks
    @staticmethod
    def _commit_tick(
        streaming: Mapping[str, StreamingCollection],
    ) -> dict[str, tuple]:
        """Commit at most one pending batch per stream; returns the batch intervals."""
        committed = {}
        for name, collection in streaming.items():
            batch = collection.commit_next()
            if batch is not None and len(batch):
                committed[name] = batch.intervals
        return committed

    def _full_tick(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        engine: MapReduceEngine,
        state: StreamState,
        knobs: Mapping[str, Any],
        inserted: int,
        replanned: bool,
        reason: str,
        rebuild_statistics: bool = True,
    ) -> tuple[BatchReport, PhaseState]:
        """Plan (or replan) and evaluate the whole current dataset from scratch.

        ``rebuild_statistics=False`` skips the cache invalidation — used when
        the caller just collected fresh statistics itself (a cache miss on the
        incremental path) and a second phase (a) pass would be pure waste.
        """
        collections = collections_by_name(query)
        resolved = {knob: knobs[knob] for knob in _RESOLVED_KNOBS}
        if knobs["mode"] == "auto":
            planner = knobs["planner"]
            if replanned and rebuild_statistics:
                # The probe entry was maintained incrementally too, clamping
                # out-of-range appends into border buckets; re-planning from it
                # would bake that distortion into the chosen knobs.
                context.statistics.invalidate(collections, planner.probe_granules)
            chosen, explanation = planner.plan(query, context)
            resolved.update(chosen)
            state.explanation = explanation
        # Resolve the effective join configuration for this plan epoch: an
        # explicit kernel beats the planner's pick; the resolved config drives
        # both this full evaluation and every incremental tick until a replan.
        explicit_kernel = knobs.get("kernel")
        kernel = explicit_kernel if explicit_kernel is not None else resolved.get("kernel")
        resolved["join_config"] = resolve_join_config(
            {"join_config": knobs["join_config"], "kernel": kernel}
        )
        if explicit_kernel is not None and state.explanation is not None:
            state.explanation.kernel = explicit_kernel
        state.knobs = resolved
        num_granules = resolved["num_granules"]
        if replanned and rebuild_statistics:
            # Force phase (a) to rebuild granule boundaries over the *current*
            # time range: the clamped incremental matrices are exactly what the
            # replan is escaping.  (Under auto mode the probe entry was just
            # rebuilt fresh above; don't throw that work away if the planner
            # chose the probe granularity.)
            probe_fresh = (
                knobs["mode"] == "auto"
                and num_granules == knobs["planner"].probe_granules
            )
            if not probe_fresh:
                context.statistics.invalidate(collections, num_granules)
        started = time.perf_counter()
        statistics, cached = context.statistics.get_or_collect(collections, num_granules)
        statistics_seconds = time.perf_counter() - started

        pstate = PhaseState(
            query=query, engine=engine, num_reducers=context.cluster.num_reducers
        )
        run_pipeline(
            [
                StatisticsOp(num_granules, False, statistics),
                TopBucketsOp(resolved["strategy"], knobs["solver"]),
                DistributeOp(resolved["assigner"]),
                JoinOp(resolved["join_config"]),
                MergeOp(),
            ],
            pstate,
        )
        pstate.phase_seconds["statistics"] = (
            pstate.phase_seconds.get("statistics", 0.0) + statistics_seconds
        )
        state.results = pstate.results
        state.base_size = sum(len(collection) for collection in collections.values())
        state.appended_since_plan = 0
        state.pairwise_bounds = {}
        state.initialized = True
        report = BatchReport(
            index=state.batches_ingested,
            inserted=inserted,
            replanned=replanned,
            replan_reason=reason,
            statistics_cached=cached,
            phase_seconds=dict(pstate.phase_seconds),
            candidates=len(pstate.top_buckets.selected) if pstate.top_buckets else 0,
            tuples_scored=pstate.local_join_stats.tuples_scored,
            combinations_processed=pstate.local_join_stats.combinations_processed,
            kth_score=state.kth_score(query.k) or 0.0,
        )
        state.batches_ingested += 1
        return report, pstate

    def _incremental_tick(
        self,
        query: RTJQuery,
        context: ExecutionContext,
        engine: MapReduceEngine,
        state: StreamState,
        knobs: Mapping[str, Any],
        committed: Mapping[str, tuple],
    ) -> tuple[BatchReport, PhaseState | None]:
        """Fold one committed batch into the persistent top-k."""
        collections = collections_by_name(query)
        batch_total = sum(len(intervals) for intervals in committed.values())
        if batch_total == 0:
            # An idle tick (every stream's batch was empty) changes nothing.
            report = BatchReport(
                index=state.batches_ingested,
                inserted=0,
                replanned=False,
                replan_reason="empty batch",
                statistics_cached=True,
                kth_score=state.kth_score(query.k) or 0.0,
            )
            state.batches_ingested += 1
            return report, None

        # Phase (a), incrementally: fold the batch into every cached matrix and
        # re-record the fingerprints (appends may extend the time range; the
        # counts stay correct — clamped to border granules, per §3.2).
        started = time.perf_counter()
        context.statistics.update(inserted=committed)
        context.statistics.refresh_fingerprints(
            {name: collections[name] for name in committed}
        )
        num_granules = state.knobs["num_granules"]
        statistics, cached = context.statistics.get_or_collect(collections, num_granules)
        statistics_seconds = time.perf_counter() - started
        state.appended_since_plan += batch_total

        if not cached:
            # The cache entry was lost (e.g. an out-of-band mutation): the
            # recollected granularity invalidates the pairwise memo, so fall
            # back to a full evaluation of the current contents — reusing the
            # statistics get_or_collect just rebuilt, not collecting twice.
            state.replans += 1
            return self._full_tick(
                query, context, engine, state, knobs,
                inserted=batch_total, replanned=True,
                reason="statistics cache missed; granule boundaries rebuilt",
                rebuild_statistics=False,
            )

        out_of_range = 0
        for name, intervals in committed.items():
            granularity = statistics.matrix(name).granularity
            out_of_range += sum(
                1
                for interval in intervals
                if interval.start < granularity.time_min
                or interval.end > granularity.time_max
            )
        replan, reason = knobs["planner"].should_replan(
            base_size=state.base_size,
            appended_since_plan=state.appended_since_plan,
            batch_size=batch_total,
            out_of_range=out_of_range,
        )
        if replan:
            state.replans += 1
            return self._full_tick(
                query, context, engine, state, knobs,
                inserted=batch_total, replanned=True, reason=reason,
            )

        dirty = {
            vertex: frozenset(
                statistics.matrix(query.collections[vertex].name).granularity.bucket_of(
                    interval
                )
                for interval in committed[query.collections[vertex].name]
            )
            for vertex in query.vertices
            if query.collections[vertex].name in committed
        }
        threshold = state.kth_score(query.k)
        candidate_filter = CandidateFilter(dirty, threshold)
        pstate = PhaseState(
            query=query, engine=engine, num_reducers=context.cluster.num_reducers
        )
        run_pipeline(
            [
                StatisticsOp(num_granules, False, statistics),
                IncrementalTopBucketsOp(state.pairwise_bounds, knobs["solver"]),
                FilteredDistributeOp(state.knobs["assigner"], keep=candidate_filter),
                # Reducers inherit the persistent k-th score as their pruning
                # floor: tuples that cannot strictly beat it never get scored.
                PrunedJoinOp(
                    state.knobs["join_config"], initial_threshold=threshold or 0.0
                ),
                MergeOp(),
            ],
            pstate,
        )
        pstate.phase_seconds["statistics"] = (
            pstate.phase_seconds.get("statistics", 0.0) + statistics_seconds
        )
        state.results = merge_top_k([state.results, pstate.results], query.k)
        report = BatchReport(
            index=state.batches_ingested,
            inserted=batch_total,
            replanned=False,
            replan_reason=reason,
            statistics_cached=cached,
            phase_seconds=dict(pstate.phase_seconds),
            candidates=candidate_filter.kept,
            pruned_clean=candidate_filter.clean_skipped,
            pruned_bounds=candidate_filter.bound_pruned,
            intervals_skipped=pstate.pruning.get("intervals_skipped", 0),
            tuples_scored=pstate.local_join_stats.tuples_scored,
            combinations_processed=pstate.local_join_stats.combinations_processed,
            kth_score=state.kth_score(query.k) or 0.0,
        )
        state.batches_ingested += 1
        return report, pstate

    # ----------------------------------------------------------------- helpers
    def _stream_state(
        self, context: ExecutionContext, query: RTJQuery, stream_id: str
    ) -> StreamState:
        """The per-stream state, keyed by stream id and the query's identity.

        Including the query fingerprint in the key keeps two different queries
        (or the same query at a different ``k``) on the same ``stream_id`` from
        trampling each other's persistent top-k.
        """
        edges = tuple(
            (edge.source, edge.target, edge.predicate.name) for edge in query.edges
        )
        names = tuple(query.collections[vertex].name for vertex in query.vertices)
        key = (self.name, stream_id, query.vertices, names, edges, query.k)
        return context.stream_state(key, StreamState)  # type: ignore[return-value]


register(StreamingTKIJ())
