"""Tie-aware equality of top-k answers.

A top-k answer is only unique up to ties at the k-th score: every heap in the
evaluation stack (naive oracle included) keeps a processing-order-dependent
subset of the tuples tied exactly at the boundary, so two exact evaluators can
legitimately return different uid sets *at* the k-th score while agreeing
everywhere above it.  ``equivalent_top_k`` is the correctness notion the
streaming parity tests, the figure driver and the benchmarks all use: equal
score vectors, and identical tuples strictly above the k-th score.  For
workloads without boundary ties it degenerates to exact equality.
"""

from __future__ import annotations

from typing import Sequence

from ..query.graph import ResultTuple

__all__ = ["equivalent_top_k"]

_DIGITS = 9


def equivalent_top_k(
    left: Sequence[ResultTuple], right: Sequence[ResultTuple]
) -> bool:
    """Whether two top-k answers are equal up to ties at the k-th score."""
    left_scores = [round(result.score, _DIGITS) for result in left]
    right_scores = [round(result.score, _DIGITS) for result in right]
    if left_scores != right_scores:
        return False
    if not left:
        return True
    boundary = left_scores[-1]
    above_left = {
        (result.uids, score)
        for result, score in zip(left, left_scores)
        if score > boundary
    }
    above_right = {
        (result.uids, score)
        for result, score in zip(right, right_scores)
        if score > boundary
    }
    return above_left == above_right
