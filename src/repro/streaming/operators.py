"""Streaming-specific phase operators.

:class:`IncrementalTopBucketsOp` is the streaming phase (b): it bounds the
bucket-combination space with *loose* (pairwise) bounds whose primitives are
memoised across batches — granule boundaries are fixed between replans, so a
bucket pair's bounds never change and only pairs involving newly non-empty
buckets cost solver work on later batches — and prunes with the standard
``get_top_buckets``.  :class:`CandidateFilter` is the streaming pruning rule
applied by :class:`~repro.core.FilteredDistributeOp` on top of that selection:
a combination survives only if (1) at least one of its buckets received
intervals in the current batch (otherwise every tuple it can form was already
considered) and (2) its score upper bound can still crack the current top-k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, MutableMapping

from ..core.bounds import BoundsEstimator, BucketCombination, CombinationSpace
from ..core.operators import PhaseOperator, PhaseState
from ..core.statistics import BucketKey
from ..core.top_buckets import TopBucketsResult, get_top_buckets
from ..solver import BranchAndBoundSolver

__all__ = ["CandidateFilter", "IncrementalTopBucketsOp"]


@dataclass
class CandidateFilter:
    """The streaming keep-predicate over selected combinations, with counters.

    ``dirty`` maps each query vertex to the bucket keys that received intervals
    in the current batch; ``threshold`` is the score of the persistent k-th
    result (``None`` while fewer than k results exist).  A combination whose
    upper bound does not *strictly* exceed the threshold is pruned: its tuples
    can at best tie the incumbent k-th result, and top-k answers are defined up
    to boundary ties (see :func:`repro.streaming.equivalent_top_k`) — the
    persistent heap already holds k results at or above that score.
    """

    dirty: Mapping[str, frozenset[BucketKey]]
    threshold: float | None
    kept: int = 0
    clean_skipped: int = 0
    bound_pruned: int = 0

    def __call__(self, combination: BucketCombination) -> bool:
        if not any(
            bucket in self.dirty.get(vertex, frozenset())
            for vertex, bucket in combination.bucket_items()
        ):
            self.clean_skipped += 1
            return False
        if self.threshold is not None and combination.upper_bound <= self.threshold:
            self.bound_pruned += 1
            return False
        self.kept += 1
        return True


@dataclass
class IncrementalTopBucketsOp(PhaseOperator):
    """Phase (b) with cross-batch memoised pairwise bounds.

    Always uses the loose strategy: pairwise bounds are the only primitives
    that stay valid verbatim across batches (tight joint bounds would have to
    be re-solved whenever any bucket's *cardinality* changes, which defeats
    incrementality).  Queries with attribute constraints keep every bounded
    combination, mirroring :class:`~repro.core.TopBucketsSelector` — the
    count-based pruning of Definition 2 is unsound for them, while the
    dirty/threshold filtering applied downstream remains exact.
    """

    shared_bounds: MutableMapping = field(default_factory=dict)
    solver: BranchAndBoundSolver = field(default_factory=BranchAndBoundSolver)

    name = "top_buckets"

    def run(self, state: PhaseState) -> None:
        assert state.statistics is not None, (
            "StatisticsOp must run before IncrementalTopBucketsOp"
        )
        query = state.query
        space = CombinationSpace(query, state.statistics)
        estimator = BoundsEstimator(
            query, space, solver=self.solver, shared_pairwise=self.shared_bounds
        )
        combos = [estimator.loose_bounds(c) for c in space.enumerate()]
        total_results = sum(c.nb_res for c in combos)
        if query.has_attribute_constraints:
            selected = combos
        else:
            selected = get_top_buckets(combos, query.k)
        state.top_buckets = TopBucketsResult(
            selected=selected,
            strategy="loose",
            total_combinations=len(combos),
            total_results=total_results,
            selected_results=sum(c.nb_res for c in selected),
            pairs_bounded=estimator.pairwise.pairs_computed,
            tight_bounds_computed=0,
        )
