"""Streaming evaluation layer: incremental top-k joins over appending collections.

* :class:`StreamingCollection` / :class:`AppendLog` — append-only collections
  ingesting interval batches (staged, then committed per evaluation tick);
* :class:`StreamingTKIJ` — the ``tkij-streaming`` registry algorithm keeping a
  persistent top-k fresh per batch (statistics maintained incrementally via the
  context's cache, candidate bucket pairs pruned against the current k-th
  score, full replans on a doubling schedule);
* :class:`IncrementalTopBucketsOp` / :class:`CandidateFilter` — the
  streaming-specific phase operators (the pair-pruning
  ``FilteredDistributeOp``/``PrunedJoinOp`` variants live in
  :mod:`repro.core.operators`).

Importing this package registers ``tkij-streaming`` in the plan registry.
"""

from .algorithm import StreamingTKIJ
from .collection import AppendBatch, AppendLog, StreamingCollection, replay_batches
from .operators import CandidateFilter, IncrementalTopBucketsOp
from .parity import equivalent_top_k
from .state import BatchReport, StreamState, StreamingRunResult

__all__ = [
    "equivalent_top_k",
    "AppendBatch",
    "AppendLog",
    "StreamingCollection",
    "replay_batches",
    "StreamingTKIJ",
    "CandidateFilter",
    "IncrementalTopBucketsOp",
    "BatchReport",
    "StreamState",
    "StreamingRunResult",
]
