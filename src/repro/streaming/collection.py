"""Append-only streaming collections.

The paper evaluates TKIJ over static interval collections; the streaming layer
models the production setting where intervals *arrive over time*.  A
:class:`StreamingCollection` is a normal :class:`IntervalCollection` (so every
existing query, oracle and statistics path works on it unchanged) plus an
ingestion side: batches staged with :meth:`ingest` stay invisible to queries
until the streaming evaluator *commits* them, and every committed batch is
recorded in an :class:`AppendLog` so the evaluator knows exactly which
intervals are new since the last evaluation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..temporal.interval import Interval, IntervalCollection

__all__ = ["AppendBatch", "AppendLog", "StreamingCollection", "replay_batches"]


@dataclass(frozen=True)
class AppendBatch:
    """One committed batch of appended intervals (possibly empty)."""

    index: int
    intervals: tuple[Interval, ...]

    def __len__(self) -> int:
        return len(self.intervals)


class AppendLog:
    """The ordered history of committed batches of one streaming collection."""

    def __init__(self) -> None:
        self.batches: list[AppendBatch] = []

    def record(self, intervals: Sequence[Interval]) -> AppendBatch:
        """Append one batch to the log and return it."""
        batch = AppendBatch(index=len(self.batches), intervals=tuple(intervals))
        self.batches.append(batch)
        return batch

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def total_appended(self) -> int:
        """Total number of intervals across every committed batch."""
        return sum(len(batch) for batch in self.batches)


class StreamingCollection(IntervalCollection):
    """An :class:`IntervalCollection` that grows by explicitly committed batches.

    ``ingest`` *stages* a batch; the intervals become part of the collection —
    and therefore visible to queries and statistics — only when
    :meth:`commit_next` pops the batch from the pending queue.  The streaming
    evaluator commits exactly one pending batch per evaluation tick, which
    keeps "what is new" well-defined however the producer chops up the stream.
    Interval uids must stay unique across the whole stream (duplicates are
    rejected at ingest time: result tuples identify intervals by uid).
    """

    def __init__(self, name: str, intervals: Iterable[Interval] | None = None) -> None:
        super().__init__(name, list(intervals or []))
        self.log = AppendLog()
        self._pending: deque[Sequence[Interval]] = deque()
        self._uids = {interval.uid for interval in self.intervals}
        if len(self._uids) != len(self.intervals):
            raise ValueError(f"collection {name!r} has duplicate interval uids")

    # --------------------------------------------------------------- ingestion
    def ingest(self, intervals: Iterable[Interval]) -> int:
        """Stage one batch for the next commit; returns its size.

        The whole batch is validated before any state changes, so a rejected
        ingest leaves the stream exactly as it was and can be retried.
        """
        batch = list(intervals)
        seen: set[int] = set()
        for interval in batch:
            if interval.uid in self._uids or interval.uid in seen:
                raise ValueError(
                    f"interval uid {interval.uid} already present in {self.name!r}"
                )
            seen.add(interval.uid)
        self._uids |= seen
        self._pending.append(batch)
        return len(batch)

    @property
    def pending_batches(self) -> int:
        """Number of staged batches not yet committed."""
        return len(self._pending)

    def commit_next(self) -> AppendBatch | None:
        """Make the oldest staged batch part of the collection (``None`` if idle)."""
        if not self._pending:
            return None
        staged = self._pending.popleft()
        self.extend(staged)
        return self.log.record(staged)

    # --------------------------------------------------------------- factories
    @classmethod
    def from_collection(cls, collection: IntervalCollection) -> "StreamingCollection":
        """A streaming collection seeded with a static collection's contents."""
        return cls(collection.name, collection.intervals)


def replay_batches(
    collection: IntervalCollection, num_batches: int
) -> StreamingCollection:
    """Stage a static collection as ``num_batches`` contiguous pending batches.

    The returned collection starts empty; committing every batch reproduces the
    original contents (same intervals, same uids, same order), which is what
    the streaming drivers and the parity tests replay.
    """
    if num_batches <= 0:
        raise ValueError("num_batches must be positive")
    stream = StreamingCollection(collection.name)
    intervals = collection.intervals
    size = len(intervals)
    chunk = max(1, -(-size // num_batches))  # ceil division
    for start in range(0, size, chunk):
        stream.ingest(intervals[start : start + chunk])
    return stream
