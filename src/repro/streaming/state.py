"""Per-stream evaluator state and the streaming execution report.

One :class:`StreamState` lives in the :class:`~repro.plan.ExecutionContext`
(under :attr:`ExecutionContext.streams`) per evaluated stream: the persistent
top-k, the knobs resolved at the last (re)plan, the shared pairwise-bounds memo
and the growth counters the replan policy feeds on.  Each evaluation tick is
summarised as a :class:`BatchReport`; one :class:`StreamingRunResult` (the
``raw`` payload of the returned :class:`~repro.plan.RunReport`) aggregates the
ticks processed by a single ``execute`` call.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..query.graph import ResultTuple

__all__ = ["BatchReport", "StreamState", "StreamingRunResult"]

STREAM_STATE_KIND = "stream-state"
STREAM_STATE_VERSION = 1


@dataclass
class StreamState:
    """Everything the streaming evaluator carries from one batch to the next."""

    results: list[ResultTuple] = field(default_factory=list)
    """The exact top-k over everything ingested so far (sorted, score-descending)."""
    knobs: dict[str, Any] = field(default_factory=dict)
    """num_granules/strategy/assigner resolved at the last (re)plan."""
    explanation: object | None = None
    """The AutoPlanner's :class:`PlanExplanation` of the last auto (re)plan."""
    initialized: bool = False
    base_size: int = 0
    """Total intervals across collections when the current plan was built."""
    appended_since_plan: int = 0
    batches_ingested: int = 0
    replans: int = 0
    pairwise_bounds: dict = field(default_factory=dict)
    """Shared pairwise-bounds memo, valid while granule boundaries stay fixed
    (reset on every replan)."""

    def kth_score(self, k: int) -> float | None:
        """Score of the current k-th result, or ``None`` while fewer than k exist."""
        if len(self.results) < k:
            return None
        return self.results[k - 1].score

    # ------------------------------------------------------------- checkpoints
    def bounds_fingerprint(self) -> tuple[Any, int]:
        """Identity of the pairwise-bounds memo's validity epoch.

        The memo holds bound primitives that stay valid while granule
        boundaries are fixed, i.e. within one plan epoch: the granularity knob
        plus the memo's own population identify what a restored copy must match.
        """
        return (self.knobs.get("num_granules"), len(self.pairwise_bounds))

    def to_snapshot(self) -> dict[str, Any]:
        """A self-contained, picklable snapshot of the evaluator state.

        Everything is deep-copied, so the snapshot keeps *value* semantics: the
        live state can keep evolving (or the process can die) without touching
        what was captured.  Restoring with :meth:`from_snapshot` and replaying
        the remaining batches is tie-aware-identical to never having stopped —
        the checkpoint/recovery contract tested in ``tests/test_checkpoint.py``.
        """
        return copy.deepcopy(
            {
                "kind": STREAM_STATE_KIND,
                "version": STREAM_STATE_VERSION,
                "results": list(self.results),
                "knobs": dict(self.knobs),
                "explanation": self.explanation,
                "initialized": self.initialized,
                "base_size": self.base_size,
                "appended_since_plan": self.appended_since_plan,
                "batches_ingested": self.batches_ingested,
                "replans": self.replans,
                "pairwise_bounds": dict(self.pairwise_bounds),
                "bounds_fingerprint": self.bounds_fingerprint(),
            }
        )

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "StreamState":
        """Rebuild a state from :meth:`to_snapshot` output (validating the format).

        The recorded bounds fingerprint is an *integrity* check on the snapshot
        payload: a memo edited after the snapshot was taken (or mangled in
        transit) no longer matches and is dropped rather than trusted.  It
        cannot judge staleness against a restoring evaluator's future replans —
        it does not need to: the evaluator resets the memo on every replan, and
        the memo is a pure cache, so dropping it costs solver work on the next
        batch, never correctness.
        """
        if not isinstance(snapshot, Mapping) or snapshot.get("kind") != STREAM_STATE_KIND:
            raise ValueError("not a stream-state snapshot")
        if snapshot.get("version") != STREAM_STATE_VERSION:
            raise ValueError(
                f"unsupported stream-state snapshot version {snapshot.get('version')!r}"
            )
        snapshot = copy.deepcopy(dict(snapshot))
        state = cls(
            results=list(snapshot["results"]),
            knobs=dict(snapshot["knobs"]),
            explanation=snapshot.get("explanation"),
            initialized=snapshot["initialized"],
            base_size=snapshot["base_size"],
            appended_since_plan=snapshot["appended_since_plan"],
            batches_ingested=snapshot["batches_ingested"],
            replans=snapshot["replans"],
            pairwise_bounds=dict(snapshot.get("pairwise_bounds", {})),
        )
        if snapshot.get("bounds_fingerprint") != state.bounds_fingerprint():
            state.pairwise_bounds = {}
        return state


@dataclass
class BatchReport:
    """Execution summary of one streaming tick (one committed batch per stream)."""

    index: int
    inserted: int
    replanned: bool
    replan_reason: str
    statistics_cached: bool
    phase_seconds: dict[str, float] = field(default_factory=dict)
    candidates: int = 0
    pruned_clean: int = 0
    """Combinations skipped because no freshly-ingested bucket touches them."""
    pruned_bounds: int = 0
    """Dirty combinations skipped because their upper bound cannot crack the top-k."""
    intervals_skipped: int = 0
    tuples_scored: int = 0
    combinations_processed: int = 0
    kth_score: float = 0.0

    @property
    def pruned_pairs(self) -> int:
        """Total bucket combinations pruned before the join (clean + bounded)."""
        return self.pruned_clean + self.pruned_bounds

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the selected combinations pruned away this tick."""
        total = self.candidates + self.pruned_pairs
        return self.pruned_pairs / total if total else 0.0

    @property
    def seconds(self) -> float:
        """Per-batch latency (statistics excluded, matching the paper's convention)."""
        return sum(
            seconds
            for phase, seconds in self.phase_seconds.items()
            if phase != "statistics"
        )

    def describe(self) -> dict[str, float]:
        """Flat summary used by the streaming figure driver."""
        return {
            "batch": float(self.index),
            "inserted": float(self.inserted),
            "seconds": self.seconds,
            "replanned": float(self.replanned),
            "candidates": float(self.candidates),
            "pruned_pairs": float(self.pruned_pairs),
            "pruning_ratio": self.pruning_ratio,
            "intervals_skipped": float(self.intervals_skipped),
            "tuples_scored": float(self.tuples_scored),
            "kth_score": self.kth_score,
        }


@dataclass
class StreamingRunResult:
    """Raw report of one ``execute`` call: the ticks it processed plus totals."""

    results: list[ResultTuple]
    batches: list[BatchReport] = field(default_factory=list)
    batches_ingested: int = 0
    replans: int = 0
    plan_explanation: object | None = None

    @property
    def total_seconds(self) -> float:
        return sum(batch.seconds for batch in self.batches)

    @property
    def pruned_pairs(self) -> int:
        return sum(batch.pruned_pairs for batch in self.batches)

    @property
    def tuples_scored(self) -> int:
        return sum(batch.tuples_scored for batch in self.batches)

    def describe(self) -> dict[str, float]:
        """Flat summary used by the experiment harness."""
        summary = {
            "batches": float(len(self.batches)),
            "batches_ingested": float(self.batches_ingested),
            "replans": float(self.replans),
            "pruned_pairs": float(self.pruned_pairs),
            "tuples_scored": float(self.tuples_scored),
            "seconds_total": self.total_seconds,
        }
        if self.batches:
            summary["last_batch_seconds"] = self.batches[-1].seconds
            summary["last_pruning_ratio"] = self.batches[-1].pruning_ratio
        return summary
