"""Linear endpoint terms.

Every temporal predicate of the paper -- the Allen algebra as well as the extended
predicates ``justBefore``, ``shiftMeets`` and ``sparks`` -- is a conjunction of
equalities and inequalities between *linear functions of interval endpoints*
(e.g. ``end(x)``, ``start(y)``, ``end(x) + avg`` or ``10 * (end(x) - start(x))``).

Representing those linear functions explicitly serves two purposes:

* scoring -- a comparator only needs the scalar value of the term for a concrete
  tuple of intervals;
* bounding -- given box domains for the endpoints (a *bucket* confines the start
  to one granule and the end to another), the exact range of a linear term follows
  from interval arithmetic, which is what the bound solver builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .interval import Interval

__all__ = ["EndpointVar", "Term", "start_of", "end_of", "length_of", "constant"]


@dataclass(frozen=True, slots=True)
class EndpointVar:
    """One endpoint of one query variable, e.g. ``end`` of variable ``x``.

    ``var`` is the query-variable name (a vertex of the RTJ query graph) and
    ``endpoint`` is ``'start'`` or ``'end'``.
    """

    var: str
    endpoint: str

    def __post_init__(self) -> None:
        if self.endpoint not in ("start", "end"):
            raise ValueError(f"endpoint must be 'start' or 'end', got {self.endpoint!r}")

    def value(self, interval: Interval) -> float:
        """Evaluate this endpoint on a concrete interval."""
        return interval.start if self.endpoint == "start" else interval.end


@dataclass(frozen=True)
class Term:
    """A linear combination of endpoint variables plus a constant.

    ``coefficients`` maps :class:`EndpointVar` to its coefficient.  Terms are
    immutable; arithmetic operators build new terms.
    """

    coefficients: tuple[tuple[EndpointVar, float], ...] = field(default_factory=tuple)
    constant: float = 0.0

    # ------------------------------------------------------------ construction
    @staticmethod
    def _from_dict(coeffs: Mapping[EndpointVar, float], constant: float) -> "Term":
        cleaned = tuple(sorted(
            ((ev, c) for ev, c in coeffs.items() if c != 0.0),
            key=lambda item: (item[0].var, item[0].endpoint),
        ))
        return Term(cleaned, constant)

    def _as_dict(self) -> dict[EndpointVar, float]:
        return dict(self.coefficients)

    # -------------------------------------------------------------- arithmetic
    def __add__(self, other: "Term | float | int") -> "Term":
        if isinstance(other, (int, float)):
            return Term(self.coefficients, self.constant + float(other))
        coeffs = self._as_dict()
        for ev, c in other.coefficients:
            coeffs[ev] = coeffs.get(ev, 0.0) + c
        return Term._from_dict(coeffs, self.constant + other.constant)

    def __radd__(self, other: "Term | float | int") -> "Term":
        return self.__add__(other)

    def __sub__(self, other: "Term | float | int") -> "Term":
        if isinstance(other, (int, float)):
            return Term(self.coefficients, self.constant - float(other))
        return self + (other * -1.0)

    def __rsub__(self, other: "Term | float | int") -> "Term":
        return (self * -1.0) + other

    def __mul__(self, factor: float | int) -> "Term":
        factor = float(factor)
        coeffs = {ev: c * factor for ev, c in self.coefficients}
        return Term._from_dict(coeffs, self.constant * factor)

    def __rmul__(self, factor: float | int) -> "Term":
        return self.__mul__(factor)

    # -------------------------------------------------------------- evaluation
    def variables(self) -> set[str]:
        """Query-variable names referenced by this term."""
        return {ev.var for ev, _ in self.coefficients}

    def endpoint_vars(self) -> set[EndpointVar]:
        """Endpoint variables referenced by this term."""
        return {ev for ev, _ in self.coefficients}

    def evaluate(self, assignment: Mapping[str, Interval]) -> float:
        """Value of the term for a concrete assignment of intervals to variables."""
        value = self.constant
        for ev, coeff in self.coefficients:
            value += coeff * ev.value(assignment[ev.var])
        return value

    def bounds(self, domains: Mapping[EndpointVar, tuple[float, float]]) -> tuple[float, float]:
        """Exact range of the term when each endpoint lies in a given box.

        ``domains`` maps each referenced endpoint variable to a ``(low, high)``
        range.  Because the term is linear and the endpoints are treated as
        independent, the minimum / maximum are attained at box corners and interval
        arithmetic is exact.
        """
        lo = hi = self.constant
        for ev, coeff in self.coefficients:
            d_lo, d_hi = domains[ev]
            if coeff >= 0:
                lo += coeff * d_lo
                hi += coeff * d_hi
            else:
                lo += coeff * d_hi
                hi += coeff * d_lo
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*{ev.var}.{ev.endpoint}" for ev, c in self.coefficients]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def start_of(var: str) -> Term:
    """Term for the start endpoint of query variable ``var``."""
    return Term(((EndpointVar(var, "start"), 1.0),), 0.0)


def end_of(var: str) -> Term:
    """Term for the end endpoint of query variable ``var``."""
    return Term(((EndpointVar(var, "end"), 1.0),), 0.0)


def length_of(var: str) -> Term:
    """Term for the duration ``end - start`` of query variable ``var``."""
    return end_of(var) - start_of(var)


def constant(value: float) -> Term:
    """Constant term."""
    return Term((), float(value))
