"""Approximation comparators ``equals`` and ``greater``.

The paper (Figure 3) scores the equality or inequality of two interval endpoints
``a`` and ``b`` with two piecewise-linear functions of the difference
``d = a - b``, parameterised by a tolerance ``lambda`` and a slope width ``rho``:

* ``equals(a, b)`` equals 1 when ``|d| <= lambda``, decreases linearly to 0 over
  the next ``rho`` time units, and is 0 when ``|d| >= lambda + rho``.
* ``greater(a, b)`` equals 0 when ``d <= lambda``, increases linearly over the next
  ``rho`` time units, and is 1 when ``d >= lambda + rho``.

Setting ``lambda = rho = 0`` recovers the Boolean interpretation (exact equality,
strict inequality), which is how the paper's ``PB`` parameter set and the Boolean
baselines are expressed.

Both comparators are functions of the single scalar ``d``; this module also exposes
their exact image over an interval of ``d`` values, which is the primitive the
bound solver uses.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ComparatorParams",
    "PredicateParams",
    "equals_score",
    "greater_score",
    "equals_score_range",
    "greater_score_range",
]


@dataclass(frozen=True, slots=True)
class ComparatorParams:
    """``(lambda, rho)`` pair controlling the tolerance of one comparator."""

    lam: float
    rho: float

    def __post_init__(self) -> None:
        if self.lam < 0 or self.rho < 0:
            raise ValueError("lambda and rho must be non-negative")


@dataclass(frozen=True, slots=True)
class PredicateParams:
    """Scoring parameters of a predicate: one pair for each comparator kind.

    This mirrors Table 2 of the paper, where a parameter set such as ``P1`` is
    written ``(lambda_equals, rho_equals), (lambda_greater, rho_greater)``.
    """

    equals: ComparatorParams
    greater: ComparatorParams

    @classmethod
    def of(
        cls,
        lambda_equals: float,
        rho_equals: float,
        lambda_greater: float,
        rho_greater: float,
    ) -> "PredicateParams":
        """Convenience constructor taking the four scalars of Table 2."""
        return cls(
            ComparatorParams(lambda_equals, rho_equals),
            ComparatorParams(lambda_greater, rho_greater),
        )

    @classmethod
    def boolean(cls) -> "PredicateParams":
        """The Boolean parameter set ``PB = (0, 0), (0, 0)``."""
        return cls.of(0.0, 0.0, 0.0, 0.0)


def equals_score(a: float, b: float, params: ComparatorParams) -> float:
    """Degree to which ``a`` equals ``b`` (Figure 3, left curve)."""
    d = abs(a - b)
    if d <= params.lam:
        return 1.0
    if params.rho == 0.0:
        return 0.0
    if d >= params.lam + params.rho:
        return 0.0
    return (params.lam + params.rho - d) / params.rho


def greater_score(a: float, b: float, params: ComparatorParams) -> float:
    """Degree to which ``a`` is greater than ``b`` (Figure 3, right curve)."""
    d = a - b
    if params.rho == 0.0:
        return 1.0 if d > params.lam else 0.0
    if d <= params.lam:
        return 0.0
    if d >= params.lam + params.rho:
        return 1.0
    return (d - params.lam) / params.rho


def equals_score_range(
    d_min: float, d_max: float, params: ComparatorParams
) -> tuple[float, float]:
    """Exact image of ``equals`` over the difference range ``[d_min, d_max]``.

    ``equals`` viewed as a function of ``d = a - b`` is a symmetric tent: it peaks
    (value 1) on ``[-lambda, lambda]`` and decreases monotonically as ``|d|`` grows.
    Hence on a difference interval the maximum is attained at the point of smallest
    ``|d|`` and the minimum at the point of largest ``|d|``.
    """
    if d_min > d_max:
        raise ValueError("empty difference range")
    # Point of smallest |d| inside [d_min, d_max].
    if d_min <= 0.0 <= d_max:
        closest = 0.0
    elif d_max < 0.0:
        closest = d_max
    else:
        closest = d_min
    farthest = d_min if abs(d_min) >= abs(d_max) else d_max
    hi = equals_score(closest, 0.0, params)
    lo = equals_score(farthest, 0.0, params)
    return lo, hi


def greater_score_range(
    d_min: float, d_max: float, params: ComparatorParams
) -> tuple[float, float]:
    """Exact image of ``greater`` over the difference range ``[d_min, d_max]``.

    ``greater`` is non-decreasing in ``d``, so the extrema are at the range ends.
    The only subtlety is the Boolean case ``rho = 0``: the step happens strictly
    after ``lambda``, so a range whose upper end sits exactly at ``lambda`` cannot
    reach 1, while any range extending beyond ``lambda`` can.
    """
    if d_min > d_max:
        raise ValueError("empty difference range")
    lo = greater_score(d_min, 0.0, params)
    hi = greater_score(d_max, 0.0, params)
    return lo, hi
