"""Scored and Boolean temporal predicates.

A temporal predicate is a conjunction of comparisons between linear endpoint terms
(see :mod:`repro.temporal.terms`).  Its *Boolean* interpretation evaluates every
comparison exactly (strict ``>`` / exact ``=``); its *scored* interpretation
replaces each comparison with the ``equals`` / ``greater`` approximation comparator
of Figure 3 and combines them with ``min``, following the paper's scored variants
of the Allen algebra (Figure 2) and the extended predicates (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from .comparators import (
    ComparatorParams,
    PredicateParams,
    equals_score,
    equals_score_range,
    greater_score,
    greater_score_range,
)
from .interval import Interval
from .terms import EndpointVar, Term, constant, end_of, length_of, start_of

__all__ = [
    "Comparison",
    "ScoredPredicate",
    "before",
    "equals",
    "meets",
    "overlaps",
    "contains",
    "starts",
    "finished_by",
    "just_before",
    "shift_meets",
    "sparks",
    "ALLEN_PREDICATES",
    "predicate_by_name",
]

_X, _Y = "x", "y"


@dataclass(frozen=True)
class Comparison:
    """One conjunct of a predicate: ``left OP right`` with ``OP`` in {equals, greater}.

    ``kind`` is ``'equals'`` (degree of equality of the two terms) or ``'greater'``
    (degree to which ``left`` exceeds ``right``).  ``params_override`` replaces the
    predicate-level :class:`ComparatorParams` for this conjunct only; the paper uses
    this for ``justBefore``, whose equality tolerance is the average interval
    length regardless of the global parameter set.
    """

    kind: str
    left: Term
    right: Term
    params_override: ComparatorParams | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("equals", "greater"):
            raise ValueError(f"comparison kind must be 'equals' or 'greater', got {self.kind!r}")

    # ------------------------------------------------------------------ params
    def comparator_params(self, params: PredicateParams) -> ComparatorParams:
        """Effective ``(lambda, rho)`` for this conjunct under a parameter set."""
        if self.params_override is not None:
            return self.params_override
        return params.equals if self.kind == "equals" else params.greater

    # -------------------------------------------------------------- evaluation
    def score(self, assignment: Mapping[str, Interval], params: PredicateParams) -> float:
        """Scored evaluation on a concrete variable assignment."""
        a = self.left.evaluate(assignment)
        b = self.right.evaluate(assignment)
        cp = self.comparator_params(params)
        if self.kind == "equals":
            return equals_score(a, b, cp)
        return greater_score(a, b, cp)

    def holds(self, assignment: Mapping[str, Interval]) -> bool:
        """Boolean evaluation.

        Standard comparisons use exact equality / strict inequality.  A
        ``params_override`` is part of the predicate's *definition* (e.g.
        ``justBefore`` tolerates a gap of up to the average interval length), so its
        ``lambda`` is honoured here as well; the scoring parameter set is not.
        """
        a = self.left.evaluate(assignment)
        b = self.right.evaluate(assignment)
        lam = self.params_override.lam if self.params_override is not None else 0.0
        if self.kind == "equals":
            return abs(a - b) <= lam
        return a - b > lam

    def score_range(
        self,
        domains: Mapping[EndpointVar, tuple[float, float]],
        params: PredicateParams,
    ) -> tuple[float, float]:
        """Exact score range when every endpoint lies in the given box.

        The comparator only depends on the difference ``left - right``, which is a
        linear term whose range over a box follows from interval arithmetic; the
        comparator image over that range is exact (see
        :mod:`repro.temporal.comparators`).
        """
        diff = self.left - self.right
        d_min, d_max = diff.bounds(domains)
        cp = self.comparator_params(params)
        if self.kind == "equals":
            return equals_score_range(d_min, d_max, cp)
        return greater_score_range(d_min, d_max, cp)

    def variables(self) -> set[str]:
        """Query variables referenced by either side."""
        return self.left.variables() | self.right.variables()

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        """Return a copy with query-variable names substituted."""
        return replace(
            self,
            left=_rename_term(self.left, mapping),
            right=_rename_term(self.right, mapping),
        )


def _rename_term(term: Term, mapping: Mapping[str, str]) -> Term:
    coeffs = tuple(
        (EndpointVar(mapping.get(ev.var, ev.var), ev.endpoint), c)
        for ev, c in term.coefficients
    )
    return Term(coeffs, term.constant)


@dataclass(frozen=True)
class ScoredPredicate:
    """A named conjunction of :class:`Comparison` objects over variables ``x, y``.

    By convention a binary predicate is written over the canonical variable names
    ``'x'`` (left operand) and ``'y'`` (right operand); when the predicate is
    attached to a query edge the variables are renamed to the edge's vertices.
    """

    name: str
    comparisons: tuple[Comparison, ...]
    params: PredicateParams

    # -------------------------------------------------------------- evaluation
    def score(self, x: Interval, y: Interval) -> float:
        """Scored evaluation: ``min`` over the conjunct scores."""
        assignment = {_X: x, _Y: y}
        return min(c.score(assignment, self.params) for c in self.comparisons)

    def holds(self, x: Interval, y: Interval) -> bool:
        """Boolean evaluation: conjunction of the exact comparisons."""
        assignment = {_X: x, _Y: y}
        return all(c.holds(assignment) for c in self.comparisons)

    def score_range(
        self, domains: Mapping[EndpointVar, tuple[float, float]]
    ) -> tuple[float, float]:
        """Per-conjunct-exact score range over endpoint boxes, combined with min.

        The lower bound is exact only when the conjunct minima can be attained
        simultaneously, so in general this is a valid (possibly loose) relaxation;
        for the upper bound the same caveat applies.  The branch-and-bound solver
        tightens both when needed.
        """
        lo = 1.0
        hi = 1.0
        for comparison in self.comparisons:
            c_lo, c_hi = comparison.score_range(domains, self.params)
            lo = min(lo, c_lo)
            hi = min(hi, c_hi)
        return lo, hi

    def with_params(self, params: PredicateParams) -> "ScoredPredicate":
        """Return a copy using a different parameter set (overrides are preserved)."""
        return replace(self, params=params)

    def compiled_comparisons(
        self, first_var: str = _X, second_var: str = _Y
    ) -> list[tuple[bool, tuple[float, float, float, float], float, float, float]]:
        """Comparison plans ``(is_equals, endpoint coefficients, constant, lam, rho)``.

        Each plan scores one conjunct as a piecewise-linear function of
        ``a*x.start + b*x.end + c*y.start + d*y.end + constant``.  Shared by the
        scalar :meth:`compile` closure and the vectorized kernel compiler in
        :mod:`repro.columnar.kernels`, so the two paths cannot drift apart.
        """
        slot = {
            (first_var, "start"): 0,
            (first_var, "end"): 1,
            (second_var, "start"): 2,
            (second_var, "end"): 3,
        }
        compiled: list[tuple[bool, tuple[float, float, float, float], float, float, float]] = []
        for comparison in self.comparisons:
            diff = comparison.left - comparison.right
            coefficients = [0.0, 0.0, 0.0, 0.0]
            for ev, coeff in diff.coefficients:
                key = (ev.var, ev.endpoint)
                if key not in slot:
                    raise ValueError(
                        f"predicate references variable {ev.var!r}, expected "
                        f"{first_var!r} or {second_var!r}"
                    )
                coefficients[slot[key]] += coeff
            params = comparison.comparator_params(self.params)
            compiled.append(
                (
                    comparison.kind == "equals",
                    tuple(coefficients),
                    diff.constant,
                    params.lam,
                    params.rho,
                )
            )
        return compiled

    def compile(self, first_var: str = _X, second_var: str = _Y):
        """Return a fast scorer ``f(x_interval, y_interval) -> float``.

        The closure inlines the comparator arithmetic and avoids the per-call
        assignment dictionaries; it is the hot path of the local join and of the
        naive oracle.  ``first_var``/``second_var`` name the predicate's two
        variables (``x``/``y`` unless the predicate was renamed).
        """
        compiled = self.compiled_comparisons(first_var, second_var)

        def score(x: Interval, y: Interval) -> float:
            best = 1.0
            for is_equals, (a, b, c, d), constant, lam, rho in compiled:
                value = a * x.start + b * x.end + c * y.start + d * y.end + constant
                if is_equals:
                    value = abs(value)
                    if value <= lam:
                        s = 1.0
                    elif rho == 0.0 or value >= lam + rho:
                        s = 0.0
                    else:
                        s = (lam + rho - value) / rho
                else:
                    if rho == 0.0:
                        s = 1.0 if value > lam else 0.0
                    elif value <= lam:
                        s = 0.0
                    elif value >= lam + rho:
                        s = 1.0
                    else:
                        s = (value - lam) / rho
                if s < best:
                    best = s
                    if best == 0.0:
                        break
            return best

        return score

    def rename(self, x: str, y: str) -> "ScoredPredicate":
        """Return a copy whose canonical variables are renamed to ``x`` and ``y``."""
        mapping = {_X: x, _Y: y}
        return replace(self, comparisons=tuple(c.rename(mapping) for c in self.comparisons))

    def variables(self) -> set[str]:
        """Query variables referenced by the predicate."""
        result: set[str] = set()
        for comparison in self.comparisons:
            result |= comparison.variables()
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScoredPredicate({self.name!r}, {len(self.comparisons)} comparisons)"


# --------------------------------------------------------------------- factories
def before(params: PredicateParams) -> ScoredPredicate:
    """``before(x, y)``: x ends before y starts; scored as greater(start(y), end(x))."""
    return ScoredPredicate(
        "before",
        (Comparison("greater", start_of(_Y), end_of(_X)),),
        params,
    )


def equals(params: PredicateParams) -> ScoredPredicate:
    """``equals(x, y)``: same start and same end."""
    return ScoredPredicate(
        "equals",
        (
            Comparison("equals", start_of(_X), start_of(_Y)),
            Comparison("equals", end_of(_X), end_of(_Y)),
        ),
        params,
    )


def meets(params: PredicateParams) -> ScoredPredicate:
    """``meets(x, y)``: y starts exactly when x ends."""
    return ScoredPredicate(
        "meets",
        (Comparison("equals", end_of(_X), start_of(_Y)),),
        params,
    )


def overlaps(params: PredicateParams) -> ScoredPredicate:
    """``overlaps(x, y)``: x starts first, they intersect, y ends last."""
    return ScoredPredicate(
        "overlaps",
        (
            Comparison("greater", start_of(_Y), start_of(_X)),
            Comparison("greater", end_of(_X), start_of(_Y)),
            Comparison("greater", end_of(_Y), end_of(_X)),
        ),
        params,
    )


def contains(params: PredicateParams) -> ScoredPredicate:
    """``contains(x, y)``: x strictly contains y."""
    return ScoredPredicate(
        "contains",
        (
            Comparison("greater", start_of(_Y), start_of(_X)),
            Comparison("greater", end_of(_X), end_of(_Y)),
        ),
        params,
    )


def starts(params: PredicateParams) -> ScoredPredicate:
    """``starts(x, y)``: same start, x ends before y."""
    return ScoredPredicate(
        "starts",
        (
            Comparison("equals", start_of(_X), start_of(_Y)),
            Comparison("greater", end_of(_Y), end_of(_X)),
        ),
        params,
    )


def finished_by(params: PredicateParams) -> ScoredPredicate:
    """``finishedBy(x, y)``: x starts before y, both end together."""
    return ScoredPredicate(
        "finishedBy",
        (
            Comparison("greater", start_of(_Y), start_of(_X)),
            Comparison("equals", end_of(_X), end_of(_Y)),
        ),
        params,
    )


def just_before(params: PredicateParams, avg_length: float) -> ScoredPredicate:
    """``justBefore(x, y)``: x ends before y starts, by at most the average length.

    Figure 4 fixes the greater comparator to the Boolean step (``lambda = rho = 0``)
    and sets the equality tolerance to the average interval length, keeping the
    caller's ``rho_equals`` as slope width.
    """
    boolean_greater = ComparatorParams(0.0, 0.0)
    equals_override = ComparatorParams(avg_length, params.equals.rho)
    return ScoredPredicate(
        "justBefore",
        (
            Comparison("greater", start_of(_Y), end_of(_X), params_override=boolean_greater),
            Comparison("equals", end_of(_X), start_of(_Y), params_override=equals_override),
        ),
        params,
    )


def shift_meets(params: PredicateParams, avg_length: float) -> ScoredPredicate:
    """``shiftMeets(x, y)``: y starts exactly ``avg`` after x ends."""
    return ScoredPredicate(
        "shiftMeets",
        (Comparison("equals", end_of(_X) + constant(avg_length), start_of(_Y)),),
        params,
    )


def sparks(params: PredicateParams, factor: float = 10.0) -> ScoredPredicate:
    """``sparks(x, y)``: x precedes y and y lasts ``factor`` times longer than x."""
    return ScoredPredicate(
        "sparks",
        (
            Comparison("greater", start_of(_Y), end_of(_X)),
            Comparison("greater", length_of(_Y), length_of(_X) * factor),
        ),
        params,
    )


ALLEN_PREDICATES: dict[str, Callable[[PredicateParams], ScoredPredicate]] = {
    "before": before,
    "equals": equals,
    "meets": meets,
    "overlaps": overlaps,
    "contains": contains,
    "starts": starts,
    "finishedBy": finished_by,
}
"""Factories of the seven Allen predicates used in the paper (Figure 2)."""


def predicate_by_name(
    name: str, params: PredicateParams, avg_length: float | None = None
) -> ScoredPredicate:
    """Build a predicate by name; extended predicates need ``avg_length``."""
    if name in ALLEN_PREDICATES:
        return ALLEN_PREDICATES[name](params)
    if name == "justBefore":
        if avg_length is None:
            raise ValueError("justBefore requires avg_length")
        return just_before(params, avg_length)
    if name == "shiftMeets":
        if avg_length is None:
            raise ValueError("shiftMeets requires avg_length")
        return shift_meets(params, avg_length)
    if name == "sparks":
        return sparks(params)
    raise KeyError(f"unknown predicate {name!r}")
