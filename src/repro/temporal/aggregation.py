"""Monotone aggregation functions for RTJ result scores.

The score of a result tuple ``(x_1, ..., x_n)`` aggregates the partial scores of
every query edge with a monotone function ``S``.  The paper uses the normalised sum
(average) in its experiments and allows any monotone function; weighted sums and
``min`` are also provided.

Besides combining concrete scores, the join pipeline needs two more operations on
``S``:

* combining per-edge *bounds* into tuple-level bounds, which is valid verbatim for
  monotone functions (replace every partial score with its bound);
* computing the *residual threshold* one designated edge must reach for the
  aggregate to still attain a target value, given the scores already known for
  some edges and upper bounds for the rest -- this drives the threshold index
  lookups of the local join.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["Aggregation", "AverageScore", "WeightedSum", "MinScore", "SumScore"]


class Aggregation(ABC):
    """A monotone (non-decreasing in every argument) aggregation function."""

    @abstractmethod
    def combine(self, scores: Sequence[float]) -> float:
        """Aggregate the partial scores of all edges (edge order)."""

    @abstractmethod
    def residual_threshold(
        self,
        target: float,
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> float:
        """Minimum score edge ``edge_index`` needs for the aggregate to reach ``target``.

        ``known_scores`` maps already-resolved edge indices to their actual scores;
        every other edge (except ``edge_index`` itself) is assumed to attain its
        entry of ``upper_bounds``.  The returned value may be ``<= 0`` (no
        constraint) or ``> 1`` (the target is unreachable).
        """

    def upper_bound(self, edge_upper_bounds: Sequence[float]) -> float:
        """Tuple-level upper bound from per-edge upper bounds (valid by monotonicity)."""
        return self.combine(edge_upper_bounds)

    def lower_bound(self, edge_lower_bounds: Sequence[float]) -> float:
        """Tuple-level lower bound from per-edge lower bounds (valid by monotonicity)."""
        return self.combine(edge_lower_bounds)

    @staticmethod
    def _other_contributions(
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> list[tuple[int, float]]:
        """Per-edge contributions (actual or optimistic) of every edge except ``edge_index``."""
        contributions = []
        for index in range(len(upper_bounds)):
            if index == edge_index:
                continue
            contributions.append((index, known_scores.get(index, upper_bounds[index])))
        return contributions


@dataclass(frozen=True)
class SumScore(Aggregation):
    """Plain sum of edge scores."""

    def combine(self, scores: Sequence[float]) -> float:
        return float(sum(scores))

    def residual_threshold(
        self,
        target: float,
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> float:
        others = self._other_contributions(edge_index, known_scores, upper_bounds)
        return target - sum(value for _, value in others)


@dataclass(frozen=True)
class AverageScore(Aggregation):
    """Normalised sum ``sum(scores) / |E|`` -- the paper's experimental choice."""

    num_edges: int

    def __post_init__(self) -> None:
        if self.num_edges <= 0:
            raise ValueError("num_edges must be positive")

    def combine(self, scores: Sequence[float]) -> float:
        if len(scores) != self.num_edges:
            raise ValueError(
                f"expected {self.num_edges} edge scores, got {len(scores)}"
            )
        return float(sum(scores)) / self.num_edges

    def residual_threshold(
        self,
        target: float,
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> float:
        others = self._other_contributions(edge_index, known_scores, upper_bounds)
        return target * self.num_edges - sum(value for _, value in others)


@dataclass(frozen=True)
class WeightedSum(Aggregation):
    """Weighted sum with non-negative weights, one per edge (in edge order)."""

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")

    def combine(self, scores: Sequence[float]) -> float:
        if len(scores) != len(self.weights):
            raise ValueError(
                f"expected {len(self.weights)} edge scores, got {len(scores)}"
            )
        return float(sum(w * s for w, s in zip(self.weights, scores)))

    def residual_threshold(
        self,
        target: float,
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> float:
        others = self._other_contributions(edge_index, known_scores, upper_bounds)
        rest = sum(self.weights[index] * value for index, value in others)
        weight = self.weights[edge_index]
        if weight == 0:
            # The designated edge cannot influence the aggregate at all.
            return 0.0 if rest >= target else float("inf")
        return (target - rest) / weight


@dataclass(frozen=True)
class MinScore(Aggregation):
    """Minimum of edge scores (a conjunction-like semantics)."""

    def combine(self, scores: Sequence[float]) -> float:
        return float(min(scores))

    def residual_threshold(
        self,
        target: float,
        edge_index: int,
        known_scores: Mapping[int, float],
        upper_bounds: Sequence[float],
    ) -> float:
        others = self._other_contributions(edge_index, known_scores, upper_bounds)
        if any(value < target for _, value in others):
            return float("inf")
        return target
