"""Attribute constraints for hybrid RTJ queries.

The paper's conclusion lists, as future work, "the integration of interval
attributes (e.g. IP address for a connection) in the join conditions, to build
hybrid queries"; its introduction motivates exactly such a query: pairs of traffic
requests ``(x, y)`` where ``x`` ends before ``y`` starts *and the two requests
originate from different countries*.

This module implements that extension: an :class:`AttributeConstraint` is a Boolean
condition over the payloads of the two intervals joined by a query edge.  Attribute
constraints are filters — they do not contribute to the score — and a result tuple
is returned only if every constraint of every edge holds.  Because bucket
statistics are purely temporal, TKIJ evaluates hybrid queries without
count-based pruning (see :mod:`repro.core.top_buckets`); attribute-aware statistics
are the natural next step and are out of scope here, as in the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .interval import Interval

__all__ = [
    "AttributeConstraint",
    "AttributeEquals",
    "AttributeDiffers",
    "PayloadPredicate",
]


def _field(payload: Any, key: str) -> Any:
    """Fetch ``key`` from a payload that may be a mapping or an arbitrary object."""
    if payload is None:
        return None
    if isinstance(payload, Mapping):
        return payload.get(key)
    return getattr(payload, key, None)


class AttributeConstraint(ABC):
    """A Boolean condition over the payloads of the two intervals of a query edge."""

    @abstractmethod
    def matches(self, source: Interval, target: Interval) -> bool:
        """True when the pair satisfies the constraint."""

    def describe(self) -> str:
        """Human-readable rendering used by query reprs."""
        return type(self).__name__


@dataclass(frozen=True)
class AttributeEquals(AttributeConstraint):
    """Both intervals carry the same value for ``key`` (an equi-join on the attribute).

    ``target_key`` allows joining different field names (e.g. the server of one
    connection against the client of the next).  Pairs where either side lacks the
    attribute never match.
    """

    key: str
    target_key: str | None = None

    def matches(self, source: Interval, target: Interval) -> bool:
        left = _field(source.payload, self.key)
        right = _field(target.payload, self.target_key or self.key)
        return left is not None and left == right

    def describe(self) -> str:
        right = self.target_key or self.key
        return f"{self.key} == {right}"


@dataclass(frozen=True)
class AttributeDiffers(AttributeConstraint):
    """The two intervals carry different values for ``key``.

    This is the introduction's motivating constraint ("x and y originate from
    different countries").  Pairs where either side lacks the attribute never match.
    """

    key: str
    target_key: str | None = None

    def matches(self, source: Interval, target: Interval) -> bool:
        left = _field(source.payload, self.key)
        right = _field(target.payload, self.target_key or self.key)
        return left is not None and right is not None and left != right

    def describe(self) -> str:
        right = self.target_key or self.key
        return f"{self.key} != {right}"


@dataclass(frozen=True)
class PayloadPredicate(AttributeConstraint):
    """Escape hatch: an arbitrary Boolean function of the two payloads."""

    name: str
    predicate: Callable[[Any, Any], bool]

    def matches(self, source: Interval, target: Interval) -> bool:
        return bool(self.predicate(source.payload, target.payload))

    def describe(self) -> str:
        return self.name
