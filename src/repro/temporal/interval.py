"""Interval data model.

The paper represents every tuple of the input relations as a time interval with a
start and an end timestamp plus an opaque payload (IP address, hashtag, ...).  This
module provides the two basic containers used throughout the library:

* :class:`Interval` -- a single immutable interval.
* :class:`IntervalCollection` -- a named collection of intervals corresponding to
  one join input (a vertex of an RTJ query graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Interval", "IntervalCollection"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed time interval ``[start, end]`` with a unique identifier.

    Parameters
    ----------
    uid:
        Identifier, unique within its collection.
    start, end:
        Interval endpoints.  ``start <= end`` is enforced.
    payload:
        Optional application data carried along (e.g. client/server of a network
        connection, or a hashtag).  Not interpreted by the join algorithms.
    """

    uid: int
    start: float
    end: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval {self.uid}: end ({self.end}) precedes start ({self.start})"
            )

    @property
    def length(self) -> float:
        """Duration of the interval (``end - start``)."""
        return self.end - self.start

    def endpoint(self, which: str) -> float:
        """Return the ``'start'`` or ``'end'`` endpoint by name."""
        if which == "start":
            return self.start
        if which == "end":
            return self.end
        raise ValueError(f"unknown endpoint {which!r}")

    def shift(self, delta: float) -> "Interval":
        """Return a copy translated by ``delta``."""
        return Interval(self.uid, self.start + delta, self.end + delta, self.payload)

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one time point."""
        return self.start <= other.end and other.start <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval({self.uid}, [{self.start}, {self.end}])"


@dataclass
class IntervalCollection:
    """A named, ordered collection of :class:`Interval` objects.

    One collection corresponds to one vertex of an RTJ query.  The collection keeps
    intervals in insertion order and lazily materialises numpy views of the start
    and end coordinates, which the statistics and index layers use for bulk
    operations.
    """

    name: str
    intervals: list[Interval] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None
        self._by_uid: dict[int, Interval] | None = None

    # ------------------------------------------------------------------ basics
    def add(self, interval: Interval) -> None:
        """Append an interval and invalidate cached views."""
        self.intervals.append(interval)
        self._invalidate()

    def extend(self, intervals: Iterable[Interval]) -> None:
        """Append several intervals and invalidate cached views."""
        self.intervals.extend(intervals)
        self._invalidate()

    def _invalidate(self) -> None:
        self._starts = None
        self._ends = None
        self._by_uid = None

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __getitem__(self, index: int) -> Interval:
        return self.intervals[index]

    def get(self, uid: int) -> Interval:
        """Return the interval with identifier ``uid``."""
        if self._by_uid is None:
            self._by_uid = {x.uid: x for x in self.intervals}
        return self._by_uid[uid]

    # --------------------------------------------------------------- factories
    @classmethod
    def from_tuples(
        cls,
        name: str,
        tuples: Iterable[tuple[float, float]] | Sequence[tuple[float, float]],
    ) -> "IntervalCollection":
        """Build a collection from ``(start, end)`` pairs, assigning sequential ids."""
        intervals = [Interval(i, s, e) for i, (s, e) in enumerate(tuples)]
        return cls(name, intervals)

    @classmethod
    def from_arrays(
        cls, name: str, starts: Sequence[float], ends: Sequence[float]
    ) -> "IntervalCollection":
        """Build a collection from parallel arrays of starts and ends."""
        if len(starts) != len(ends):
            raise ValueError("starts and ends must have the same length")
        intervals = [Interval(i, float(s), float(e)) for i, (s, e) in enumerate(zip(starts, ends))]
        return cls(name, intervals)

    # ------------------------------------------------------------------- views
    @property
    def starts(self) -> np.ndarray:
        """Numpy array of start timestamps, in insertion order."""
        if self._starts is None:
            self._starts = np.array([x.start for x in self.intervals], dtype=float)
        return self._starts

    @property
    def ends(self) -> np.ndarray:
        """Numpy array of end timestamps, in insertion order."""
        if self._ends is None:
            self._ends = np.array([x.end for x in self.intervals], dtype=float)
        return self._ends

    # --------------------------------------------------------------- summaries
    def time_range(self) -> tuple[float, float]:
        """Smallest ``(min start, max end)`` window containing every interval."""
        if not self.intervals:
            raise ValueError(f"collection {self.name!r} is empty")
        return float(self.starts.min()), float(self.ends.max())

    def average_length(self) -> float:
        """Mean interval duration (the ``avg`` constant of justBefore/shiftMeets)."""
        if not self.intervals:
            raise ValueError(f"collection {self.name!r} is empty")
        return float((self.ends - self.starts).mean())

    def total_span(self) -> float:
        """Width of :meth:`time_range`."""
        lo, hi = self.time_range()
        return hi - lo

    def describe(self) -> dict[str, float]:
        """Summary statistics used by the experiment reports."""
        lengths = self.ends - self.starts
        lo, hi = self.time_range()
        return {
            "count": float(len(self)),
            "time_min": lo,
            "time_max": hi,
            "length_min": float(lengths.min()),
            "length_max": float(lengths.max()),
            "length_avg": float(lengths.mean()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalCollection({self.name!r}, n={len(self)})"
