"""Streaming experiment: incremental evaluation vs. full recomputation per batch.

``figure_streaming`` replays a synthetic workload as an append-only stream:
each collection is chopped into batches, one batch per collection is ingested
per tick, and ``tkij-streaming`` is evaluated after every tick.  Optionally the
static ``tkij`` algorithm re-evaluates a snapshot of the accumulated data at
the same tick (the "full recompute" arm the streaming layer is measured
against).  The sweep crosses batch count × batch size; rows are per batch,
reporting the incremental latency, the pruning counters (candidate
combinations kept vs. clean- or bound-pruned) and — when the comparison arm
runs — the full-recompute latency, join work, speedup and a tie-aware parity
check (:func:`repro.streaming.equivalent_top_k`).
"""

from __future__ import annotations

from typing import Sequence

from ..datagen.synthetic import SyntheticConfig, generate_collections
from ..mapreduce import FaultPlan
from ..plan import get_algorithm
from ..streaming import StreamingCollection, equivalent_top_k
from .harness import ResultTable, TKIJRunConfig
from .workloads import build_query

__all__ = ["figure_streaming"]


def figure_streaming(
    batch_counts: Sequence[int] = (5, 10),
    batch_sizes: Sequence[int] = (40,),
    query_name: str = "Qo,m",
    params_name: str = "P1",
    k: int = 50,
    num_granules: int = 8,
    num_reducers: int = 8,
    backend: str = "serial",
    max_workers: int | None = None,
    plan: str = "manual",
    kernel: str | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
    compare_full: bool = True,
    seed: int = 7,
    max_task_attempts: int = 4,
    speculative_slowdown: float | None = None,
    fault_plan: FaultPlan | None = None,
) -> ResultTable:
    """Per-batch streaming evaluation across a batch-count × batch-size sweep.

    The fault knobs make this the streaming chaos demo: injected task faults
    are retried inside every tick and the per-batch series stays identical to
    a fault-free sweep (only latencies move).
    """
    table = ResultTable(
        title=(
            f"Streaming — {query_name} ({params_name}), k={k}, g={num_granules}, "
            f"plan={plan}, backend={backend}"
        ),
        columns=[
            "batches", "batch_size", "batch", "inserted", "replanned",
            "seconds", "candidates", "pruned_pairs", "pruning_ratio",
            "intervals_skipped", "tuples_scored",
            "full_seconds", "full_tuples_scored", "speedup", "matches_full",
        ],
    )
    config = TKIJRunConfig(
        num_reducers=num_reducers,
        backend=backend,
        max_workers=max_workers,
        max_task_attempts=max_task_attempts,
        speculative_slowdown=speculative_slowdown,
        fault_plan=fault_plan,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    streaming_algorithm = get_algorithm("tkij-streaming")
    static_algorithm = get_algorithm("tkij")
    for num_batches in batch_counts:
        for batch_size in batch_sizes:
            total = num_batches * batch_size
            collections = list(
                generate_collections(
                    3, SyntheticConfig(size=total, start_max=10.0 * total), seed=seed
                ).values()
            )
            chunks = {
                collection.name: [
                    collection.intervals[start : start + batch_size]
                    for start in range(0, total, batch_size)
                ]
                for collection in collections
            }
            streams = [
                StreamingCollection(collection.name) for collection in collections
            ]
            query = build_query(query_name, streams, params_name, k=k)
            context = config.make_context()
            # The comparison arm gets its own context: its statistics cache
            # misses on every batch (the dataset grew), which is exactly the
            # from-scratch recomputation being measured.
            full_context = config.make_context() if compare_full else None
            try:
                for tick in range(num_batches):
                    for stream in streams:
                        stream.ingest(chunks[stream.name][tick])
                    report = streaming_algorithm.run(
                        query, context, mode=plan, num_granules=num_granules,
                        kernel=kernel,
                    )
                    batch = report.raw.batches[-1]
                    row = {
                        "batches": num_batches,
                        "batch_size": batch_size,
                        **batch.describe(),
                        "replanned": batch.replanned,
                    }
                    del row["kth_score"]
                    if full_context is not None:
                        # Same query object: the static algorithm sees the
                        # committed snapshot of the streaming collections.
                        full = static_algorithm.run(
                            query, full_context, num_granules=num_granules,
                            kernel=kernel,
                        )
                        row["full_seconds"] = full.total_seconds
                        row["full_tuples_scored"] = float(
                            full.raw.local_join_stats.tuples_scored
                        )
                        row["speedup"] = full.total_seconds / max(batch.seconds, 1e-9)
                        row["matches_full"] = equivalent_top_k(
                            report.results, full.results
                        )
                    table.add_row(**row)
            finally:
                context.close()
                if full_context is not None:
                    full_context.close()
    return table
