"""Experiment harness: result tables and registry-dispatched runners.

Every figure/table driver returns a :class:`ResultTable` whose rows are the series
the paper plots (one row per configuration point).  Benchmarks print these tables
so the reproduction numbers can be compared against the paper's shapes, and
EXPERIMENTS.md records one captured run.  All query evaluation dispatches through
the :data:`repro.plan.REGISTRY`; nothing in this module (or the figure drivers)
branches on a concrete algorithm.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core import LocalJoinConfig, TKIJ, TKIJResult
from ..datagen.synthetic import SyntheticConfig, generate_collections
from ..mapreduce import ClusterConfig, ExecutionBackend, FaultPlan
from ..plan import ExecutionContext, RunReport, get_algorithm
from ..query.graph import RTJQuery
from ..solver import BranchAndBoundSolver

__all__ = [
    "ResultTable",
    "TKIJRunConfig",
    "run_tkij",
    "run_algorithm",
    "run_single_query",
    "summarize",
]

RESULTS_DIR = Path("benchmarks") / "results"
"""Default directory for tables written by the CLI's ``--output``."""


@dataclass
class ResultTable:
    """A small column-oriented table with text/CSV/Markdown rendering."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; missing columns render as blanks."""
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width text rendering (printed by the benchmark harness)."""
        header = [self.title, ""]
        widths = {
            column: max(len(column), *(len(_fmt(row.get(column))) for row in self.rows))
            if self.rows
            else len(column)
            for column in self.columns
        }
        header.append("  ".join(column.ljust(widths[column]) for column in self.columns))
        header.append("  ".join("-" * widths[column] for column in self.columns))
        for row in self.rows:
            header.append(
                "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in self.columns)
            )
        return "\n".join(header)

    def to_csv(self) -> str:
        """RFC-4180 rendering with raw (unrounded) cell values; blank for missing."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(
                ["" if row.get(column) is None else row.get(column) for column in self.columns]
            )
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown table (title as a heading)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_fmt(row.get(column)) for column in self.columns) + " |"
            )
        return "\n".join(lines)

    def render(self, format: str = "text") -> str:
        """Render as ``text``, ``csv`` or ``markdown`` (``md``)."""
        renderers = {
            "text": self.to_text,
            "csv": self.to_csv,
            "markdown": self.to_markdown,
            "md": self.to_markdown,
        }
        if format not in renderers:
            raise ValueError(f"unknown format {format!r}; expected one of {sorted(renderers)}")
        return renderers[format]()

    def save(self, path: str | Path, results_dir: str | Path | None = None) -> Path:
        """Write the table to ``path`` and return the resolved location.

        Relative paths land under ``results_dir`` (default
        ``benchmarks/results/``), which is created when missing; the format
        follows the file extension (``.csv``, ``.md``/``.markdown``, else text).
        """
        path = Path(path)
        if not path.is_absolute():
            path = Path(results_dir if results_dir is not None else RESULTS_DIR) / path
        path.parent.mkdir(parents=True, exist_ok=True)
        suffix = path.suffix.lower().lstrip(".")
        format = {"csv": "csv", "md": "markdown", "markdown": "markdown"}.get(suffix, "text")
        path.write_text(self.render(format) + "\n", encoding="utf-8")
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _fmt(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True)
class TKIJRunConfig:
    """One TKIJ configuration point of an experiment.

    ``backend``/``max_workers`` select the execution backend of the simulated
    cluster (``serial``, ``thread`` or ``process``), so any figure driver can
    run its joins serially or in parallel.  ``plan`` selects who configures the
    evaluator: ``manual`` uses this config's knobs verbatim, ``auto`` lets the
    cost-based :class:`repro.plan.AutoPlanner` choose granularity, strategy and
    assigner from collected statistics.  The fault-tolerance knobs
    (``max_task_attempts``, ``speculative_slowdown``, ``fault_plan``) flow into
    the cluster config — see DESIGN.md §9 — so demo runs can inject
    deterministic chaos and still reproduce the fault-free figures.
    """

    num_granules: int = 20
    strategy: str = "loose"
    assigner: str = "dtb"
    num_reducers: int = 8
    num_mappers: int = 4
    backend: str = "serial"
    max_workers: int | None = None
    use_index: bool = True
    early_termination: bool = True
    solver_max_nodes: int = 64
    plan: str = "manual"
    kernel: str | None = None
    """Local-join kernel.  ``None`` defers: scalar under manual planning, the
    planner's pick under ``plan="auto"``.  An explicit value always wins."""
    max_task_attempts: int = 4
    speculative_slowdown: float | None = None
    fault_plan: FaultPlan | None = None
    transfer: str | None = None
    """Shuffle transfer strategy (``inline``/``pickle``/``shm``).  ``None``
    defers: the backend default under manual planning, the planner's pick under
    ``plan="auto"``.  An explicit value always wins."""
    memory_budget_bytes: int | None = None
    """Shuffle memory budget; partitions exceeding it spill to sorted on-disk
    runs and the reduce phase streams over their merge (DESIGN.md §10)."""

    def make_cluster(self) -> ClusterConfig:
        """The simulated-cluster description of this configuration."""
        return ClusterConfig(
            num_reducers=self.num_reducers,
            num_mappers=self.num_mappers,
            backend=self.backend,
            max_workers=self.max_workers,
            max_task_attempts=self.max_task_attempts,
            speculative_slowdown=self.speculative_slowdown,
            fault_plan=self.fault_plan,
            transfer=self.transfer,
            memory_budget_bytes=self.memory_budget_bytes,
        )

    def make_context(self, backend: ExecutionBackend | None = None) -> ExecutionContext:
        """A fresh execution context for this configuration.

        ``backend`` injects an already-created (shared) execution backend; the
        caller keeps ownership of it.  Close the context (or use it as a context
        manager) to release any backend it created itself.
        """
        return ExecutionContext(cluster=self.make_cluster(), backend=backend)

    def plan_knobs(self) -> dict[str, Any]:
        """The TKIJ plan knobs encoded by this configuration."""
        knobs: dict[str, Any] = {
            "mode": self.plan,
            "num_granules": self.num_granules,
            "strategy": self.strategy,
            "assigner": self.assigner,
            "join_config": LocalJoinConfig(
                use_index=self.use_index,
                early_termination=self.early_termination,
                kernel=self.kernel or "scalar",
            ),
            "solver": BranchAndBoundSolver(max_nodes=self.solver_max_nodes),
        }
        if self.kernel is not None:
            # Forwarded as an explicit knob so it beats the auto planner's pick.
            knobs["kernel"] = self.kernel
        if self.transfer is not None:
            knobs["transfer"] = self.transfer
        if self.memory_budget_bytes is not None:
            knobs["memory_budget_bytes"] = self.memory_budget_bytes
        return knobs

    def make_runner(self, backend: ExecutionBackend | None = None) -> TKIJ:
        """Instantiate the TKIJ evaluator for this configuration.

        ``backend`` injects an already-created (shared) execution backend; the
        caller keeps ownership of it.
        """
        return TKIJ(
            num_granules=self.num_granules,
            strategy=self.strategy,
            assigner=self.assigner,
            cluster=self.make_cluster(),
            join_config=LocalJoinConfig(
                use_index=self.use_index,
                early_termination=self.early_termination,
                kernel=self.kernel or "scalar",
            ),
            solver=BranchAndBoundSolver(max_nodes=self.solver_max_nodes),
            backend=backend,
        )


def run_tkij(
    query: RTJQuery,
    config: TKIJRunConfig | None = None,
    backend: ExecutionBackend | None = None,
    context: ExecutionContext | None = None,
) -> TKIJResult:
    """Run one query under one configuration and return the execution report.

    Dispatches through the algorithm registry (``repro.plan.REGISTRY['tkij']``).
    Pass ``context`` to share worker pools *and* the statistics cache across many
    queries (figure drivers do — phase (a) then runs once per dataset); without
    it a transient context lives only for this call (``backend`` optionally
    injects a caller-owned worker pool into it).

    With a shared ``context`` the *context's* cluster is authoritative: the
    config's execution fields (``backend``/``max_workers``) are ignored, and a
    disagreement on the cluster shape (``num_reducers``/``num_mappers``) —
    which would silently change the measured metrics — is rejected.
    """
    config = config or TKIJRunConfig()
    owns_context = context is None
    if context is not None and (
        config.num_reducers != context.cluster.num_reducers
        or config.num_mappers != context.cluster.num_mappers
    ):
        raise ValueError(
            f"config cluster shape ({config.num_reducers}r/{config.num_mappers}m) "
            f"disagrees with the shared context "
            f"({context.cluster.num_reducers}r/{context.cluster.num_mappers}m); "
            "build the context from the same configuration"
        )
    context = context or config.make_context(backend)
    try:
        report = get_algorithm("tkij").run(query, context, **config.plan_knobs())
        return report.raw
    finally:
        if owns_context:
            context.close()


def run_algorithm(
    name: str,
    query: RTJQuery,
    context: ExecutionContext,
    **knobs: Any,
) -> RunReport:
    """Run any registered algorithm on a query and return its execution report."""
    return get_algorithm(name).run(query, context, **knobs)


def run_single_query(
    algorithm: str = "tkij",
    query_name: str = "Qo,m",
    size: int = 200,
    k: int = 20,
    params_name: str = "P1",
    options: Mapping[str, Any] | None = None,
    backend: str = "serial",
    max_workers: int | None = None,
    num_reducers: int = 8,
    seed: int = 7,
    max_task_attempts: int = 4,
    speculative_slowdown: float | None = None,
    fault_plan: FaultPlan | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Generic driver: one Table-1 query, one registered algorithm, one report.

    Boolean-only algorithms automatically get the Boolean parameter set (PB).
    ``options`` holds generic knob candidates (``mode``, ``num_granules``, ...);
    each algorithm picks the subset it understands via ``plan_knobs``, so this
    driver needs no per-algorithm branches.  ``fault_plan`` (with
    ``max_task_attempts``/``speculative_slowdown``) turns the run into a chaos
    demo: faults are injected into every Map-Reduce task, retried away, and the
    discarded attempts are tabulated alongside the usual metrics.
    """
    from .workloads import build_query

    algo = get_algorithm(algorithm)
    params = params_name if algo.scored else "PB"
    collections = list(
        generate_collections(3, SyntheticConfig(size=size), seed=seed).values()
    )
    query = build_query(query_name, collections, params, k=k)
    config = TKIJRunConfig(
        num_reducers=num_reducers,
        backend=backend,
        max_workers=max_workers,
        max_task_attempts=max_task_attempts,
        speculative_slowdown=speculative_slowdown,
        fault_plan=fault_plan,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with config.make_context() as context:
        plan = algo.plan(query, context, **algo.plan_knobs(options or {}))
        report = algo.execute(plan)

    table = ResultTable(
        title=f"{algo.title} on {query_name} ({params}, |Ci|={size}, k={k})",
        columns=["metric", "value"],
    )
    for knob, value in plan.knobs.items():
        # Only scalar knobs tabulate usefully (not solver/join-config objects).
        if isinstance(value, (int, float, str, bool)):
            table.add_row(metric=f"knob_{knob}", value=value)
    for metric, value in report.describe().items():
        table.add_row(metric=metric, value=value)
    if fault_plan is not None or speculative_slowdown is not None:
        failed = sum(len(metrics.failed_attempts) for metrics in report.metrics)
        retried = sum(metrics.retried_tasks for metrics in report.metrics)
        launches = sum(metrics.speculative_launches for metrics in report.metrics)
        wins = sum(metrics.speculative_wins for metrics in report.metrics)
        table.add_row(metric="failed_attempts", value=float(failed))
        table.add_row(metric="retried_tasks", value=float(retried))
        table.add_row(metric="speculative_launches", value=float(launches))
        table.add_row(metric="speculative_wins", value=float(wins))
    if report.explanation is not None:
        for index, reason in enumerate(report.explanation.reasons):
            table.add_row(metric=f"plan_reason_{index}", value=reason)
    return table


def summarize(results: Mapping[str, TKIJResult], keys: Sequence[str]) -> ResultTable:
    """Tabulate selected metrics of several named runs."""
    table = ResultTable(title="TKIJ runs", columns=["run", *keys])
    for name, result in results.items():
        summary = result.describe()
        table.add_row(run=name, **{key: summary.get(key) for key in keys})
    return table
