"""Experiment harness: result tables and common runners.

Every figure/table driver returns a :class:`ResultTable` whose rows are the series
the paper plots (one row per configuration point).  Benchmarks print these tables
so the reproduction numbers can be compared against the paper's shapes, and
EXPERIMENTS.md records one captured run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core import TKIJ, LocalJoinConfig, TKIJResult
from ..mapreduce import ClusterConfig, ExecutionBackend
from ..query.graph import RTJQuery
from ..solver import BranchAndBoundSolver

__all__ = ["ResultTable", "TKIJRunConfig", "run_tkij"]


@dataclass
class ResultTable:
    """A small column-oriented table with text rendering for benchmark output."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; missing columns render as blanks."""
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width text rendering (printed by the benchmark harness)."""
        header = [self.title, ""]
        widths = {
            column: max(len(column), *(len(_fmt(row.get(column))) for row in self.rows))
            if self.rows
            else len(column)
            for column in self.columns
        }
        header.append("  ".join(column.ljust(widths[column]) for column in self.columns))
        header.append("  ".join("-" * widths[column] for column in self.columns))
        for row in self.rows:
            header.append(
                "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in self.columns)
            )
        return "\n".join(header)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _fmt(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass(frozen=True)
class TKIJRunConfig:
    """One TKIJ configuration point of an experiment.

    ``backend``/``max_workers`` select the execution backend of the simulated
    cluster (``serial``, ``thread`` or ``process``), so any figure driver can
    run its joins serially or in parallel.
    """

    num_granules: int = 20
    strategy: str = "loose"
    assigner: str = "dtb"
    num_reducers: int = 8
    num_mappers: int = 4
    backend: str = "serial"
    max_workers: int | None = None
    use_index: bool = True
    early_termination: bool = True
    solver_max_nodes: int = 64

    def make_runner(self, backend: ExecutionBackend | None = None) -> TKIJ:
        """Instantiate the TKIJ evaluator for this configuration.

        ``backend`` injects an already-created (shared) execution backend; the
        caller keeps ownership of it.
        """
        return TKIJ(
            num_granules=self.num_granules,
            strategy=self.strategy,
            assigner=self.assigner,
            cluster=ClusterConfig(
                num_reducers=self.num_reducers,
                num_mappers=self.num_mappers,
                backend=self.backend,
                max_workers=self.max_workers,
            ),
            join_config=LocalJoinConfig(
                use_index=self.use_index, early_termination=self.early_termination
            ),
            solver=BranchAndBoundSolver(max_nodes=self.solver_max_nodes),
            backend=backend,
        )

def run_tkij(
    query: RTJQuery,
    config: TKIJRunConfig | None = None,
    backend: ExecutionBackend | None = None,
) -> TKIJResult:
    """Run one query under one configuration and return the execution report.

    Without ``backend``, worker pools live only for this call; pass a shared
    backend (``repro.mapreduce.create_backend``, a context manager) to
    amortise pool start-up across many queries — the backend then overrides
    the config's ``backend``/``max_workers`` fields and the caller closes it.
    """
    config = config or TKIJRunConfig()
    with config.make_runner(backend) as runner:
        return runner.execute(query)


def summarize(results: Mapping[str, TKIJResult], keys: Sequence[str]) -> ResultTable:
    """Tabulate selected metrics of several named runs."""
    table = ResultTable(title="TKIJ runs", columns=["run", *keys])
    for name, result in results.items():
        summary = result.describe()
        table.add_row(run=name, **{key: summary.get(key) for key in keys})
    return table
