"""Scalability experiments against the Boolean baselines (Figure 11) and the
statistics-collection timing reported in Section 4 of the paper.

Baseline arms dispatch through the algorithm registry — the driver holds only a
query -> algorithm-name table (the paper's protocol), never per-algorithm code.
"""

from __future__ import annotations

from typing import Sequence

from ..core.statistics import collect_statistics_mapreduce
from ..datagen.synthetic import SyntheticConfig, generate_collections
from ..mapreduce import ClusterConfig, MapReduceEngine
from ..plan import get_algorithm
from .harness import ResultTable, TKIJRunConfig, run_algorithm, run_tkij
from .workloads import build_query

__all__ = ["figure11_scalability", "statistics_collection_times"]

# Baseline used per query, as in the paper: All-Matrix for the sequence query Qb,b,
# RCCIS for the colocation queries Qo,o and Qs,m.
_BASELINE_FOR_QUERY = {
    "Qb,b": "allmatrix",
    "Qo,o": "rccis",
    "Qs,m": "rccis",
}


def figure11_scalability(
    sizes: Sequence[int] = (500, 1_000, 2_000),
    queries: Sequence[str] = ("Qb,b", "Qo,o", "Qs,m"),
    k: int = 100,
    num_granules: int = 10,
    num_reducers: int = 8,
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    plan: str = "manual",
    kernel: str | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """TKIJ (scored P1 and Boolean PB) against All-Matrix / RCCIS while |Ci| grows."""
    table = ResultTable(
        title=f"Figure 11 — scalability (g={num_granules}, k={k})",
        columns=["query", "size", "system", "total_seconds", "shuffle_records", "results"],
    )
    base = TKIJRunConfig(
        num_reducers=num_reducers,
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with base.make_context() as context:
        for query_name in queries:
            baseline_name = _BASELINE_FOR_QUERY.get(query_name, "rccis")
            baseline = get_algorithm(baseline_name)
            for size in sizes:
                collections = list(
                    generate_collections(3, SyntheticConfig(size=size), seed=seed).values()
                )

                for params_name in ("P1", "PB"):
                    query = build_query(query_name, collections, params_name, k=k)
                    config = TKIJRunConfig(
                        num_granules=num_granules,
                        num_reducers=num_reducers,
                        plan=plan,
                        kernel=kernel,
                        transfer=transfer,
                        memory_budget_bytes=memory_budget_bytes,
                    )
                    result = run_tkij(query, config, context=context)
                    table.add_row(
                        query=query_name,
                        size=size,
                        system=f"TKIJ-{params_name}",
                        total_seconds=result.total_seconds,
                        shuffle_records=result.join_metrics.shuffle_records,
                        results=len(result.results),
                    )

                boolean_query = build_query(query_name, collections, "PB", k=k)
                report = run_algorithm(baseline_name, boolean_query, context)
                table.add_row(
                    query=query_name,
                    size=size,
                    system=f"{baseline.title}-PB",
                    total_seconds=report.total_seconds,
                    shuffle_records=report.shuffle_records,
                    results=len(report.results),
                )
    return table


def statistics_collection_times(
    sizes: Sequence[int] = (1_000, 5_000, 20_000),
    num_granules: int = 20,
    num_collections: int = 3,
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Statistics-collection time versus collection size (Section 4, "Statistics collection")."""
    table = ResultTable(
        title=f"Statistics collection (g={num_granules}, {num_collections} collections)",
        columns=["size", "seconds", "shuffle_records", "nonempty_buckets"],
    )
    cluster = ClusterConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with MapReduceEngine(cluster) as engine:
        for size in sizes:
            collections = generate_collections(
                num_collections, SyntheticConfig(size=size), seed=seed
            )
            statistics = collect_statistics_mapreduce(collections, num_granules, engine)
            metrics = statistics.collection_metrics
            first = next(iter(collections))
            table.add_row(
                size=size,
                seconds=metrics.elapsed_seconds if metrics else 0.0,
                shuffle_records=metrics.shuffle_records if metrics else 0,
                nonempty_buckets=statistics.nonempty_bucket_count(first),
            )
    return table
