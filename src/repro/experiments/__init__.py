"""Experiment catalogue and per-figure drivers reproducing the paper's evaluation."""

from .harness import (
    ResultTable,
    TKIJRunConfig,
    run_algorithm,
    run_single_query,
    run_tkij,
)
from .network_figures import (
    figure12_network_distribution,
    figure13_network_scalability,
    figure14_network_effect_k,
    network_collections,
)
from .scalability_figures import figure11_scalability, statistics_collection_times
from .streaming_figures import figure_streaming
from .synthetic_figures import (
    effect_of_k_synthetic,
    figure7_score_distribution,
    figure8_workload_distribution,
    figure9_topbuckets_strategies,
    figure10_granules,
)
from .workloads import PARAMETERS, QUERIES, QuerySpec, build_query, star_spec

__all__ = [
    "ResultTable",
    "TKIJRunConfig",
    "run_algorithm",
    "run_single_query",
    "run_tkij",
    "figure12_network_distribution",
    "figure13_network_scalability",
    "figure14_network_effect_k",
    "network_collections",
    "figure11_scalability",
    "statistics_collection_times",
    "figure_streaming",
    "effect_of_k_synthetic",
    "figure7_score_distribution",
    "figure8_workload_distribution",
    "figure9_topbuckets_strategies",
    "figure10_granules",
    "PARAMETERS",
    "QUERIES",
    "QuerySpec",
    "build_query",
    "star_spec",
]
