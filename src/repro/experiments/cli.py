"""Command-line entry point for the experiment drivers.

``python -m repro.experiments <experiment> [options]`` regenerates one of the
paper's tables/figures at a chosen scale and prints (or saves) the measured series.
This is a convenience wrapper around the same drivers the benchmarks call; the
benchmark suite remains the canonical way to reproduce everything at once.
"""

from __future__ import annotations

import argparse
from typing import Callable, Sequence

from ..mapreduce import BACKEND_NAMES
from .harness import ResultTable
from .network_figures import (
    figure12_network_distribution,
    figure13_network_scalability,
    figure14_network_effect_k,
)
from .scalability_figures import figure11_scalability, statistics_collection_times
from .synthetic_figures import (
    effect_of_k_synthetic,
    figure7_score_distribution,
    figure8_workload_distribution,
    figure9_topbuckets_strategies,
    figure10_granules,
)

__all__ = ["EXPERIMENTS", "build_parser", "run_experiment", "main"]


def _sizes(argument: str) -> tuple[int, ...]:
    return tuple(int(part) for part in argument.split(",") if part)


def _positive_int(argument: str) -> int:
    value = int(argument)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _backend_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """Execution-backend options forwarded to every TKIJ-running driver."""
    return {"backend": args.backend, "max_workers": args.max_workers}


EXPERIMENTS: dict[str, Callable[[argparse.Namespace], ResultTable]] = {
    # fig7 and fig12 only characterise the data; they never run the engine and
    # therefore take no backend options.
    "fig7": lambda args: figure7_score_distribution(size=args.size),
    "fig8": lambda args: figure8_workload_distribution(
        sizes=args.sizes or (args.size,),
        k=args.k,
        num_granules=args.granules,
        **_backend_kwargs(args),
    ),
    "fig9": lambda args: figure9_topbuckets_strategies(
        size=args.size, num_granules=args.granules, k=args.k, **_backend_kwargs(args)
    ),
    "fig10": lambda args: figure10_granules(
        size=args.size, k=args.k, **_backend_kwargs(args)
    ),
    "fig11": lambda args: figure11_scalability(
        sizes=args.sizes or (args.size,),
        k=args.k,
        num_granules=args.granules,
        **_backend_kwargs(args),
    ),
    "fig12": lambda args: figure12_network_distribution(),
    "fig13": lambda args: figure13_network_scalability(
        k=args.k, num_granules=args.granules, **_backend_kwargs(args)
    ),
    "fig14": lambda args: figure14_network_effect_k(
        num_granules=args.granules, **_backend_kwargs(args)
    ),
    "effect-k": lambda args: effect_of_k_synthetic(
        size=args.size, num_granules=args.granules, **_backend_kwargs(args)
    ),
    "statistics": lambda args: statistics_collection_times(
        sizes=args.sizes or (1_000, 5_000, 20_000),
        num_granules=args.granules,
        **_backend_kwargs(args),
    ),
}
"""Experiment name -> driver invocation (parameterised by the parsed CLI options)."""


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one experiment of the TKIJ paper at laptop scale.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment to run")
    parser.add_argument("--size", type=int, default=400, help="intervals per collection")
    parser.add_argument(
        "--sizes", type=_sizes, default=None, help="comma-separated sizes for sweeps"
    )
    parser.add_argument("--k", type=int, default=100, help="number of results to return")
    parser.add_argument("--granules", type=int, default=10, help="granules per collection")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="execution backend for map/reduce tasks",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        help="worker pool size for the thread/process backends (default: CPU count)",
    )
    parser.add_argument("--output", type=str, default=None, help="write the table to this file")
    return parser


def run_experiment(name: str, args: argparse.Namespace) -> ResultTable:
    """Run one named experiment with the parsed options."""
    return EXPERIMENTS[name](args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    table = run_experiment(args.experiment, args)
    text = table.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
