"""Command-line entry point for the experiment drivers.

``python -m repro.experiments <experiment> [options]`` regenerates one of the
paper's tables/figures at a chosen scale and prints (or saves) the measured
series.  All query evaluation dispatches through the algorithm registry
(:data:`repro.plan.REGISTRY`): ``--list-algorithms`` shows what is registered,
the generic ``run`` experiment evaluates one query with ``--algorithm``, and
``--plan auto`` hands TKIJ's knobs to the cost-based planner on any
TKIJ-running experiment.  ``--output PATH`` writes the table under
``benchmarks/results/`` (absolute paths are honoured; ``.csv``/``.md`` select
the format).

Two serving subcommands ride on the same entry point: ``python -m
repro.experiments serve`` starts the long-lived query server of
:mod:`repro.serving` and ``... load`` registers synthetic collections on a
running server (both documented in docs/PROTOCOL.md and the README's
"Serving" section; ``repro-serve`` is the installed alias of ``serve``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from ..core import KERNELS
from ..mapreduce import BACKEND_NAMES, TRANSFER_NAMES, FaultPlan
from ..plan import PLAN_MODES, REGISTRY, available_algorithms
from .harness import ResultTable, run_single_query
from .network_figures import (
    figure12_network_distribution,
    figure13_network_scalability,
    figure14_network_effect_k,
)
from .scalability_figures import figure11_scalability, statistics_collection_times
from .streaming_figures import figure_streaming
from .synthetic_figures import (
    effect_of_k_synthetic,
    figure7_score_distribution,
    figure8_workload_distribution,
    figure9_topbuckets_strategies,
    figure10_granules,
)
from .workloads import QUERIES

__all__ = [
    "EXPERIMENTS",
    "FAULT_EXPERIMENTS",
    "ENGINELESS_EXPERIMENTS",
    "build_parser",
    "list_algorithms_table",
    "load_fault_plan",
    "validate_fault_options",
    "run_experiment",
    "main",
]


def _sizes(argument: str) -> tuple[int, ...]:
    return tuple(int(part) for part in argument.split(",") if part)


def _positive_int(argument: str) -> int:
    value = int(argument)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _slowdown_factor(argument: str) -> float:
    value = float(argument)
    if value <= 1.0:
        raise argparse.ArgumentTypeError("must be a factor greater than 1.0")
    return value


_BYTE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _byte_size(argument: str) -> int:
    """A positive byte count, accepting ``k``/``m``/``g`` binary suffixes (``64m``)."""
    text = argument.strip().lower().removesuffix("b")
    multiplier = 1
    if text and text[-1] in _BYTE_SUFFIXES:
        multiplier = _BYTE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        value = int(text) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {argument!r}; expected e.g. 1048576, 64k, 16M or 1g"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive byte count")
    return value


def _backend_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """Execution-backend options forwarded to every engine-running driver."""
    return {
        "backend": args.backend,
        "max_workers": args.max_workers,
        "transfer": args.transfer,
        "memory_budget_bytes": args.memory_budget,
    }


def _run_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """Backend plus planning options, for drivers that accept ``--plan auto``."""
    return {**_backend_kwargs(args), "plan": args.plan, "kernel": args.kernel}


def _fault_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """Fault-tolerance options, for the experiments that support chaos demos."""
    return {
        # None means "not passed": resolve to the engine default here, so the
        # default lives in exactly one place besides ClusterConfig.
        "max_task_attempts": 4 if args.max_task_attempts is None else args.max_task_attempts,
        "speculative_slowdown": args.speculative_slowdown,
        "fault_plan": load_fault_plan(args.fault_plan),
    }


def load_fault_plan(source: "str | FaultPlan | None") -> FaultPlan | None:
    """Resolve the ``--fault-plan`` option (a JSON path) into a :class:`FaultPlan`.

    Already-built plans and ``None`` pass through, so drivers can be called
    programmatically with either form.  Malformed files raise ``ValueError``
    with the parse error (surfaced as an argparse error by :func:`main`).
    """
    if source is None or isinstance(source, FaultPlan):
        return source
    return FaultPlan.load(source)


FAULT_EXPERIMENTS = frozenset({"run", "streaming"})
"""Experiments that accept the fault-tolerance options (the chaos demos)."""

ENGINELESS_EXPERIMENTS = frozenset({"fig7", "fig12"})
"""Experiments that only characterise data and never run the engine."""


def validate_fault_options(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Reject conflicting fault/experiment knob combinations with clear errors."""
    fault_flags = [
        flag
        for flag, value in (
            ("--fault-plan", args.fault_plan),
            ("--speculative-slowdown", args.speculative_slowdown),
            ("--max-task-attempts", args.max_task_attempts),
        )
        if value is not None
    ]
    if fault_flags and args.experiment in ENGINELESS_EXPERIMENTS:
        parser.error(
            f"{'/'.join(fault_flags)} cannot apply to {args.experiment!r}: "
            "it only characterises data and never runs the engine"
        )
    if fault_flags and args.experiment not in FAULT_EXPERIMENTS:
        parser.error(
            f"{'/'.join(fault_flags)} is only supported by the "
            f"{'/'.join(sorted(FAULT_EXPERIMENTS))} experiments"
        )
    if args.speculative_slowdown is not None and args.backend == "serial":
        parser.error(
            "--speculative-slowdown needs a pool backend "
            "(--backend thread or process); the serial backend cannot race a backup"
        )
    shuffle_flags = [
        flag
        for flag, value in (
            ("--transfer", args.transfer),
            ("--memory-budget", args.memory_budget),
        )
        if value is not None
    ]
    if shuffle_flags and args.experiment in ENGINELESS_EXPERIMENTS:
        parser.error(
            f"{'/'.join(shuffle_flags)} cannot apply to {args.experiment!r}: "
            "it only characterises data and never runs the engine"
        )


EXPERIMENTS: dict[str, Callable[[argparse.Namespace], ResultTable]] = {
    # fig7 and fig12 only characterise the data; they never run the engine and
    # therefore take no backend/plan options.  fig8/fig9/fig10 sweep an
    # assigner/strategy/granularity knob and are therefore always manually
    # planned (auto would override the knob under study).
    "fig7": lambda args: figure7_score_distribution(size=args.size),
    "fig8": lambda args: figure8_workload_distribution(
        sizes=args.sizes or (args.size,),
        k=args.k,
        num_granules=args.granules,
        **_backend_kwargs(args),
    ),
    "fig9": lambda args: figure9_topbuckets_strategies(
        size=args.size, num_granules=args.granules, k=args.k, **_backend_kwargs(args)
    ),
    "fig10": lambda args: figure10_granules(
        size=args.size, k=args.k, **_backend_kwargs(args)
    ),
    "fig11": lambda args: figure11_scalability(
        sizes=args.sizes or (args.size,),
        k=args.k,
        num_granules=args.granules,
        **_run_kwargs(args),
    ),
    "fig12": lambda args: figure12_network_distribution(),
    "fig13": lambda args: figure13_network_scalability(
        k=args.k, num_granules=args.granules, **_run_kwargs(args)
    ),
    "fig14": lambda args: figure14_network_effect_k(
        num_granules=args.granules, **_run_kwargs(args)
    ),
    "effect-k": lambda args: effect_of_k_synthetic(
        size=args.size, num_granules=args.granules, **_run_kwargs(args)
    ),
    "statistics": lambda args: statistics_collection_times(
        sizes=args.sizes or (1_000, 5_000, 20_000),
        num_granules=args.granules,
        **_backend_kwargs(args),
    ),
    # Streaming: ingest the workload batch by batch through tkij-streaming,
    # comparing each batch against full recomputation.
    "streaming": lambda args: figure_streaming(
        batch_counts=args.stream_batches or (5, 10),
        batch_sizes=args.stream_batch_size or (40,),
        query_name=args.query,
        k=args.k,
        num_granules=args.granules,
        **_run_kwargs(args),
        **_fault_kwargs(args),
    ),
    # Generic registry dispatch: one query, any registered algorithm.
    "run": lambda args: run_single_query(
        algorithm=args.algorithm,
        query_name=args.query,
        size=args.size,
        k=args.k,
        options={
            "mode": args.plan,
            "num_granules": args.granules,
            "kernel": args.kernel,
            "transfer": args.transfer,
            "memory_budget_bytes": args.memory_budget,
        },
        backend=args.backend,
        max_workers=args.max_workers,
        transfer=args.transfer,
        memory_budget_bytes=args.memory_budget,
        **_fault_kwargs(args),
    ),
}
"""Experiment name -> driver invocation (parameterised by the parsed CLI options)."""


def list_algorithms_table() -> ResultTable:
    """The registry contents as a table (``--list-algorithms``)."""
    table = ResultTable(
        title="Registered algorithms",
        columns=["name", "title", "semantics", "description"],
    )
    for name in available_algorithms():
        algorithm = REGISTRY[name]
        doc = (algorithm.__doc__ or "").strip().splitlines()
        table.add_row(
            name=name,
            title=algorithm.title,
            semantics="scored" if algorithm.scored else "boolean",
            description=doc[0] if doc else "",
        )
    return table


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one experiment of the TKIJ paper at laptop scale.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS),
        help="experiment to run",
    )
    parser.add_argument("--size", type=int, default=400, help="intervals per collection")
    parser.add_argument(
        "--sizes", type=_sizes, default=None, help="comma-separated sizes for sweeps"
    )
    parser.add_argument("--k", type=int, default=100, help="number of results to return")
    parser.add_argument("--granules", type=int, default=10, help="granules per collection")
    parser.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="tkij",
        help="registered algorithm evaluated by the 'run' experiment",
    )
    parser.add_argument(
        "--plan",
        choices=list(PLAN_MODES),
        default="manual",
        help="who configures TKIJ: 'manual' uses the CLI knobs, 'auto' the cost-based planner",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help=(
            "local-join kernel: 'scalar' (per-tuple Python), 'vector' (columnar "
            "numpy batches) or 'sweep' (sorted-endpoint windows via searchsorted); "
            "default lets --plan auto decide and is scalar otherwise"
        ),
    )
    parser.add_argument(
        "--list-algorithms",
        action="store_true",
        help="list the registered algorithms and exit",
    )
    parser.add_argument(
        "--query",
        choices=sorted(QUERIES),
        default="Qo,m",
        help="Table 1 query evaluated by the 'run' experiment",
    )
    parser.add_argument(
        "--stream-batches",
        type=_sizes,
        default=None,
        help="comma-separated batch counts swept by the 'streaming' experiment",
    )
    parser.add_argument(
        "--stream-batch-size",
        type=_sizes,
        default=None,
        help="comma-separated per-collection batch sizes for the 'streaming' experiment",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="execution backend for map/reduce tasks",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        help="worker pool size for the thread/process backends (default: CPU count)",
    )
    parser.add_argument(
        "--transfer",
        choices=list(TRANSFER_NAMES),
        default=None,
        help=(
            "shuffle transfer strategy: 'inline' (same-address-space zero copy), "
            "'pickle' (by-value across processes) or 'shm' (columnar batches via "
            "shared memory); default follows the backend, or --plan auto"
        ),
    )
    parser.add_argument(
        "--memory-budget",
        type=_byte_size,
        default=None,
        metavar="BYTES",
        help=(
            "shuffle memory budget (accepts k/m/g suffixes, e.g. 64m); partitions "
            "beyond it spill to sorted on-disk runs and reducers stream the merge"
        ),
    )
    parser.add_argument(
        "--max-task-attempts",
        type=_positive_int,
        default=None,
        help=(
            "per-task attempt budget of the engine (default 4, like Hadoop's "
            "maxattempts); a task failing every attempt aborts the job "
            "(run/streaming only)"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "JSON fault plan injected into every Map-Reduce task (deterministic "
            "chaos demo; see DESIGN.md §9 for the format; run/streaming only)"
        ),
    )
    parser.add_argument(
        "--speculative-slowdown",
        type=_slowdown_factor,
        default=None,
        metavar="FACTOR",
        help=(
            "speculatively duplicate tasks running FACTOR times past the batch "
            "median (> 1.0; requires --backend thread or process)"
        ),
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help=(
            "write the table to this file; relative paths land under "
            "benchmarks/results/ and .csv/.md extensions pick the format"
        ),
    )
    return parser


def run_experiment(name: str, args: argparse.Namespace) -> ResultTable:
    """Run one named experiment with the parsed options."""
    return EXPERIMENTS[name](args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("serve", "load"):
        # The serving subcommands have their own option sets; dispatch before
        # the experiment parser sees (and rejects) the unknown positional.
        from ..serving import cli as serving_cli

        if argv[0] == "serve":
            return serving_cli.serve_main(argv[1:])
        return serving_cli.load_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_algorithms:
        print(list_algorithms_table().to_text())
        return 0
    if args.experiment is None:
        parser.error("an experiment is required (or pass --list-algorithms)")
    validate_fault_options(parser, args)
    if args.fault_plan is not None:
        try:
            args.fault_plan = load_fault_plan(args.fault_plan)
        except ValueError as error:
            parser.error(str(error))
    try:
        table = run_experiment(args.experiment, args)
    except (ValueError, KeyError) as error:
        # Driver-level validation failures (a bad k, an unknown query, an
        # impossible knob combination) are user errors, not crashes: report
        # on stderr and exit non-zero, like every other CLI error path.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1
    if args.output:
        written = table.save(args.output)
        print(f"wrote {written}")
    print(table.to_text())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
