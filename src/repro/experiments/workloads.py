"""The paper's experimental workloads: queries (Table 1) and score parameters (Table 2).

Queries are described as :class:`QuerySpec` objects over numbered vertices
``x1..xn``; binding a spec to concrete collections produces an
:class:`~repro.query.graph.RTJQuery`.  The star-shaped families Qb*, Qo* and Qm*
(used by the TopBuckets-strategies experiment) are generated for any ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..query.builder import QueryBuilder
from ..query.graph import RTJQuery
from ..temporal.comparators import PredicateParams
from ..temporal.interval import IntervalCollection

__all__ = ["PARAMETERS", "QuerySpec", "QUERIES", "star_spec", "build_query"]


PARAMETERS: dict[str, PredicateParams] = {
    # Table 2: (lambda_equals, rho_equals), (lambda_greater, rho_greater).
    "P1": PredicateParams.of(4, 16, 0, 10),
    "P2": PredicateParams.of(0, 16, 2, 8),
    "P3": PredicateParams.of(4, 12, 0, 8),
    "PB": PredicateParams.boolean(),
}
"""The scored-predicate parameter sets of Table 2."""


@dataclass(frozen=True)
class QuerySpec:
    """A query shape: predicate names attached to pairs of numbered vertices.

    ``predicates`` lists ``(source_index, target_index, predicate_name)`` with
    1-based vertex indices, mirroring the notation of Table 1 (e.g. Qs,m is
    ``starts(x1, x2), meets(x2, x3)``).
    """

    name: str
    predicates: tuple[tuple[int, int, str], ...]

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices referenced by the predicates."""
        indices = {i for edge in self.predicates for i in edge[:2]}
        return max(indices)

    def vertex_names(self) -> list[str]:
        """Vertex names ``x1..xn`` in order."""
        return [f"x{i}" for i in range(1, self.num_vertices + 1)]

    def build(
        self,
        collections: Sequence[IntervalCollection] | Mapping[str, IntervalCollection],
        params: PredicateParams,
        k: int = 100,
    ) -> RTJQuery:
        """Bind the spec to collections (one per vertex, in order) and build the query."""
        names = self.vertex_names()
        if isinstance(collections, Mapping):
            bound = {name: collections[name] for name in names}
        else:
            if len(collections) < len(names):
                raise ValueError(
                    f"query {self.name} needs {len(names)} collections, got {len(collections)}"
                )
            bound = dict(zip(names, collections))
        builder = QueryBuilder(name=self.name, params=params)
        for name in names:
            builder.add_collection(name, bound[name])
        for source, target, predicate in self.predicates:
            builder.add_predicate(f"x{source}", f"x{target}", predicate)
        return builder.top(k).build()


QUERIES: dict[str, QuerySpec] = {
    "Qb,b": QuerySpec("Qb,b", ((1, 2, "before"), (2, 3, "before"))),
    "Qf,f": QuerySpec("Qf,f", ((1, 2, "finishedBy"), (2, 3, "finishedBy"))),
    "Qo,o": QuerySpec("Qo,o", ((1, 2, "overlaps"), (2, 3, "overlaps"))),
    "Qs,f,m": QuerySpec(
        "Qs,f,m", ((1, 2, "starts"), (2, 3, "finishedBy"), (1, 3, "meets"))
    ),
    "Qs,s": QuerySpec("Qs,s", ((1, 2, "starts"), (2, 3, "starts"))),
    "Qf,b": QuerySpec("Qf,b", ((1, 2, "finishedBy"), (2, 3, "before"))),
    "Qo,m": QuerySpec("Qo,m", ((1, 2, "overlaps"), (2, 3, "meets"))),
    "Qs,m": QuerySpec("Qs,m", ((1, 2, "starts"), (2, 3, "meets"))),
    "QjB,jB": QuerySpec("QjB,jB", ((1, 2, "justBefore"), (2, 3, "justBefore"))),
    "QsM,sM": QuerySpec("QsM,sM", ((1, 2, "shiftMeets"), (2, 3, "shiftMeets"))),
}
"""The fixed 3-way queries of Table 1 (the starred families come from :func:`star_spec`)."""


_STAR_PREDICATES = {"Qb*": "before", "Qo*": "overlaps", "Qm*": "meets"}


def star_spec(family: str, num_vertices: int) -> QuerySpec:
    """The star-shaped queries Qb*, Qo*, Qm* of Table 1 for a given number of vertices.

    All predicates share ``x1`` as source: ``p(x1, x2), ..., p(x1, xn)``.
    """
    if family not in _STAR_PREDICATES:
        raise KeyError(f"unknown star family {family!r}; expected one of {sorted(_STAR_PREDICATES)}")
    if num_vertices < 2:
        raise ValueError("star queries need at least two vertices")
    predicate = _STAR_PREDICATES[family]
    edges = tuple((1, j, predicate) for j in range(2, num_vertices + 1))
    return QuerySpec(f"{family}(n={num_vertices})", edges)


def build_query(
    name: str,
    collections: Sequence[IntervalCollection] | Mapping[str, IntervalCollection],
    params: PredicateParams | str = "P1",
    k: int = 100,
    num_vertices: int | None = None,
) -> RTJQuery:
    """Build a Table 1 query by name (``'Qs,m'``, ``'Qb*'``...) over given collections."""
    if isinstance(params, str):
        params = PARAMETERS[params]
    if name in _STAR_PREDICATES:
        if num_vertices is None:
            raise ValueError(f"query {name} needs num_vertices")
        spec = star_spec(name, num_vertices)
    else:
        spec = QUERIES[name]
    return spec.build(collections, params, k)
