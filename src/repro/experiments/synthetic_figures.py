"""Synthetic-data experiments (paper Section 4.2, Figures 7-10 and the effect of k).

Every driver returns a :class:`~repro.experiments.harness.ResultTable` whose rows
are the series of the corresponding figure.  Sizes default to laptop-scale values;
the paper's cluster-scale parameters are recorded in EXPERIMENTS.md next to the
scaled ones.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines.naive import all_pair_scores
from ..datagen.synthetic import SyntheticConfig, generate_collections
from ..temporal.predicates import predicate_by_name
from .harness import ResultTable, TKIJRunConfig, run_tkij
from .workloads import PARAMETERS, build_query, star_spec

__all__ = [
    "figure7_score_distribution",
    "figure8_workload_distribution",
    "figure9_topbuckets_strategies",
    "figure10_granules",
    "effect_of_k_synthetic",
]


def _collections(num: int, size: int, seed: int = 7, start_max: float = 100_000.0):
    config = SyntheticConfig(size=size, start_max=start_max)
    return list(generate_collections(num, config, seed=seed).values())


# ------------------------------------------------------------------- Figure 7
def figure7_score_distribution(
    size: int = 400,
    ranks: Sequence[int] = (1, 10, 100, 1_000, 10_000),
    params_name: str = "P1",
    seed: int = 7,
    start_max: float | None = None,
) -> ResultTable:
    """Score of the rank-r pair for s-before / s-overlaps / s-meets / s-starts.

    The paper (Figure 7) evaluates all |C1| x |C2| pairs and plots the score of the
    top 50 000 results; this driver reports the score at selected ranks plus the
    number of pairs with a perfect score, which captures the same ordering
    (before >> overlaps > meets > starts in number of high-scoring results).
    ``start_max`` defaults to ``10 * size`` so the temporal density matches the
    paper's |Ci| = 1e4 over a [0, 1e5] range at any scaled-down size.
    """
    if start_max is None:
        start_max = 10.0 * size
    left, right = _collections(2, size, seed=seed, start_max=start_max)
    params = PARAMETERS[params_name]
    table = ResultTable(
        title=f"Figure 7 — score distribution (|Ci|={size}, {params_name})",
        columns=["predicate", *[f"rank_{r}" for r in ranks], "perfect_scores"],
    )
    for name in ("before", "overlaps", "meets", "starts"):
        predicate = predicate_by_name(name, params, avg_length=left.average_length())
        scores = all_pair_scores(predicate, left, right)
        row = {
            f"rank_{r}": float(scores[r - 1]) if r - 1 < len(scores) else 0.0 for r in ranks
        }
        row["perfect_scores"] = int((scores >= 1.0).sum())
        table.add_row(predicate=f"s-{name}", **row)
    return table


# ------------------------------------------------------------------- Figure 8
def figure8_workload_distribution(
    sizes: Sequence[int] = (500, 1_000),
    queries: Sequence[str] = ("Qb,b", "Qo,o", "Qf,f", "Qs,s", "Qs,f,m"),
    k: int = 100,
    num_granules: int = 10,
    params_name: str = "P2",
    num_reducers: int = 8,
    assigners: Sequence[str] = ("lpt", "dtb"),
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """LPT vs DTB: join time (8a), max reducer time (8b), min k-th score (8c).

    This figure *sweeps* the assigner, so runs are always manually planned (an
    auto plan would override the very knob under study).
    """
    table = ResultTable(
        title=f"Figure 8 — workload distribution ({params_name}, g={num_granules}, k={k})",
        columns=[
            "size",
            "query",
            "assigner",
            "join_seconds",
            "max_reduce_seconds",
            "min_kth_score",
            "shuffle_records",
        ],
    )
    base = TKIJRunConfig(
        num_reducers=num_reducers,
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with base.make_context() as context:
        for size in sizes:
            collections = _collections(3, size, seed=seed)
            for query_name in queries:
                for assigner in assigners:
                    query = build_query(query_name, collections, params_name, k=k)
                    config = TKIJRunConfig(
                        num_granules=num_granules,
                        assigner=assigner,
                        num_reducers=num_reducers,
                    )
                    result = run_tkij(query, config, context=context)
                    table.add_row(
                        size=size,
                        query=query_name,
                        assigner=assigner.upper(),
                        join_seconds=result.phase_seconds["join"],
                        max_reduce_seconds=result.join_metrics.max_reduce_seconds,
                        min_kth_score=result.min_kth_score,
                        shuffle_records=result.join_metrics.shuffle_records,
                    )
    return table


# ------------------------------------------------------------------- Figure 9
def figure9_topbuckets_strategies(
    num_vertices: Sequence[int] = (3, 4),
    families: Sequence[str] = ("Qb*", "Qo*", "Qm*"),
    size: int = 300,
    num_granules: int = 6,
    k: int = 100,
    params_name: str = "P1",
    strategies: Sequence[str] = ("brute-force", "two-phase", "loose"),
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Detailed stage times of the three TopBuckets strategies on Qb*, Qo*, Qm*.

    This figure *sweeps* the strategy, so runs are always manually planned (an
    auto plan would override the very knob under study).
    """
    table = ResultTable(
        title=f"Figure 9 — TopBuckets strategies (|Ci|={size}, g={num_granules}, k={k})",
        columns=[
            "query",
            "n",
            "strategy",
            "topbuckets_seconds",
            "distribution_seconds",
            "join_seconds",
            "merge_seconds",
            "total_seconds",
            "selected_combinations",
        ],
    )
    base = TKIJRunConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with base.make_context() as context:
        for family in families:
            for n in num_vertices:
                collections = _collections(n, size, seed=seed)
                spec = star_spec(family, n)
                for strategy in strategies:
                    query = spec.build(collections, PARAMETERS[params_name], k=k)
                    config = TKIJRunConfig(num_granules=num_granules, strategy=strategy)
                    result = run_tkij(query, config, context=context)
                    table.add_row(
                        query=family,
                        n=n,
                        strategy=strategy,
                        topbuckets_seconds=result.phase_seconds["top_buckets"],
                        distribution_seconds=result.phase_seconds["distribution"],
                        join_seconds=result.phase_seconds["join"],
                        merge_seconds=result.phase_seconds["merge"],
                        total_seconds=result.total_seconds,
                        selected_combinations=result.top_buckets.selected_count,
                    )
    return table


# ------------------------------------------------------------------ Figure 10
def figure10_granules(
    granules: Sequence[int] = (5, 10, 20, 40),
    queries: Sequence[str] = ("Qb,b", "Qf,b", "Qo,o", "Qo,m", "Qs,f,m"),
    size: int = 1_000,
    k: int = 100,
    params_name: str = "P1",
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Effect of the number of granules: total time (10a), imbalance (10b), detail (10c).

    This figure *sweeps* the granularity, so runs are always manually planned
    (an auto plan would override the very knob under study).
    """
    table = ResultTable(
        title=f"Figure 10 — number of granules (|Ci|={size}, {params_name}, k={k})",
        columns=[
            "query",
            "g",
            "total_seconds",
            "imbalance",
            "topbuckets_seconds",
            "join_seconds",
            "pruned_fraction",
            "selected_combinations",
        ],
    )
    base = TKIJRunConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with base.make_context() as context:
        for query_name in queries:
            collections = _collections(3, size, seed=seed)
            for g in granules:
                query = build_query(query_name, collections, params_name, k=k)
                result = run_tkij(query, TKIJRunConfig(num_granules=g), context=context)
                table.add_row(
                    query=query_name,
                    g=g,
                    total_seconds=result.total_seconds,
                    imbalance=result.join_metrics.imbalance,
                    topbuckets_seconds=result.phase_seconds["top_buckets"],
                    join_seconds=result.phase_seconds["join"],
                    pruned_fraction=result.top_buckets.pruned_results_fraction,
                    selected_combinations=result.top_buckets.selected_count,
                )
    return table


# ----------------------------------------------------------- Effect of k (§4.2.6)
def effect_of_k_synthetic(
    ks: Sequence[int] = (10, 100, 1_000, 10_000),
    queries: Sequence[str] = ("Qb,b", "Qo,o", "Qf,b", "Qo,m", "Qs,f,m"),
    size: int = 1_000,
    num_granules: int = 10,
    params_name: str = "P1",
    seed: int = 7,
    backend: str = "serial",
    max_workers: int | None = None,
    plan: str = "manual",
    kernel: str | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Section 4.2.6: running time as k varies (expected to stay nearly flat)."""
    table = ResultTable(
        title=f"Effect of k (synthetic, |Ci|={size}, g={num_granules})",
        columns=["query", "k", "total_seconds", "selected_combinations"],
    )
    base = TKIJRunConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with base.make_context() as context:
        for query_name in queries:
            collections = _collections(3, size, seed=seed)
            for k in ks:
                query = build_query(query_name, collections, params_name, k=k)
                result = run_tkij(
                    query,
                    TKIJRunConfig(num_granules=num_granules, plan=plan, kernel=kernel),
                    context=context,
                )
                table.add_row(
                    query=query_name,
                    k=k,
                    total_seconds=result.total_seconds,
                    selected_combinations=result.top_buckets.selected_count,
                )
    return table
