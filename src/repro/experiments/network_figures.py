"""Network-traffic experiments (paper Section 4.3, Figures 12-14).

The real firewall trace is proprietary; the simulated trace of
:mod:`repro.datagen.network` is used instead (see DESIGN.md §2).  As in the paper,
the connection collection is copied once per query vertex and 3-way queries are
evaluated on the copies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datagen.network import (
    NetworkTraceConfig,
    generate_network_collection,
    sample_collection,
)
from ..temporal.interval import IntervalCollection
from .harness import ResultTable, TKIJRunConfig, run_tkij
from .workloads import build_query

__all__ = [
    "figure12_network_distribution",
    "figure13_network_scalability",
    "figure14_network_effect_k",
    "network_collections",
]


def network_collections(
    config: NetworkTraceConfig | None = None,
    seed: int = 13,
    copies: int = 3,
) -> list[IntervalCollection]:
    """The connection collection copied ``copies`` times (the paper's protocol)."""
    base = generate_network_collection(config, seed=seed)
    collections = []
    for index in range(copies):
        copy = IntervalCollection(f"{base.name}-{index + 1}", list(base.intervals))
        collections.append(copy)
    return collections


# ------------------------------------------------------------------ Figure 12
def figure12_network_distribution(
    config: NetworkTraceConfig | None = None,
    seed: int = 13,
    num_bins: int = 10,
) -> ResultTable:
    """Start-point (12a) and length (12b) distributions of the simulated connections."""
    collection = generate_network_collection(config, seed=seed)
    starts = collection.starts
    lengths = collection.ends - collection.starts

    table = ResultTable(
        title=f"Figure 12 — network data distribution (n={len(collection)})",
        columns=["bin_pct", "start_pct_tuples", "length_pct_tuples"],
    )
    start_edges = np.linspace(starts.min(), starts.max(), num_bins + 1)
    length_edges = np.linspace(lengths.min(), lengths.max(), num_bins + 1)
    start_hist, _ = np.histogram(starts, bins=start_edges)
    length_hist, _ = np.histogram(lengths, bins=length_edges)
    total = len(collection)
    for bin_index in range(num_bins):
        table.add_row(
            bin_pct=f"{(bin_index + 1) * 100 // num_bins}%",
            start_pct_tuples=100.0 * start_hist[bin_index] / total,
            length_pct_tuples=100.0 * length_hist[bin_index] / total,
        )
    summary = collection.describe()
    table.add_row(
        bin_pct="length min/avg/max",
        start_pct_tuples=None,
        length_pct_tuples=f"{summary['length_min']:.0f}/{summary['length_avg']:.0f}/{summary['length_max']:.0f}",
    )
    return table


# ------------------------------------------------------------------ Figure 13
def figure13_network_scalability(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    queries: Sequence[str] = ("Qb,b", "Qf,b", "Qo,o", "Qo,m", "Qs,f,m", "QjB,jB", "QsM,sM"),
    k: int = 100,
    num_granules: int = 10,
    params_name: str = "P3",
    config: NetworkTraceConfig | None = None,
    seed: int = 13,
    backend: str = "serial",
    max_workers: int | None = None,
    plan: str = "manual",
    kernel: str | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Running time while the sampled fraction of the trace grows (Figure 13)."""
    base = generate_network_collection(config, seed=seed)
    table = ResultTable(
        title=f"Figure 13 — network scalability ({params_name}, g={num_granules}, k={k})",
        columns=["query", "fraction", "size", "total_seconds", "topbuckets_seconds", "nonempty_buckets"],
    )
    run_config = TKIJRunConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with run_config.make_context() as context:
        for fraction in fractions:
            sampled = sample_collection(base, fraction, seed=seed)
            collections = [
                IntervalCollection(f"{sampled.name}-{i + 1}", list(sampled.intervals))
                for i in range(3)
            ]
            for query_name in queries:
                query = build_query(query_name, collections, params_name, k=k)
                result = run_tkij(
                    query,
                    TKIJRunConfig(num_granules=num_granules, plan=plan, kernel=kernel),
                    context=context,
                )
                matrix = result.top_buckets
                table.add_row(
                    query=query_name,
                    fraction=fraction,
                    size=len(sampled),
                    total_seconds=result.total_seconds,
                    topbuckets_seconds=result.phase_seconds["top_buckets"],
                    nonempty_buckets=matrix.total_combinations,
                )
    return table


# ------------------------------------------------------------------ Figure 14
def figure14_network_effect_k(
    ks: Sequence[int] = (10, 100, 1_000, 5_000),
    queries: Sequence[str] = ("Qb,b", "Qf,b", "Qo,o", "Qo,m", "Qs,f,m", "QjB,jB", "QsM,sM"),
    num_granules: int = 10,
    params_name: str = "P3",
    config: NetworkTraceConfig | None = None,
    seed: int = 13,
    backend: str = "serial",
    max_workers: int | None = None,
    plan: str = "manual",
    kernel: str | None = None,
    transfer: str | None = None,
    memory_budget_bytes: int | None = None,
) -> ResultTable:
    """Running time as k grows on the network trace (Figure 14)."""
    collections = network_collections(config, seed=seed)
    table = ResultTable(
        title=f"Figure 14 — network data, effect of k ({params_name}, g={num_granules})",
        columns=["query", "k", "total_seconds", "selected_combinations"],
    )
    run_config = TKIJRunConfig(
        backend=backend,
        max_workers=max_workers,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with run_config.make_context() as context:
        for query_name in queries:
            for k in ks:
                query = build_query(query_name, collections, params_name, k=k)
                result = run_tkij(
                    query,
                    TKIJRunConfig(num_granules=num_granules, plan=plan, kernel=kernel),
                    context=context,
                )
                table.add_row(
                    query=query_name,
                    k=k,
                    total_seconds=result.total_seconds,
                    selected_combinations=result.top_buckets.selected_count,
                )
    return table
