"""Vectorized comparator, predicate and aggregation kernels.

These are the columnar counterparts of the scalar hot paths: each kernel
evaluates one operation over a whole candidate array instead of one tuple at a
time, with bit-identical float results.  Parity is load-bearing, not cosmetic —
the local join's pruning decisions compare scores against thresholds, so any
rounding difference would change *which* tuples get enumerated, not just how
fast.  Every formula below therefore applies the exact arithmetic (same
operations, same order) as its scalar twin in
:mod:`repro.temporal.comparators` / :meth:`ScoredPredicate.compile`, and the
hypothesis suite in ``tests/test_columnar.py`` asserts elementwise equality.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..index.interval_index import box_window
from ..index.rtree import Rect
from ..temporal.aggregation import (
    Aggregation,
    AverageScore,
    MinScore,
    SumScore,
    WeightedSum,
)
from ..temporal.comparators import ComparatorParams
from ..temporal.predicates import ScoredPredicate

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .columns import IntervalColumns

__all__ = [
    "equals_score_v",
    "greater_score_v",
    "compile_vector",
    "combine_scores_v",
    "box_mask",
    "sweep_positions",
    "VectorScorer",
]

VectorScorer = Callable[[object, object, object, object], np.ndarray]
"""``f(x_start, x_end, y_start, y_end) -> scores``; any argument may be an
array (numpy broadcasting), so one compiled scorer serves both orientations
of an edge."""


def _equals_part(value, lam: float, rho: float) -> np.ndarray:
    """``equals`` over a difference array, mirroring the scalar if-cascade.

    The plateau/zero branches are selected exactly like the scalar
    comparator's ``if`` cascade (the slope formula evaluated *on* a plateau
    can round to 0.999…, so clipping alone is not bit-identical).
    """
    distance = np.abs(np.asarray(value, dtype=float))
    if rho == 0.0:
        return (distance <= lam).astype(float)
    edge = lam + rho
    # np.where evaluates the slope formula on plateau elements too, where it
    # may overflow for subnormal rho; those lanes are discarded by the mask.
    with np.errstate(over="ignore"):
        return np.where(
            distance <= lam, 1.0, np.where(distance >= edge, 0.0, (edge - distance) / rho)
        )


def _greater_part(value, lam: float, rho: float) -> np.ndarray:
    """``greater`` over a difference array, mirroring the scalar if-cascade."""
    value = np.asarray(value, dtype=float)
    if rho == 0.0:
        return (value > lam).astype(float)
    edge = lam + rho
    with np.errstate(over="ignore"):
        return np.where(
            value <= lam, 0.0, np.where(value >= edge, 1.0, (value - lam) / rho)
        )


def equals_score_v(d, params: ComparatorParams) -> np.ndarray:
    """Vectorized ``equals`` comparator over an array of differences ``d = a - b``."""
    return _equals_part(d, params.lam, params.rho)


def greater_score_v(d, params: ComparatorParams) -> np.ndarray:
    """Vectorized ``greater`` comparator over an array of differences ``d = a - b``."""
    return _greater_part(d, params.lam, params.rho)


def compile_vector(
    predicate: ScoredPredicate, first_var: str = "x", second_var: str = "y"
) -> VectorScorer:
    """Vectorized counterpart of :meth:`ScoredPredicate.compile`.

    The returned scorer takes the four endpoint operands (scalars or aligned
    arrays) and returns the per-candidate predicate score: the running ``min``
    over the conjunct comparators, each evaluated with the same closed-form
    arithmetic as the scalar closure.
    """
    compiled = predicate.compiled_comparisons(first_var, second_var)

    def score_v(x_start, x_end, y_start, y_end) -> np.ndarray:
        best: np.ndarray | None = None
        for is_equals, (a, b, c, d), constant, lam, rho in compiled:
            value = a * x_start + b * x_end + c * y_start + d * y_end + constant
            part = _equals_part(value, lam, rho) if is_equals else _greater_part(value, lam, rho)
            best = part if best is None else np.minimum(best, part)
        if best is None:
            raise ValueError("predicate has no comparisons")
        return np.asarray(best, dtype=float)

    return score_v


def combine_scores_v(
    aggregation: Aggregation, parts: Sequence[object], size: int
) -> np.ndarray:
    """Vectorized ``aggregation.combine`` over per-edge score columns.

    ``parts`` holds one entry per query edge, in edge order; each entry is
    either a scalar (an already-resolved score or an upper bound) or an array of
    per-candidate scores.  Accumulation runs in edge order — the same float
    operation sequence as the scalar ``combine`` — so results are bit-identical.
    Aggregations without a closed vector form fall back to the scalar combine
    per candidate, trading speed for guaranteed parity.
    """
    if isinstance(aggregation, (SumScore, AverageScore)):
        total: object = 0.0
        for part in parts:
            total = total + part
        if isinstance(aggregation, AverageScore):
            if len(parts) != aggregation.num_edges:
                raise ValueError(
                    f"expected {aggregation.num_edges} edge scores, got {len(parts)}"
                )
            total = total / aggregation.num_edges
        return np.broadcast_to(np.asarray(total, dtype=float), (size,))
    if isinstance(aggregation, WeightedSum):
        if len(parts) != len(aggregation.weights):
            raise ValueError(
                f"expected {len(aggregation.weights)} edge scores, got {len(parts)}"
            )
        total = 0.0
        for weight, part in zip(aggregation.weights, parts):
            total = total + weight * part
        return np.broadcast_to(np.asarray(total, dtype=float), (size,))
    if isinstance(aggregation, MinScore):
        best: object | None = None
        for part in parts:
            best = part if best is None else np.minimum(best, part)
        if best is None:
            raise ValueError("cannot combine zero scores")
        return np.broadcast_to(np.asarray(best, dtype=float), (size,))
    # Unknown monotone aggregation: exact fallback, one scalar combine per row.
    columns = [np.broadcast_to(np.asarray(part, dtype=float), (size,)) for part in parts]
    return np.fromiter(
        (aggregation.combine([column[row] for column in columns]) for row in range(size)),
        dtype=float,
        count=size,
    )


def box_mask(box: Rect, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Candidates whose ``(start, end)`` point lies in ``box``.

    This is the columnar replacement for an R-tree probe with the same box: one
    boolean range filter over the bucket's columns selects exactly the interval
    set ``RTree.query(box)`` would return (the box is a superset of the true
    candidates either way — see :mod:`repro.index.interval_index`).
    """
    return (
        (starts >= box.min_x)
        & (starts <= box.max_x)
        & (ends >= box.min_y)
        & (ends <= box.max_y)
    )


_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


def sweep_positions(box: Rect, columns: "IntervalColumns") -> np.ndarray:
    """Sweep twin of ``flatnonzero(box_mask(...))``: same positions, same order.

    Resolves ``box`` to a candidate window over the batch's endpoint-sorted
    views (:func:`repro.index.box_window`), walks the *narrower* of the start
    and end windows, filters the remaining dimension with a residual mask over
    only those rows, and sorts the surviving insertion-order positions.  Cost
    is ``O(log n + w)`` for window size ``w`` versus the full-column
    ``O(n)`` scan of :func:`box_mask`; the result is identical — the window is
    exactly one dimension of the conjunction, the residual mask is the other,
    and the final sort restores insertion order — so the sweep kernel inherits
    the vector kernel's enumeration order and work counters bit for bit.
    """
    views = columns.sorted_views()
    (s_lo, s_hi), (e_lo, e_hi) = box_window(
        box, views.starts_sorted, views.ends_sorted
    )
    if s_hi <= s_lo or e_hi <= e_lo:
        return _EMPTY_POSITIONS
    if s_hi - s_lo <= e_hi - e_lo:
        window = views.start_order[s_lo:s_hi]
        residual = columns.ends[window]
        keep = (residual >= box.min_y) & (residual <= box.max_y)
    else:
        window = views.end_order[e_lo:e_hi]
        residual = columns.starts[window]
        keep = (residual >= box.min_x) & (residual <= box.max_x)
    positions = window[keep]
    positions.sort()
    return positions
