"""Shared-memory interval batches: zero-copy columnar shuffle transfer.

A :class:`SharedIntervalColumns` is an :class:`~repro.columnar.IntervalColumns`
whose three dense columns live in one ``multiprocessing.shared_memory`` segment
instead of private heap arrays.  Pickling one ships only a ``(segment name,
dtype, shape)`` descriptor — a few dozen bytes — and unpickling in a worker
process attaches to the segment and rebuilds the numpy views in place, so the
process backend moves record batches across task boundaries without copying the
column data at all (DESIGN.md §10).

Segment lifetime is owned by the *driver* through a :class:`SharedMemoryPool`:
the pool deduplicates batches (the shuffle routes the same batch to several
reducers; it must become one segment, not one per route), refcounts the
segments it created, and unlinks them when the engine closes the job — on the
success path and on the :class:`~repro.mapreduce.TaskFailedError` path alike,
so retried or abandoned tasks never leak ``/dev/shm`` entries.  Worker-side
attachments only ever ``close``; they never unlink.

The columns of a shared batch are read-only views.  Nothing in the kernels
writes a batch in place (they build masks and copies), and marking the views
read-only turns any future in-place mutation — which would silently diverge
between transfer strategies — into an immediate ``ValueError``.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from .columns import IntervalColumns

__all__ = ["SharedIntervalColumns", "SharedMemoryPool", "SEGMENT_PREFIX"]

SEGMENT_PREFIX = "tkij-shm-"
"""Name prefix of every segment this module creates.  The CI leak gate greps
``/dev/shm`` for this prefix after the test suite, so keep it recognisable."""

_segment_counter = itertools.count()

# One segment packs the three columns back to back.  Every column element is
# 8 bytes wide, so each section offset stays 8-byte aligned automatically.
_UIDS_DTYPE = np.dtype(np.int64)
_TIME_DTYPE = np.dtype(np.float64)
_ROW_BYTES = _UIDS_DTYPE.itemsize + 2 * _TIME_DTYPE.itemsize


def _next_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_segment_counter)}"


_attach_lock = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    Python < 3.13 registers every attachment with the ``resource_tracker``,
    which then "cleans up" (unlinks!) the segment when *any* attaching process
    exits and warns about it at shutdown.  The driver owns unlinking; an
    attachment must not be tracked at all.  3.13+ exposes ``track=False`` for
    exactly this; on older versions, suppress the registration call for the
    duration of the attach — merely unregistering *after* would collide with
    the driver's own registration in the shared tracker process (register is
    set-semantics there, so attach+unregister would erase the creator's entry
    and make the eventual ``unlink`` spew KeyError tracebacks).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - exercised on < 3.13 only
        from multiprocessing import resource_tracker

        with _attach_lock:
            original_register = resource_tracker.register

            def _register_untracked(resource_name: str, rtype: str) -> None:
                if rtype != "shared_memory":
                    original_register(resource_name, rtype)

            resource_tracker.register = _register_untracked
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register


def _column_views(
    segment: shared_memory.SharedMemory, length: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three read-only column views over one segment's buffer."""
    uids = np.frombuffer(segment.buf, dtype=_UIDS_DTYPE, count=length, offset=0)
    starts = np.frombuffer(
        segment.buf,
        dtype=_TIME_DTYPE,
        count=length,
        offset=length * _UIDS_DTYPE.itemsize,
    )
    ends = np.frombuffer(
        segment.buf,
        dtype=_TIME_DTYPE,
        count=length,
        offset=length * (_UIDS_DTYPE.itemsize + _TIME_DTYPE.itemsize),
    )
    for view in (uids, starts, ends):
        view.flags.writeable = False
    return uids, starts, ends


@dataclass(frozen=True)
class SharedIntervalColumns(IntervalColumns):
    """An interval batch backed by one shared-memory segment.

    Behaves exactly like its base class everywhere downstream (the join
    reducers only check ``isinstance(value, IntervalColumns)``); the only
    differences are where the column bytes live and what a pickle contains.
    ``payloads`` still travel by value — they are arbitrary Python objects,
    rare, and outside the fixed-dtype contract of the segment.
    """

    _segment: shared_memory.SharedMemory | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def create(
        cls, columns: IntervalColumns, name: str | None = None
    ) -> "SharedIntervalColumns":
        """Copy ``columns`` into a fresh shared segment (the one copy there is)."""
        length = len(columns)
        size = max(1, length * _ROW_BYTES)
        while True:
            segment_name = name or _next_segment_name()
            try:
                segment = shared_memory.SharedMemory(
                    name=segment_name, create=True, size=size
                )
                break
            except FileExistsError:
                # A stale segment from a crashed run holds the name; pick the
                # next one rather than adopting bytes we did not write.
                name = None
        write_uids = np.frombuffer(segment.buf, dtype=_UIDS_DTYPE, count=length)
        write_starts = np.frombuffer(
            segment.buf,
            dtype=_TIME_DTYPE,
            count=length,
            offset=length * _UIDS_DTYPE.itemsize,
        )
        write_ends = np.frombuffer(
            segment.buf,
            dtype=_TIME_DTYPE,
            count=length,
            offset=length * (_UIDS_DTYPE.itemsize + _TIME_DTYPE.itemsize),
        )
        write_uids[:] = columns.uids
        write_starts[:] = columns.starts
        write_ends[:] = columns.ends
        uids, starts, ends = _column_views(segment, length)
        return cls(uids, starts, ends, columns.payloads, None, _segment=segment)

    @property
    def segment_name(self) -> str | None:
        """The shared segment's name (``None`` once released)."""
        return self._segment.name if self._segment is not None else None

    # -------------------------------------------------------------- lifecycle
    def release(self, unlink: bool = False) -> None:
        """Drop this instance's views and close (optionally unlink) its segment.

        After ``release`` the batch is unusable; only the pool (driver side,
        ``unlink=True``) and garbage collection call it.  Closing requires the
        exported column views to be dropped first; if some caller still holds a
        raw column slice the close is skipped — the mapping then lives until
        that reference dies, but the name is still removed from ``/dev/shm``.
        """
        segment = self.__dict__.get("_segment")
        if segment is None:
            return
        object.__setattr__(self, "_segment", None)
        for column in ("uids", "starts", "ends", "_intervals"):
            object.__setattr__(self, column, None)
        try:
            segment.close()
        except BufferError:  # pragma: no cover - an external view pins the map
            pass
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __del__(self) -> None:
        # Drop the views before the segment so SharedMemory.__del__ never
        # trips over its own exported buffers ("Exception ignored" noise).
        try:
            self.release(unlink=False)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Ship the descriptor, not the bytes (the whole point of the class)."""
        segment = self.__dict__.get("_segment")
        if segment is None:
            raise ValueError("cannot pickle a released SharedIntervalColumns")
        return {
            "shm_name": segment.name,
            "length": len(self.uids),
            "dtypes": (_UIDS_DTYPE.str, _TIME_DTYPE.str, _TIME_DTYPE.str),
            "payloads": self.payloads,
        }

    def __setstate__(self, state: dict) -> None:
        segment = _attach_segment(state["shm_name"])
        uids, starts, ends = _column_views(segment, state["length"])
        object.__setattr__(self, "uids", uids)
        object.__setattr__(self, "starts", starts)
        object.__setattr__(self, "ends", ends)
        object.__setattr__(self, "payloads", state["payloads"])
        object.__setattr__(self, "_intervals", None)
        object.__setattr__(self, "_sorted", None)
        object.__setattr__(self, "_segment", segment)


class SharedMemoryPool:
    """Driver-side registry of the segments one transfer strategy created.

    ``share`` is idempotent per source batch: the shuffle replicates the same
    ``IntervalColumns`` object into several partitions, and all of them must
    resolve to the *same* segment.  Each distinct source holds one reference;
    ``release_job`` drops them all and unlinks every segment whose count hits
    zero — the engine calls it in a ``finally`` on job close, so the failure
    and retry paths of :class:`~repro.mapreduce.GuardedTask` are covered too.
    """

    def __init__(self) -> None:
        # id() keys need the source object kept alive alongside, or a recycled
        # id could alias a new batch onto a stale segment.
        self._by_source: dict[int, tuple[IntervalColumns, SharedIntervalColumns]] = {}
        self._refcounts: dict[str, int] = {}
        self._segments: dict[str, SharedIntervalColumns] = {}
        self.segments_created = 0
        self.bytes_shared = 0

    def __len__(self) -> int:
        return len(self._segments)

    def share(self, columns: IntervalColumns) -> SharedIntervalColumns:
        """The shared twin of ``columns`` (created once per source object)."""
        if isinstance(columns, SharedIntervalColumns):
            return columns
        cached = self._by_source.get(id(columns))
        if cached is not None and cached[0] is columns:
            return cached[1]
        shared = SharedIntervalColumns.create(columns)
        name = shared.segment_name or ""
        self._by_source[id(columns)] = (columns, shared)
        self._segments[name] = shared
        self._refcounts[name] = self._refcounts.get(name, 0) + 1
        self.segments_created += 1
        self.bytes_shared += len(shared) * _ROW_BYTES
        return shared

    def release_job(self) -> None:
        """Drop the current job's references; unlink segments nobody holds."""
        self._by_source.clear()
        for name, count in list(self._refcounts.items()):
            remaining = count - 1
            if remaining > 0:  # pragma: no cover - single-job pools today
                self._refcounts[name] = remaining
                continue
            del self._refcounts[name]
            self._segments.pop(name).release(unlink=True)

    def close(self) -> None:
        """Unconditionally unlink everything (end of the engine's life)."""
        self._by_source.clear()
        self._refcounts.clear()
        for shared in list(self._segments.values()):
            shared.release(unlink=True)
        self._segments.clear()
