"""Columnar record batches of intervals.

An :class:`IntervalColumns` is the columnar (structure-of-arrays) counterpart of
a ``list[Interval]``: parallel numpy arrays of uids, starts and ends, built once
per bucket and shared by every vectorized kernel that scores the bucket.  The
payloads column is materialised only when some interval actually carries a
payload (hybrid queries), so the common case ships three dense arrays and
nothing else — which is also what makes the batch cheap to pickle to the
process backend, compared to a list of ``Interval`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..temporal.interval import Interval

__all__ = [
    "IntervalColumns",
    "FixedInterval",
    "SortedEndpointViews",
    "as_columns",
    "as_intervals",
]


@dataclass(frozen=True, slots=True)
class FixedInterval:
    """A lightweight interval record handed to kernels as the *fixed* join side.

    Duck-types the subset of :class:`~repro.temporal.interval.Interval` the hot
    path reads (``uid``/``start``/``end``/``payload``) without re-running the
    dataclass validation when rebuilding records from columns.
    """

    uid: int
    start: float
    end: float
    payload: object = None


@dataclass(frozen=True)
class SortedEndpointViews:
    """Endpoint-sorted projections of one :class:`IntervalColumns` batch.

    The sweep kernel resolves a threshold box to a *window* over these arrays
    with ``np.searchsorted`` instead of scanning the whole bucket; the stable
    permutations map window slots back to insertion-order positions, which is
    what keeps candidate enumeration order (and therefore every pruning
    decision) identical to the scalar and vector kernels.
    """

    start_order: np.ndarray
    """Stable argsort of the batch's starts (insertion-order positions)."""
    starts_sorted: np.ndarray
    """``starts[start_order]`` — non-decreasing."""
    end_order: np.ndarray
    """Stable argsort of the batch's ends (insertion-order positions)."""
    ends_sorted: np.ndarray
    """``ends[end_order]`` — non-decreasing."""


@dataclass(frozen=True)
class IntervalColumns:
    """Parallel columns of one batch of intervals (insertion order preserved)."""

    uids: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    payloads: tuple | None = None
    _intervals: list[Interval] | None = field(
        default=None, repr=False, compare=False
    )
    """Row-wise view, kept only when the batch was built from ``Interval``
    objects in-process; deliberately dropped from pickles (see ``__getstate__``)
    so the process backend ships arrays, not object graphs."""
    _sorted: SortedEndpointViews | None = field(
        default=None, repr=False, compare=False
    )
    """Endpoint-sorted views, built lazily by :meth:`sorted_views`.  Unlike the
    row-wise view these *are* pickled once built: the sweep join sorts each
    bucket map-side and ships the views with the batch, so reducers never
    re-sort (DESIGN.md §11)."""

    def __len__(self) -> int:
        return len(self.uids)

    @property
    def nbytes(self) -> int:
        """Bytes of dense column data (what a shuffle or spill must move)."""
        return int(self.uids.nbytes + self.starts.nbytes + self.ends.nbytes)

    def transfer_nbytes(self) -> int:
        """Estimated transfer size: the columns plus a nominal payload charge.

        Payloads are arbitrary Python objects; 16 bytes each is the same
        order-of-magnitude charge the scalar estimator uses, which keeps the
        shuffle-byte accounting identical across kernels and strategies.
        """
        payload_bytes = 16 * len(self.payloads) if self.payloads is not None else 0
        return self.nbytes + payload_bytes

    # -------------------------------------------------------------- factories
    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "IntervalColumns":
        """Build columns from interval objects, keeping payloads only if any."""
        rows = intervals if isinstance(intervals, list) else list(intervals)
        uids = np.fromiter((x.uid for x in rows), dtype=np.int64, count=len(rows))
        starts = np.fromiter((x.start for x in rows), dtype=float, count=len(rows))
        ends = np.fromiter((x.end for x in rows), dtype=float, count=len(rows))
        payloads = tuple(x.payload for x in rows)
        if all(payload is None for payload in payloads):
            payloads = None
        return cls(uids, starts, ends, payloads, rows)

    @classmethod
    def concat(cls, batches: Sequence["IntervalColumns"]) -> "IntervalColumns":
        """Concatenate batches in order (used when a bucket arrives in pieces)."""
        if len(batches) == 1:
            return batches[0]
        payloads: tuple | None = None
        if any(batch.payloads is not None for batch in batches):
            payloads = tuple(
                payload
                for batch in batches
                for payload in (batch.payloads or (None,) * len(batch))
            )
        return cls(
            np.concatenate([batch.uids for batch in batches]),
            np.concatenate([batch.starts for batch in batches]),
            np.concatenate([batch.ends for batch in batches]),
            payloads,
        )

    def sort_by_uid(self) -> "IntervalColumns":
        """Rows reordered by ascending uid (the canonical bucket order)."""
        order = np.argsort(self.uids, kind="stable")
        payloads = (
            tuple(self.payloads[int(position)] for position in order)
            if self.payloads is not None
            else None
        )
        return IntervalColumns(
            self.uids[order], self.starts[order], self.ends[order], payloads
        )

    # ------------------------------------------------------------------ views
    def record(self, position: int) -> FixedInterval:
        """Row ``position`` as a lightweight record (no Interval validation)."""
        payload = self.payloads[position] if self.payloads is not None else None
        return FixedInterval(
            int(self.uids[position]),
            float(self.starts[position]),
            float(self.ends[position]),
            payload,
        )

    def sorted_views(self) -> SortedEndpointViews:
        """Endpoint-sorted views of the batch (built once and memoised).

        Stable sorts, so equal endpoints keep their insertion order — the
        property the sweep kernel's window/permutation parity proof relies on.
        """
        if self._sorted is not None:
            return self._sorted
        start_order = np.argsort(self.starts, kind="stable")
        end_order = np.argsort(self.ends, kind="stable")
        views = SortedEndpointViews(
            start_order,
            self.starts[start_order],
            end_order,
            self.ends[end_order],
        )
        object.__setattr__(self, "_sorted", views)
        return views

    def to_intervals(self) -> list[Interval]:
        """Row-wise :class:`Interval` objects (rebuilt once and memoised)."""
        if self._intervals is not None:
            return self._intervals
        payloads = self.payloads or (None,) * len(self)
        rows = [
            Interval(int(uid), float(start), float(end), payload)
            for uid, start, end, payload in zip(
                self.uids, self.starts, self.ends, payloads
            )
        ]
        object.__setattr__(self, "_intervals", rows)
        return rows

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Ship the columns plus any built sorted views; the row-wise view is
        rebuilt on demand (sorted views are dense arrays — cheap to pickle,
        expensive to recompute per reducer)."""
        return {
            "uids": self.uids,
            "starts": self.starts,
            "ends": self.ends,
            "payloads": self.payloads,
            "_sorted": self._sorted,
        }

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "_sorted", None)
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_intervals", None)


def as_columns(batch: "IntervalColumns | Sequence[Interval]") -> IntervalColumns:
    """Coerce a reducer input batch (either representation) to columns."""
    if isinstance(batch, IntervalColumns):
        return batch
    return IntervalColumns.from_intervals(batch)


def as_intervals(batch: "IntervalColumns | Sequence[Interval]") -> Sequence[Interval]:
    """Coerce a reducer input batch (either representation) to interval rows."""
    if isinstance(batch, IntervalColumns):
        return batch.to_intervals()
    return batch
