"""Columnar execution substrate: record batches and vectorized kernels.

The scalar engine scores one Python object at a time; this package provides the
MonetDB/X100-style alternative — numpy record batches (:class:`IntervalColumns`)
built once per bucket, plus vectorized comparator/predicate/aggregation kernels
with bit-identical float results, plus endpoint-sorted views and the
searchsorted window resolution the sweep kernel is built on.  The local join
selects between the kernels through ``LocalJoinConfig.kernel`` (see DESIGN.md
§8 and §11).
"""

from .columns import (
    FixedInterval,
    IntervalColumns,
    SortedEndpointViews,
    as_columns,
    as_intervals,
)
from .shm import SharedIntervalColumns, SharedMemoryPool
from .kernels import (
    VectorScorer,
    box_mask,
    combine_scores_v,
    compile_vector,
    equals_score_v,
    greater_score_v,
    sweep_positions,
)

__all__ = [
    "FixedInterval",
    "IntervalColumns",
    "SharedIntervalColumns",
    "SharedMemoryPool",
    "SortedEndpointViews",
    "as_columns",
    "as_intervals",
    "VectorScorer",
    "box_mask",
    "combine_scores_v",
    "compile_vector",
    "equals_score_v",
    "greater_score_v",
    "sweep_positions",
]
