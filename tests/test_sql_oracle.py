"""Unit tests for the sqlite correctness oracle (``sql-oracle``).

The registry-wide parity probes live in test_plan.py/test_chaos_parity.py;
this file exercises the oracle's own edges: empty inputs, duplicate endpoints,
tie-heavy workloads, SQL generation, and the refusal paths (hybrid attribute
constraints, unknown aggregations, knobs).
"""

import pytest

from repro.baselines import naive_top_k
from repro.experiments import build_query
from repro.plan import ExecutionContext, get_algorithm
from repro.plan.sql_oracle import compile_query_sql
from repro.query import QueryBuilder
from repro.temporal import (
    AttributeEquals,
    Interval,
    IntervalCollection,
    MinScore,
    PredicateParams,
    SumScore,
    WeightedSum,
)
from repro.temporal.aggregation import Aggregation

P1 = PredicateParams.of(4, 16, 0, 10)


def iv(uid, start, end, **payload):
    return Interval(uid, start, end, payload=payload)


def _binary_query(left, right, k=10, aggregation=None, attributes=None):
    builder = (
        QueryBuilder(name="oracle-probe", params=P1)
        .add_collection("x", IntervalCollection("L", left))
        .add_collection("y", IntervalCollection("R", right))
        .add_predicate("x", "y", "before", attributes=attributes or [])
        .top(k)
    )
    if aggregation is not None:
        builder = builder.aggregate_with(aggregation)
    return builder.build()


def _run(query):
    with ExecutionContext() as context:
        return get_algorithm("sql-oracle").run(query, context)


def _assert_matches_naive(query):
    report = _run(query)
    expected = naive_top_k(query)
    assert len(report.results) == len(expected)
    for got, want in zip(report.results, expected):
        assert got.score == want.score  # bit-identical, not just approximate
    return report


class TestOracleEdgeCases:
    def test_empty_collections_produce_empty_results(self):
        query = _binary_query([], [], k=5)
        report = _run(query)
        assert report.results == []

    def test_one_empty_side_produces_empty_results(self):
        query = _binary_query([iv(0, 0.0, 5.0)], [], k=5)
        assert _run(query).results == []

    def test_duplicate_endpoints(self):
        """Many intervals sharing endpoints: ties broken by uid, same as naive."""
        left = [iv(uid, 10.0, 20.0) for uid in range(6)]
        right = [iv(uid, 30.0, 40.0) for uid in range(6)] + [iv(6, 30.0, 41.0)]
        query = _binary_query(left, right, k=12)
        report = _assert_matches_naive(query)
        assert len(report.results) == 12

    def test_zero_length_intervals(self):
        left = [iv(0, 5.0, 5.0), iv(1, 5.0, 5.0)]
        right = [iv(0, 9.0, 9.0), iv(1, 12.0, 12.0)]
        _assert_matches_naive(_binary_query(left, right, k=4))

    def test_self_join_same_collection(self):
        """Two vertices bound to the same collection alias one table twice."""
        shared = IntervalCollection(
            "S", [iv(uid, float(uid) * 7.0, float(uid) * 7.0 + 3.0) for uid in range(8)]
        )
        query = (
            QueryBuilder(name="self", params=P1)
            .add_collection("x", shared)
            .add_collection("y", shared)
            .add_predicate("x", "y", "before")
            .top(10)
            .build()
        )
        _assert_matches_naive(query)

    @pytest.mark.parametrize("query_name", ["Qs,m", "Qb,b", "Qo,o", "Qo,m"])
    def test_parity_on_shared_collections(self, tiny_collections, query_name):
        _assert_matches_naive(build_query(query_name, tiny_collections, P1, k=8))

    @pytest.mark.parametrize(
        "aggregation", [SumScore(), MinScore(), WeightedSum((0.25, 0.75))]
    )
    def test_non_default_aggregations(self, aggregation):
        left = [iv(uid, float(uid), float(uid) + 4.0) for uid in range(10)]
        mid = [iv(uid, float(uid) + 9.0, float(uid) + 15.0) for uid in range(10)]
        right = [iv(uid, float(uid) + 11.0, float(uid) + 18.0) for uid in range(10)]
        query = (
            QueryBuilder(name="agg", params=P1)
            .add_collection("x", IntervalCollection("L", left))
            .add_collection("y", IntervalCollection("M", mid))
            .add_collection("z", IntervalCollection("R", right))
            .add_predicate("x", "y", "before")
            .add_predicate("y", "z", "overlaps")
            .aggregate_with(aggregation)
            .top(6)
            .build()
        )
        _assert_matches_naive(query)


class _OpaqueAggregation(Aggregation):
    def combine(self, scores):
        return max(scores)

    def residual_threshold(self, target, edge_index, known_scores, upper_bounds):
        return 0.0


class TestOracleRefusals:
    def test_hybrid_attribute_constraints_are_refused(self):
        left = [iv(0, 0.0, 5.0, country="FR")]
        right = [iv(0, 20.0, 25.0, country="FR")]
        query = _binary_query(left, right, attributes=[AttributeEquals("country")])
        with ExecutionContext() as context:
            with pytest.raises(NotImplementedError, match="attribute constraints"):
                get_algorithm("sql-oracle").plan(query, context)

    def test_unknown_aggregation_is_refused(self):
        query = _binary_query(
            [iv(0, 0.0, 5.0)], [iv(0, 20.0, 25.0)], aggregation=_OpaqueAggregation()
        )
        with ExecutionContext() as context:
            with pytest.raises(NotImplementedError, match="no SQL form"):
                get_algorithm("sql-oracle").plan(query, context)

    def test_knobs_are_rejected(self):
        query = _binary_query([iv(0, 0.0, 5.0)], [iv(0, 20.0, 25.0)])
        with ExecutionContext() as context:
            with pytest.raises(ValueError, match="no knobs"):
                get_algorithm("sql-oracle").plan(query, context, kernel="sweep")


class TestSQLGeneration:
    def test_sql_shape(self):
        query = _binary_query([iv(0, 0.0, 5.0)], [iv(0, 20.0, 25.0)], k=7)
        sql = compile_query_sql(query, {"L": "c0", "R": "c1"})
        assert sql.startswith("SELECT v0.uid, v1.uid,")
        assert "FROM c0 AS v0, c1 AS v1" in sql
        assert sql.endswith("ORDER BY score DESC, v0.uid ASC, v1.uid ASC LIMIT 7")

    def test_report_phases(self):
        report = _run(_binary_query([iv(0, 0.0, 5.0)], [iv(0, 20.0, 25.0)]))
        assert set(report.phase_seconds) == {"load", "join"}
        assert report.total_seconds >= 0.0
