"""Tests for hybrid queries: attribute constraints on join edges (paper future work)."""

import numpy as np
import pytest

from repro import TKIJ, ClusterConfig
from repro.baselines import naive_top_k
from repro.query import QueryBuilder
from repro.temporal import (
    AttributeDiffers,
    AttributeEquals,
    Interval,
    IntervalCollection,
    PayloadPredicate,
    PredicateParams,
)

P1 = PredicateParams.of(4, 16, 0, 10)


def iv(uid, start, end, **payload):
    return Interval(uid, start, end, payload=payload)


class TestConstraints:
    def test_attribute_equals(self):
        constraint = AttributeEquals("country")
        assert constraint.matches(iv(0, 0, 1, country="FR"), iv(1, 2, 3, country="FR"))
        assert not constraint.matches(iv(0, 0, 1, country="FR"), iv(1, 2, 3, country="DE"))

    def test_attribute_equals_missing_value_never_matches(self):
        constraint = AttributeEquals("country")
        assert not constraint.matches(iv(0, 0, 1), iv(1, 2, 3, country="FR"))
        assert not constraint.matches(iv(0, 0, 1), iv(1, 2, 3))

    def test_attribute_equals_cross_keys(self):
        constraint = AttributeEquals("server", target_key="client")
        assert constraint.matches(iv(0, 0, 1, server=9), iv(1, 2, 3, client=9))
        assert not constraint.matches(iv(0, 0, 1, server=9), iv(1, 2, 3, client=8))

    def test_attribute_differs(self):
        constraint = AttributeDiffers("country")
        assert constraint.matches(iv(0, 0, 1, country="FR"), iv(1, 2, 3, country="DE"))
        assert not constraint.matches(iv(0, 0, 1, country="FR"), iv(1, 2, 3, country="FR"))
        assert not constraint.matches(iv(0, 0, 1), iv(1, 2, 3, country="FR"))

    def test_payload_predicate(self):
        constraint = PayloadPredicate(
            "same-subnet", lambda a, b: a["ip"].split(".")[0] == b["ip"].split(".")[0]
        )
        assert constraint.matches(iv(0, 0, 1, ip="10.0.0.1"), iv(1, 2, 3, ip="10.1.2.3"))
        assert not constraint.matches(iv(0, 0, 1, ip="10.0.0.1"), iv(1, 2, 3, ip="192.168.0.1"))

    def test_object_payloads(self):
        class Meta:
            def __init__(self, country):
                self.country = country

        constraint = AttributeEquals("country")
        assert constraint.matches(
            Interval(0, 0, 1, Meta("FR")), Interval(1, 2, 3, Meta("FR"))
        )

    def test_describe(self):
        assert AttributeEquals("country").describe() == "country == country"
        assert AttributeDiffers("country", "origin").describe() == "country != origin"
        assert PayloadPredicate("p", lambda a, b: True).describe() == "p"


def _country_collections(size=60, seed=5):
    rng = np.random.default_rng(seed)
    countries = ["FR", "DE", "IT", "ES"]

    def build(name, offset):
        starts = rng.uniform(0, 800, size)
        lengths = rng.uniform(1, 40, size)
        return IntervalCollection(
            name,
            [
                iv(i, float(s), float(s + l), country=countries[(i + offset) % len(countries)])
                for i, (s, l) in enumerate(zip(starts, lengths))
            ],
        )

    return build("A", 0), build("B", 1)


def _hybrid_query(constraint, k=10):
    left, right = _country_collections()
    return (
        QueryBuilder(name="hybrid", params=P1)
        .add_collection("x", left)
        .add_collection("y", right)
        .add_predicate("x", "y", "before", attributes=[constraint])
        .top(k)
        .build()
    )


class TestHybridQueries:
    def test_query_flags_attribute_constraints(self):
        hybrid = _hybrid_query(AttributeDiffers("country"))
        assert hybrid.has_attribute_constraints
        left, right = _country_collections()
        plain = (
            QueryBuilder(params=P1)
            .add_collection("x", left)
            .add_collection("y", right)
            .add_predicate("x", "y", "before")
            .build()
        )
        assert not plain.has_attribute_constraints

    def test_naive_respects_filters(self):
        query = _hybrid_query(AttributeEquals("country"))
        results = naive_top_k(query)
        left = query.collections["x"]
        right = query.collections["y"]
        for result in results:
            x = left.get(result.uids[0])
            y = right.get(result.uids[1])
            assert x.payload["country"] == y.payload["country"]

    def test_boolean_holds_includes_attributes(self):
        query = _hybrid_query(AttributeDiffers("country"))
        left = query.collections["x"]
        right = query.collections["y"]
        same = next(
            (x, y)
            for x in left
            for y in right
            if x.payload["country"] == y.payload["country"] and x.end < y.start
        )
        assert not query.boolean_holds({"x": same[0], "y": same[1]})
        assert not query.admits({"x": same[0], "y": same[1]})

    @pytest.mark.parametrize(
        "constraint",
        [AttributeDiffers("country"), AttributeEquals("country")],
    )
    def test_tkij_matches_naive_on_hybrid_queries(self, constraint):
        query = _hybrid_query(constraint, k=15)
        tkij = TKIJ(num_granules=5, cluster=ClusterConfig(num_reducers=4, num_mappers=2))
        result = tkij.execute(query)
        expected = naive_top_k(query)
        assert [round(r.score, 9) for r in result.results] == [
            round(r.score, 9) for r in expected
        ]

    def test_hybrid_queries_skip_count_based_pruning(self):
        query = _hybrid_query(AttributeDiffers("country"))
        tkij = TKIJ(num_granules=5, cluster=ClusterConfig(num_reducers=4, num_mappers=2))
        result = tkij.execute(query)
        # Every combination is retained (pruning would not be sound with filters).
        assert result.top_buckets.selected_count == result.top_buckets.total_combinations

    def test_three_way_hybrid_chain(self):
        left, right = _country_collections(size=35)
        third = IntervalCollection("C", list(left.intervals))
        query = (
            QueryBuilder(name="chain", params=P1)
            .add_collection("x", left)
            .add_collection("y", right)
            .add_collection("z", third)
            .add_predicate("x", "y", "before", attributes=[AttributeDiffers("country")])
            .add_predicate("y", "z", "before", attributes=[AttributeEquals("country")])
            .top(8)
            .build()
        )
        tkij = TKIJ(num_granules=4, cluster=ClusterConfig(num_reducers=3, num_mappers=2))
        result = tkij.execute(query)
        expected = naive_top_k(query)
        assert [round(r.score, 9) for r in result.results] == [
            round(r.score, 9) for r in expected
        ]
        for tuple_ in result.results:
            x = left.get(tuple_.uids[0])
            y = right.get(tuple_.uids[1])
            z = third.get(tuple_.uids[2])
            assert x.payload["country"] != y.payload["country"]
            assert y.payload["country"] == z.payload["country"]
