"""Tests for the merge phase (local top-k lists -> global top-k)."""

from repro.core import merge_top_k, run_merge_job
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.query.graph import ResultTuple


def rt(uids, score):
    return ResultTuple(tuple(uids), score)


class TestMergeTopK:
    def test_basic_merge(self):
        lists = [
            [rt((1, 1), 0.9), rt((1, 2), 0.7)],
            [rt((2, 1), 0.8), rt((2, 2), 0.6)],
        ]
        merged = merge_top_k(lists, k=3)
        assert [r.score for r in merged] == [0.9, 0.8, 0.7]

    def test_k_truncation(self):
        lists = [[rt((i, 0), 1.0 - i * 0.1) for i in range(10)]]
        assert len(merge_top_k(lists, k=4)) == 4

    def test_duplicates_collapsed(self):
        lists = [[rt((1, 1), 0.9)], [rt((1, 1), 0.9)], [rt((2, 2), 0.5)]]
        merged = merge_top_k(lists, k=10)
        assert len(merged) == 2

    def test_deterministic_tie_break(self):
        lists = [[rt((2, 0), 0.5), rt((1, 0), 0.5), rt((3, 0), 0.5)]]
        merged = merge_top_k(lists, k=2)
        assert [r.uids for r in merged] == [(1, 0), (2, 0)]

    def test_empty_input(self):
        assert merge_top_k([], k=5) == []
        assert merge_top_k([[]], k=5) == []


class TestMergeJob:
    def test_job_matches_direct_merge(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=4))
        local_lists = [
            [rt((1, 1), 0.9), rt((1, 2), 0.2)],
            [rt((2, 1), 0.95)],
            [],
            [rt((3, 1), 0.5), rt((3, 2), 0.4)],
        ]
        merged, job_result = run_merge_job(engine, local_lists, k=3)
        assert [r.score for r in merged] == [0.95, 0.9, 0.5]
        assert job_result.metrics.job_name == "tkij-merge"
        assert merged == merge_top_k(local_lists, k=3)

    def test_job_with_no_results(self):
        engine = MapReduceEngine()
        merged, _ = run_merge_job(engine, [[], []], k=5)
        assert merged == []
