"""Tests for the query serving layer (server, protocol, admission, cancellation)."""

import json
import re
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_uniform_collection
from repro.experiments.workloads import build_query
from repro.mapreduce import (
    CancelToken,
    ClusterConfig,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    QueryCancelledError,
    Reducer,
    active_token,
    cancel_scope,
)
from repro.plan import ExecutionContext, REGISTRY, get_algorithm, register
from repro.plan.algorithm import Algorithm, ExecutionPlan, RunReport
from repro.serving import (
    BackgroundServer,
    ERROR_CODES,
    ProtocolError,
    QueryClient,
    QueryServer,
    RetryPolicy,
    ServingError,
    decode_results,
    deterministic_metrics,
)
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    decode_intervals,
    decode_message,
    encode_intervals,
    encode_message,
    encode_results,
)
from repro.serving.session import AdmissionController, LatencyRecorder
from repro.streaming.collection import StreamingCollection

REPO_ROOT = Path(__file__).resolve().parent.parent

SIZE = 300
NAMES = ("R", "S", "T")


def make_collections(size=SIZE, names=NAMES, seed=7):
    """The same deterministic collections on both sides of a parity check."""
    return [
        generate_uniform_collection(name, SyntheticConfig(size=size), seed=seed + offset)
        for offset, name in enumerate(names)
    ]


def register_collections(client, collections, streaming=False):
    for collection in collections:
        client.register(
            collection.name, encode_intervals(collection.intervals), streaming=streaming
        )


def roundtrip(payload):
    """Normalise Python values the way the wire does (tuples -> lists, ...)."""
    return json.loads(json.dumps(payload))


# --------------------------------------------------------------------- protocol
class TestProtocolCodec:
    def test_message_roundtrip(self):
        message = {"id": 3, "verb": "ping", "nested": {"a": [1, 2.5]}}
        assert decode_message(encode_message(message)) == message

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(b"not json\n")
        assert excinfo.value.code == "BAD_REQUEST"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_message(b"[1, 2]\n")
        assert excinfo.value.code == "BAD_REQUEST"

    def test_interval_roundtrip(self):
        collections = make_collections(size=20)
        triples = roundtrip(encode_intervals(collections[0].intervals))
        decoded = decode_intervals(triples)
        assert [(i.uid, i.start, i.end) for i in decoded] == [
            (i.uid, i.start, i.end) for i in collections[0].intervals
        ]

    def test_decode_intervals_rejects_malformed(self):
        for bad in ("nope", [[1, 2]], [[1, "a", 3]], [[1, 2, 3, 4]]):
            with pytest.raises(ProtocolError):
                decode_intervals(bad)

    def test_results_roundtrip_is_exact(self):
        collections = make_collections(size=80)
        query = build_query("Qo,m", collections, "P1", 10)
        report = get_algorithm("naive").run(query, ExecutionContext())
        assert decode_results(roundtrip(encode_results(report.results))) == report.results

    def test_protocol_error_requires_known_code(self):
        with pytest.raises(ValueError):
            ProtocolError("NOT_A_CODE", "nope")


# -------------------------------------------------------- cancellation plumbing
class _CountMapper(Mapper):
    def map(self, key, value):
        yield value % 3, 1


class _CancelOnFirstMapper(Mapper):
    def map(self, key, value):
        token = active_token()
        if token is not None:
            token.cancel("cancelled from inside a map task")
        yield value % 3, 1


class _SumReducer(Reducer):
    def reduce(self, key, values):
        yield key, sum(values)


def _job(mapper_factory):
    return MapReduceJob(
        name="cancellable",
        mapper_factory=mapper_factory,
        reducer_factory=_SumReducer,
        num_reducers=2,
    )


class TestCancellation:
    def test_token_is_one_shot(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"
        with pytest.raises(QueryCancelledError, match="first"):
            token.check()

    def test_engine_runs_normally_without_a_scope(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=2))
        result = engine.run(_job(_CountMapper), [(i, i) for i in range(9)])
        assert sorted(result.outputs) == [(0, 3), (1, 3), (2, 3)]

    def test_precancelled_token_stops_the_job_at_entry(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=2))
        token = CancelToken()
        token.cancel("deadline of 5 ms exceeded")
        with cancel_scope(token):
            with pytest.raises(QueryCancelledError, match="deadline"):
                engine.run(_job(_CountMapper), [(i, i) for i in range(9)])

    def test_cancellation_is_observed_at_the_next_task_boundary(self):
        # The first map task sets the active token; the engine must stop at a
        # subsequent wave boundary instead of completing the job.
        engine = MapReduceEngine(ClusterConfig(num_reducers=2))
        token = CancelToken()
        with cancel_scope(token):
            with pytest.raises(QueryCancelledError, match="inside a map task"):
                engine.run(_job(_CancelOnFirstMapper), [(i, i) for i in range(9)])
        assert token.cancelled

    def test_scopes_nest_and_reset(self):
        outer, inner = CancelToken(), CancelToken()
        assert active_token() is None
        with cancel_scope(outer):
            assert active_token() is outer
            with cancel_scope(inner):
                assert active_token() is inner
            assert active_token() is outer
        assert active_token() is None


# ----------------------------------------------------------- admission/metrics
class TestAdmissionController:
    def test_rejects_only_when_slots_and_queue_are_full(self):
        admission = AdmissionController(max_inflight=1, max_queue=1)
        assert admission.try_enter()
        admission.inflight = 1
        assert admission.try_enter()  # queue has room
        admission.waiting = 1
        assert not admission.try_enter()
        assert admission.rejected == 1

    def test_zero_queue_rejects_at_capacity(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        admission.inflight = 2
        assert not admission.try_enter()
        assert admission.describe()["rejected"] == 1

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0, max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=1, max_queue=-1)


class TestLatencyRecorder:
    def test_percentiles_are_nearest_rank(self):
        recorder = LatencyRecorder()
        for value in [0.1, 0.2, 0.3, 0.4, 1.0]:
            recorder.add(value)
        summary = recorder.describe()
        assert summary["count"] == 5.0
        assert summary["p50_seconds"] == 0.3
        assert summary["p99_seconds"] == 1.0
        assert summary["max_seconds"] == 1.0

    def test_empty_summary_is_zero(self):
        assert LatencyRecorder().describe()["p99_seconds"] == 0.0


# ----------------------------------------------------------------- wire parity
class TestServedParity:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("algorithm", ["tkij", "naive"])
    def test_served_query_matches_direct_run(self, backend, algorithm):
        # The naive oracle enumerates the cross product, so keep it small.
        size = SIZE if algorithm == "tkij" else 60
        cluster = ClusterConfig(backend=backend, num_reducers=4)
        server = QueryServer(ExecutionContext(cluster=cluster))
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections(size=size))
            served = client.query(
                "Qo,m", list(NAMES), params="P1", k=15, algorithm=algorithm
            )

        with ExecutionContext(cluster=ClusterConfig(backend=backend, num_reducers=4)) as ctx:
            query = build_query("Qo,m", make_collections(size=size), "P1", 15)
            report = get_algorithm(algorithm).run(query, ctx)

        assert served["results"] == roundtrip(encode_results(report.results))
        assert served["metrics"] == roundtrip(deterministic_metrics(report))

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_served_streaming_query_matches_direct_run(self, backend):
        full = make_collections(size=SIZE)
        initial = [c.intervals[:200] for c in full]
        batch = [c.intervals[200:] for c in full]

        cluster = ClusterConfig(backend=backend, num_reducers=4)
        server = QueryServer(ExecutionContext(cluster=cluster))
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            for collection, first in zip(full, initial):
                client.register(
                    collection.name, encode_intervals(first), streaming=True
                )
            served_first = client.query(
                "Qo,m",
                list(NAMES),
                k=15,
                algorithm="tkij-streaming",
                options={"stream_id": "parity"},
            )
            for collection, appended in zip(full, batch):
                client.ingest(collection.name, encode_intervals(appended))
            served_second = client.query(
                "Qo,m",
                list(NAMES),
                k=15,
                algorithm="tkij-streaming",
                options={"stream_id": "parity"},
            )

        with ExecutionContext(cluster=ClusterConfig(backend=backend, num_reducers=4)) as ctx:
            streams = [
                StreamingCollection(c.name, first) for c, first in zip(full, initial)
            ]
            query = build_query("Qo,m", streams, "P1", 15)
            algorithm = get_algorithm("tkij-streaming")
            first_report = algorithm.run(query, ctx, stream_id="parity")
            for stream, appended in zip(streams, batch):
                stream.ingest(appended)
            second_report = algorithm.run(query, ctx, stream_id="parity")

        assert served_first["results"] == roundtrip(encode_results(first_report.results))
        assert served_first["metrics"] == roundtrip(deterministic_metrics(first_report))
        assert served_second["results"] == roundtrip(encode_results(second_report.results))
        assert served_second["metrics"] == roundtrip(deterministic_metrics(second_report))

    def test_concurrent_clients_get_identical_results(self):
        server = QueryServer(max_inflight=4)
        with BackgroundServer(server) as (host, port):
            with QueryClient(host, port) as loader:
                register_collections(loader, make_collections())
            responses = [None] * 4
            errors = []

            def worker(slot):
                try:
                    with QueryClient(host, port) as client:
                        responses[slot] = client.query("Qo,m", list(NAMES), k=15)
                except Exception as error:  # noqa: BLE001 - surfaced via the list
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        with ExecutionContext() as ctx:
            query = build_query("Qo,m", make_collections(), "P1", 15)
            report = get_algorithm("tkij").run(query, ctx)
        expected = roundtrip(encode_results(report.results))
        for response in responses:
            assert response is not None
            assert response["results"] == expected


# -------------------------------------------------------------- warm-cache path
class TestWarmCache:
    def test_repeat_queries_hit_the_statistics_cache(self):
        server = QueryServer()
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections())
            first = client.query("Qo,m", list(NAMES), k=10)
            second = client.query("Qo,m", list(NAMES), k=10)
            stats = client.stats()
        assert first["statistics_cached"] is False
        assert second["statistics_cached"] is True
        assert stats["statistics_cache"]["hits"] > 0
        assert stats["statistics_cache"]["entries"] >= 1
        assert stats["queries"]["ok"] == 2
        assert stats["queries"]["statistics_cache_hits"] == 1
        assert first["results"] == second["results"]

    def test_repeat_auto_queries_hit_the_plan_cache(self):
        # The ISSUE's acceptance bar: replaying the same auto-planned query N
        # times shows N-1 plan-cache hits with byte-identical results.
        repeats = 4
        server = QueryServer(plan_cache_entries=16)
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections(size=80))
            responses = [
                client.query("Qo,m", list(NAMES), k=10, options={"mode": "auto"})
                for _ in range(repeats)
            ]
            stats = client.stats()
        assert stats["plan_cache"]["hits"] == repeats - 1
        assert stats["plan_cache"]["misses"] == 1
        assert stats["plan_cache"]["entries"] == 1
        for response in responses[1:]:
            assert response["results"] == responses[0]["results"]

    def test_statistics_drift_misses_the_plan_cache(self):
        server = QueryServer(plan_cache_entries=16)
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections(size=80), streaming=True)
            client.query("Qo,m", list(NAMES), k=10, options={"mode": "auto"})
            # Ingest and commit (one streaming-evaluator tick): the dataset
            # state — and with it the statistics fingerprint — moves.
            client.ingest("R", [[90_000, 1.0, 2.0]], seq=1)
            client.query("Qo,m", list(NAMES), k=10, algorithm="tkij-streaming")
            client.query("Qo,m", list(NAMES), k=10, options={"mode": "auto"})
            stats = client.stats()
        # Only the two auto tkij plans consult the cache; both miss.
        assert stats["plan_cache"]["misses"] == 2
        assert stats["plan_cache"]["hits"] == 0

    def test_statistics_cache_respects_configured_bound(self):
        server = QueryServer(stats_cache_entries=2)
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            for batch in range(4):
                names = [f"b{batch}{n}" for n in NAMES]
                client.load(names, size=40, seed=batch)
                client.query("Qo,m", names, k=5)
            stats = client.stats()
        assert stats["statistics_cache"]["entries"] <= 2
        assert stats["statistics_cache"]["evictions"] >= 2
        assert stats["statistics_cache"]["max_entries"] == 2

    def test_cost_store_counters_surface_in_stats(self, tmp_path):
        server = QueryServer(
            plan_cache_entries=16, cost_store_path=tmp_path / "observed.costs"
        )
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections(size=80))
            client.query("Qo,m", list(NAMES), k=10, options={"mode": "auto"})
            stats = client.stats()
        assert stats["cost_store"]["recorded"] == 1
        assert (tmp_path / "observed.costs").exists()


# ----------------------------------------------------------- deadline handling
class TestDeadlines:
    def test_deadline_cancels_and_server_keeps_serving(self):
        server = QueryServer()
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            # Big enough that the 1 ms deadline always expires mid-run.
            client.load(["A", "B", "C"], size=1200, seed=11)
            with pytest.raises(ServingError) as excinfo:
                client.query("Qo,m", ["A", "B", "C"], k=10, deadline_ms=1)
            assert excinfo.value.code == "DEADLINE"
            assert excinfo.value.details["deadline_ms"] == 1
            # The worker pool survives: the same query without a deadline works.
            response = client.query("Qo,m", ["A", "B", "C"], k=10)
            stats = client.stats()
        assert len(response["results"]) == 10
        assert stats["queries"]["errors"]["DEADLINE"] == 1
        assert stats["queries"]["ok"] == 1


# ------------------------------------------------------------ admission (wire)
class _BlockingAlgorithm(Algorithm):
    """Test-only algorithm that parks in execute() until released."""

    name = "test-blocking"
    title = "Blocking (test)"
    scored = True

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def plan(self, query, context, **knobs):
        return ExecutionPlan(self.name, query, context, {})

    def execute(self, plan):
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the blocking query"
        return RunReport(algorithm=self.name, title=self.title, results=[])


@pytest.fixture
def blocking_algorithm():
    algorithm = _BlockingAlgorithm()
    register(algorithm)
    try:
        yield algorithm
    finally:
        REGISTRY.pop(algorithm.name, None)


class TestAdmissionOverWire:
    def test_busy_rejection_and_recovery(self, blocking_algorithm):
        server = QueryServer(max_inflight=1, max_queue=0)
        with BackgroundServer(server) as (host, port):
            with QueryClient(host, port) as setup:
                setup.load(["A", "B", "C"], size=30, seed=3)

            holder_response = {}

            def hold_slot():
                with QueryClient(host, port) as holder:
                    holder_response["value"] = holder.query(
                        "Qo,m", ["A", "B", "C"], k=5, algorithm=blocking_algorithm.name
                    )

            thread = threading.Thread(target=hold_slot)
            thread.start()
            assert blocking_algorithm.started.wait(timeout=10)

            with QueryClient(host, port) as client:
                with pytest.raises(ServingError) as excinfo:
                    client.query("Qo,m", ["A", "B", "C"], k=5)
                assert excinfo.value.code == "BUSY"
                assert excinfo.value.details["max_inflight"] == 1
                blocking_algorithm.release.set()
                thread.join(timeout=10)
                # Slot freed: the same query is admitted and completes.
                response = client.query("Qo,m", ["A", "B", "C"], k=5)
                stats = client.stats()

        assert holder_response["value"]["results"] == []
        assert len(response["results"]) == 5
        assert stats["admission"]["rejected"] == 1
        assert stats["queries"]["errors"]["BUSY"] == 1


# ------------------------------------------------------------- fault injection
class TestFaultsOverWire:
    def test_injected_worker_death_fails_one_query_not_the_server(self):
        server = QueryServer()
        fault = {
            "plan": {
                "rules": [
                    {"action": "fail", "job": "*", "phase": "map", "task": 0, "attempts": [0, 1]}
                ]
            },
            "max_task_attempts": 2,
        }
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections())
            with pytest.raises(ServingError) as excinfo:
                client.query("Qo,m", list(NAMES), k=10, fault=fault)
            assert excinfo.value.code == "FAULT"
            assert excinfo.value.details["phase"] == "map"
            assert excinfo.value.details["attempts"] == 2
            # Same query, no fault plan: the shared pool is intact.
            response = client.query("Qo,m", list(NAMES), k=10)
            stats = client.stats()
        assert len(response["results"]) == 10
        assert stats["queries"]["errors"]["FAULT"] == 1
        assert stats["queries"]["ok"] == 1

    def test_surviving_faults_are_retried_transparently(self):
        server = QueryServer()
        fault = {
            "plan": {
                "rules": [
                    {"action": "fail", "job": "*", "phase": "map", "task": 0, "attempts": [0]}
                ]
            },
            "max_task_attempts": 4,
        }
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            register_collections(client, make_collections())
            faulted = client.query("Qo,m", list(NAMES), k=10, fault=fault)
            clean = client.query("Qo,m", list(NAMES), k=10)
        assert faulted["results"] == clean["results"]


# ------------------------------------------------------------ protocol surface
class TestProtocolSurface:
    def test_register_ingest_and_error_paths(self):
        server = QueryServer()
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            assert client.ping()["protocol"] == 1
            client.register("R", [[0, 1.0, 2.0], [1, 3.0, 5.0]])
            with pytest.raises(ServingError) as excinfo:
                client.register("R", [])
            assert excinfo.value.code == "EXISTS"
            with pytest.raises(ServingError) as excinfo:
                client.ingest("missing", [[9, 0.0, 1.0]])
            assert excinfo.value.code == "NOT_FOUND"
            with pytest.raises(ServingError) as excinfo:
                client.ingest("R", [[9, 0.0, 1.0]])  # not a streaming collection
            assert excinfo.value.code == "BAD_REQUEST"
            client.register("W", [[0, 0.0, 1.0]], streaming=True)
            staged = client.ingest("W", [[5, 1.0, 2.0]])
            assert staged["staged"] == 1 and staged["pending_batches"] == 1
            with pytest.raises(ServingError) as excinfo:
                client.ingest("W", [[5, 4.0, 6.0]])  # duplicate uid
            assert excinfo.value.code == "BAD_REQUEST"
            with pytest.raises(ServingError) as excinfo:
                client.query("Qo,m", ["R", "W", "nope"], k=5)
            assert excinfo.value.code == "NOT_FOUND"
            with pytest.raises(ServingError) as excinfo:
                client.query("Qo,m", ["R", "W"], k=5, algorithm="not-an-algorithm")
            assert excinfo.value.code == "NOT_FOUND"
            with pytest.raises(ServingError) as excinfo:
                client.request("query", query="Qo,m", collections=["R", "W"], k=0)
            assert excinfo.value.code == "BAD_REQUEST"
            with pytest.raises(ServingError) as excinfo:
                client.request("no-such-verb")
            assert excinfo.value.code == "UNKNOWN_VERB"
            assert sorted(excinfo.value.details["verbs"]) == sorted(QueryServer.VERBS)
            listing = client.collections()["collections"]
            assert [c["name"] for c in listing] == ["R", "W"]
            assert listing[1]["streaming"] and listing[1]["pending_batches"] == 1
            names = [a["name"] for a in client.algorithms()["algorithms"]]
            assert "tkij" in names and "tkij-streaming" in names

    def test_malformed_line_gets_bad_request_with_null_id(self):
        import socket as socket_module

        server = QueryServer()
        with BackgroundServer(server) as (host, port):
            with socket_module.create_connection((host, port), timeout=10) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b"this is not json\n")
                response = json.loads(reader.readline())
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["code"] == "BAD_REQUEST"

    def test_shutdown_verb_stops_the_server(self):
        server = QueryServer()
        background = BackgroundServer(server)
        host, port = background.start()
        try:
            with QueryClient(host, port) as client:
                assert client.shutdown()["stopping"] is True
            deadline = time.monotonic() + 10
            while not server.shutdown_requested.is_set():
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            background.stop()


# ------------------------------------------------------------------- doc drift
class TestDocumentationCoverage:
    def test_protocol_doc_covers_every_verb(self):
        doc = (REPO_ROOT / "docs" / "PROTOCOL.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"^### `([a-z]+)`$", doc, re.MULTILINE))
        assert documented == set(QueryServer.VERBS)

    def test_protocol_doc_covers_every_error_code(self):
        doc = (REPO_ROOT / "docs" / "PROTOCOL.md").read_text(encoding="utf-8")
        for code in ERROR_CODES:
            assert f"`{code}`" in doc, f"error code {code} is undocumented"

    def test_console_script_is_declared_and_importable(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert 'repro-serve = "repro.serving.cli:main"' in pyproject
        from repro.serving.cli import main

        assert callable(main)


# ----------------------------------------------------------- retry / robustness
class TestRetryPolicy:
    def test_delays_are_deterministic_per_seed(self):
        policy = RetryPolicy(seed=11)
        again = RetryPolicy(seed=11)
        other = RetryPolicy(seed=12)
        schedule = [policy.delay(a) for a in range(6)]
        assert schedule == [again.delay(a) for a in range(6)]
        assert schedule != [other.delay(a) for a in range(6)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0)
        assert [policy.delay(a) for a in range(5)] == [0.1, 0.2, 0.4, 0.8, 1.0]
        assert policy.delay(50) == 1.0

    def test_jitter_stays_within_the_spread(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5, seed=3)
        for attempt in range(20):
            assert 0.075 <= policy.delay(attempt) <= 0.125

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)

    def test_jitter_never_pushes_a_capped_delay_past_max(self):
        # Regression: jitter used to apply *after* capping, so a delay at the
        # cap could come out up to jitter/2 above max_delay.
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=1.0, jitter=1.0)
        for seed in range(50):
            capped = RetryPolicy(
                base_delay=1.0, multiplier=2.0, max_delay=1.0, jitter=1.0, seed=seed
            )
            for attempt in range(8):
                assert capped.delay(attempt) <= capped.max_delay
        assert policy.delay(0) <= 1.0


class ScriptedServer:
    """A raw TCP server playing one scripted behaviour per accepted connection."""

    def __init__(self, *behaviors):
        self.behaviors = list(behaviors)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen()
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        for behavior in self.behaviors:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                behavior(conn)
            except (ConnectionError, OSError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


def _read_request(conn):
    reader = conn.makefile("rb")
    return reader.readline()


def _close_after_read(conn):
    _read_request(conn)


def _ok_after_read(payload):
    def behavior(conn):
        request = json.loads(_read_request(conn))
        conn.sendall(encode_message({"id": request["id"], "ok": True, **payload}))

    return behavior


NO_SLEEP = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)


class TestClientRobustness:
    def test_truncated_frame_raises_instead_of_decoding(self):
        # A syntactically complete JSON object with no trailing newline: the
        # old client decoded it silently; truncation must now surface.
        def truncate(conn):
            _read_request(conn)
            conn.sendall(b'{"id":1,"ok":true,"protocol":1}')

        with ScriptedServer(truncate) as server:
            client = QueryClient(*server.address, timeout=5)
            with pytest.raises(ConnectionError, match="truncated"):
                client.ping()
            client.close()

    def test_line_of_exactly_max_line_bytes_is_truncation(self):
        # readline(MAX_LINE_BYTES) returns a full buffer with no terminator —
        # indistinguishable from a cut frame, and refused the same way.
        def oversize(conn):
            _read_request(conn)
            conn.sendall(b"x" * MAX_LINE_BYTES)

        with ScriptedServer(oversize) as server:
            client = QueryClient(*server.address, timeout=30)
            with pytest.raises(ConnectionError, match="truncated"):
                client.ping()
            client.close()

    def test_idempotent_verb_retries_through_reconnect(self):
        with ScriptedServer(
            _close_after_read, _ok_after_read({"protocol": 1, "server": "x", "session": 1})
        ) as server:
            client = QueryClient(*server.address, retry=NO_SLEEP, sleep=lambda _: None)
            response = client.ping()
            assert response["protocol"] == 1
            assert client.retries == 1
            assert client.reconnects == 1
            assert server.connections == 2
            client.close()

    def test_non_idempotent_verb_is_not_retried_on_transport_failure(self):
        with ScriptedServer(
            _close_after_read, _ok_after_read({"name": "R", "size": 0, "streaming": False})
        ) as server:
            client = QueryClient(*server.address, retry=NO_SLEEP, sleep=lambda _: None)
            with pytest.raises(ConnectionError):
                client.register("R", [])
            assert client.retries == 0
            assert server.connections == 1
            client.close()

    def test_ingest_with_seq_is_transport_retryable(self):
        payload = {"name": "S", "staged": 1, "pending_batches": 1, "seq": 7, "deduped": False}
        with ScriptedServer(_close_after_read, _ok_after_read(payload)) as server:
            client = QueryClient(*server.address, retry=NO_SLEEP, sleep=lambda _: None)
            response = client.ingest("S", [[1, 0.0, 1.0]], seq=7)
            assert response["staged"] == 1
            assert client.retries == 1
            client.close()

    def test_ingest_without_seq_is_not_transport_retryable(self):
        with ScriptedServer(_close_after_read) as server:
            client = QueryClient(*server.address, retry=NO_SLEEP, sleep=lambda _: None)
            with pytest.raises(ConnectionError):
                client.ingest("S", [[1, 0.0, 1.0]])
            assert client.retries == 0
            client.close()

    def test_retryable_codes_retry_every_verb(self):
        # DRAINING is issued before any state changes, so even register —
        # never transport-retryable — retries through it on one connection.
        def draining_then_ok(conn):
            reader = conn.makefile("rb")
            request = json.loads(reader.readline())
            conn.sendall(
                encode_message(
                    {
                        "id": request["id"],
                        "ok": False,
                        "error": {"code": "DRAINING", "message": "draining"},
                    }
                )
            )
            request = json.loads(reader.readline())
            conn.sendall(
                encode_message(
                    {"id": request["id"], "ok": True, "name": "R", "size": 0, "streaming": False}
                )
            )

        with ScriptedServer(draining_then_ok) as server:
            client = QueryClient(*server.address, retry=NO_SLEEP, sleep=lambda _: None)
            response = client.register("R", [])
            assert response["name"] == "R"
            assert client.retries == 1
            assert server.connections == 1
            client.close()

    def test_retry_budget_exhausts_with_the_last_error(self):
        def always_draining(conn):
            reader = conn.makefile("rb")
            while True:
                line = reader.readline()
                if not line:
                    return
                request = json.loads(line)
                conn.sendall(
                    encode_message(
                        {
                            "id": request["id"],
                            "ok": False,
                            "error": {"code": "DRAINING", "message": "still draining"},
                        }
                    )
                )

        with ScriptedServer(always_draining) as server:
            client = QueryClient(
                *server.address,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
                sleep=lambda _: None,
            )
            with pytest.raises(ServingError) as excinfo:
                client.stats()
            assert excinfo.value.code == "DRAINING"
            assert client.retries == 2
            client.close()

    def test_affinity_is_stamped_on_every_request(self):
        seen = {}

        def record(conn):
            request = json.loads(_read_request(conn))
            seen.update(request)
            conn.sendall(
                encode_message({"id": request["id"], "ok": True, "protocol": 1, "session": 1})
            )

        with ScriptedServer(record) as server:
            client = QueryClient(*server.address, affinity="sticky")
            client.ping()
            client.close()
        assert seen["affinity"] == "sticky"


# ----------------------------------------------------- drain / checkpoint (wire)
class TestDrainAndCheckpoint:
    def test_drain_rejects_new_work_then_checkpoints_and_exits(
        self, tmp_path, blocking_algorithm
    ):
        checkpoint = tmp_path / "server.ckpt"
        server = QueryServer(checkpoint_path=checkpoint, drain_timeout=20)
        background = BackgroundServer(server)
        host, port = background.start()
        try:
            with QueryClient(host, port) as setup:
                setup.load(["A", "B", "C"], size=30, seed=3)

            def hold_slot():
                with QueryClient(host, port) as holder:
                    holder.query(
                        "Qo,m", ["A", "B", "C"], k=5, algorithm=blocking_algorithm.name
                    )

            thread = threading.Thread(target=hold_slot)
            thread.start()
            assert blocking_algorithm.started.wait(timeout=10)

            with QueryClient(host, port) as client:
                ack = client.drain()
                assert ack["draining"] is True
                assert client.health()["status"] == "draining"
                # Admission now rejects mutations and queries, before any state
                # changes; reads still work.
                for attempt in (
                    lambda: client.register("Z", []),
                    lambda: client.load(["Z"], size=10),
                    lambda: client.ingest("A", [[999, 0.0, 1.0]]),
                    lambda: client.query("Qo,m", ["A", "B", "C"], k=5),
                ):
                    with pytest.raises(ServingError) as excinfo:
                        attempt()
                    assert excinfo.value.code == "DRAINING"
                assert client.stats()["draining"] is True
                # Drain is idempotent.
                assert client.drain()["draining"] is True

            # The inflight query finishes; the server then checkpoints and exits.
            blocking_algorithm.release.set()
            thread.join(timeout=10)
            assert server.shutdown_requested.wait is not None
        finally:
            background.stop()
        assert checkpoint.exists()
        assert not checkpoint.with_name(checkpoint.name + ".tmp").exists()

        restored = QueryServer().restore_state(checkpoint)
        assert sorted(restored.collections) == ["A", "B", "C"]

    def test_drain_timeout_cancels_stragglers(self):
        server = QueryServer(drain_timeout=30)
        with BackgroundServer(server) as (host, port):
            with QueryClient(host, port) as setup:
                setup.load(["A", "B", "C"], size=1200, seed=11)

            failures = {}

            def slow_query():
                with QueryClient(host, port) as runner:
                    try:
                        runner.query("Qo,m", ["A", "B", "C"], k=10)
                    except ServingError as error:
                        failures["error"] = error

            thread = threading.Thread(target=slow_query)
            thread.start()
            time.sleep(0.05)  # let the query reach the engine
            with QueryClient(host, port) as client:
                client.drain(timeout_ms=1)
            thread.join(timeout=20)

        error = failures.get("error")
        assert error is not None and error.code == "DEADLINE"
        assert "drain timeout" in error.message

    def test_ingest_seq_is_exactly_once_and_survives_restore(self):
        server = QueryServer()
        with BackgroundServer(server) as (host, port), QueryClient(host, port) as client:
            client.register("S", [], streaming=True)
            first = client.ingest("S", [[1, 0.0, 1.0], [2, 1.0, 2.0]], seq=1)
            assert first["deduped"] is False and first["staged"] == 2
            replay = client.ingest("S", [[1, 0.0, 1.0], [2, 1.0, 2.0]], seq=1)
            assert replay["deduped"] is True
            assert replay["staged"] == 2 and replay["pending_batches"] == first["pending_batches"]
            fresh = client.ingest("S", [[3, 2.0, 3.0]], seq=2)
            assert fresh["deduped"] is False
            listed = client.collections()["collections"][0]
            assert listed["pending_batches"] == 2  # the replay staged nothing
            snapshot = server.checkpoint()

        restored = QueryServer().restore_state(snapshot)
        with BackgroundServer(restored) as (host, port), QueryClient(host, port) as client:
            again = client.ingest("S", [[1, 0.0, 1.0], [2, 1.0, 2.0]], seq=1)
            assert again["deduped"] is True
            listed = client.collections()["collections"][0]
            assert listed["pending_batches"] == 2

    def test_restore_rejects_corrupt_and_foreign_checkpoints(self, tmp_path):
        junk = tmp_path / "junk.ckpt"
        junk.write_bytes(b"not a pickle")
        with pytest.raises(ValueError, match="cannot read"):
            QueryServer().restore_state(junk)
        with pytest.raises(ValueError, match="not a query-server checkpoint"):
            QueryServer().restore_state({"kind": "something-else"})
        with pytest.raises(ValueError, match="version"):
            QueryServer().restore_state({"kind": "query-server", "version": 99})
