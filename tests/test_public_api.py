"""Tests of the top-level public API surface and execution-report contents."""

import repro
from repro import TKIJ, ClusterConfig, LocalJoinConfig
from repro.experiments import build_query


class TestPublicSurface:
    def test_version_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.baselines as baselines
        import repro.core as core
        import repro.datagen as datagen
        import repro.experiments as experiments
        import repro.index as index
        import repro.mapreduce as mapreduce
        import repro.query as query
        import repro.solver as solver
        import repro.temporal as temporal

        for module in (core, temporal, query, solver, mapreduce, index, baselines, datagen, experiments):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestExecutionReportContents:
    def test_describe_contains_all_reported_metrics(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=5)
        tkij = TKIJ(
            num_granules=4,
            cluster=ClusterConfig(num_reducers=3, num_mappers=2),
            join_config=LocalJoinConfig(),
        )
        summary = tkij.execute(query).describe()
        expected_keys = {
            "seconds_statistics",
            "seconds_top_buckets",
            "seconds_distribution",
            "seconds_join",
            "seconds_merge",
            "seconds_total",
            "selected_combinations",
            "pruned_results_fraction",
            "join_shuffle_records",
            "join_imbalance",
            "join_max_reduce_seconds",
            "min_kth_score",
            "tuples_scored",
            "candidates_examined",
            "combinations_processed",
        }
        assert expected_keys <= set(summary)

    def test_total_excludes_statistics_phase(self, tiny_collections):
        query = build_query("Qb,b", tiny_collections, "P1", k=5)
        tkij = TKIJ(num_granules=4, cluster=ClusterConfig(num_reducers=3, num_mappers=2))
        result = tkij.execute(query)
        reconstructed = sum(
            seconds for name, seconds in result.phase_seconds.items() if name != "statistics"
        )
        assert result.total_seconds == reconstructed
