"""Streaming checkpoint/recovery: snapshots, restore, and kill-recover parity.

The recovery contract (DESIGN.md §9): a streaming evaluator killed between
ticks and restored from its last checkpoint — statistics cache entries plus
per-stream state — resumes from the last committed batch and produces results
tie-aware-identical to a run that was never interrupted, with identical
replan-policy counters and per-batch pruning/work reports (only wall-clock
times may differ).
"""

from __future__ import annotations

import pickle
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.plan import ExecutionContext, get_algorithm
from repro.query.graph import ResultTuple
from repro.streaming import StreamState, StreamingCollection, equivalent_top_k

NUM_BATCHES = 5


@pytest.fixture(scope="module")
def stream_source():
    config = SyntheticConfig(size=30, start_max=600.0, length_max=60.0)
    return list(generate_collections(3, config, seed=505).values())


def batch_chunks(collection, num_batches=NUM_BATCHES):
    intervals = collection.intervals
    size = max(1, -(-len(intervals) // num_batches))
    return [intervals[start : start + size] for start in range(0, len(intervals), size)]


def make_context():
    return ExecutionContext(cluster=ClusterConfig(num_reducers=4, num_mappers=2))


def evaluate(streams, context, k=10):
    query = build_query("Qs,m", streams, "P1", k=k)
    return get_algorithm("tkij-streaming").run(query, context)


def staged_streams(source, first=None, last=None, committed_prefix=0):
    """Streams seeded with the first ``committed_prefix`` batches as static
    contents and the batches of ``[first, last)`` staged for commit."""
    streams = []
    for collection in source:
        chunks = batch_chunks(collection)
        seeded = [iv for chunk in chunks[:committed_prefix] for iv in chunk]
        stream = StreamingCollection(collection.name, seeded)
        for chunk in chunks[first if first is not None else committed_prefix : last]:
            stream.ingest(chunk)
        streams.append(stream)
    return streams


def logical_batch_report(batch):
    """A batch report minus its wall-clock fields."""
    summary = batch.describe()
    summary.pop("seconds", None)
    return summary


class TestStreamStateSnapshot:
    def test_roundtrip(self):
        state = StreamState(
            results=[ResultTuple(uids=(1, 2, 3), score=0.9)],
            knobs={"num_granules": 8, "strategy": "loose", "assigner": "dtb"},
            initialized=True,
            base_size=90,
            appended_since_plan=12,
            batches_ingested=3,
            replans=1,
            pairwise_bounds={("a", "b"): 0.5},
        )
        restored = StreamState.from_snapshot(state.to_snapshot())
        assert restored.results == state.results
        assert restored.knobs == state.knobs
        assert restored.base_size == 90
        assert restored.appended_since_plan == 12
        assert restored.batches_ingested == 3
        assert restored.replans == 1
        assert restored.pairwise_bounds == state.pairwise_bounds

    def test_snapshot_has_value_semantics(self):
        state = StreamState(results=[ResultTuple(uids=(1,), score=0.5)], initialized=True)
        snapshot = state.to_snapshot()
        state.results.append(ResultTuple(uids=(2,), score=0.4))
        state.pairwise_bounds["k"] = 1.0
        restored = StreamState.from_snapshot(snapshot)
        assert len(restored.results) == 1
        assert restored.pairwise_bounds == {}

    def test_tampered_bounds_memo_is_dropped_not_trusted(self):
        state = StreamState(
            knobs={"num_granules": 8}, pairwise_bounds={("a", "b"): 0.5}, initialized=True
        )
        snapshot = state.to_snapshot()
        snapshot["pairwise_bounds"][("c", "d")] = 0.1  # fingerprint now stale
        restored = StreamState.from_snapshot(snapshot)
        assert restored.pairwise_bounds == {}

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError, match="stream-state"):
            StreamState.from_snapshot({"kind": "something-else"})
        with pytest.raises(ValueError, match="version"):
            StreamState.from_snapshot({"kind": "stream-state", "version": 99})


class TestContextCheckpoint:
    def test_rejects_foreign_payloads(self, tmp_path):
        context = make_context()
        with pytest.raises(ValueError, match="checkpoint"):
            context.restore({"kind": "not-a-checkpoint"})
        with pytest.raises(ValueError, match="cannot read"):
            context.restore(tmp_path / "missing.ckpt")

    def test_rejects_corrupt_checkpoint_files(self, tmp_path, stream_source):
        # Corruption surfaces as the documented ValueError, not a raw
        # UnpicklingError/EOFError (the same contract callers already catch).
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"not a pickle at all")
        with pytest.raises(ValueError, match="cannot read"):
            make_context().restore(garbage)

        streams = staged_streams(stream_source, first=0, last=2, committed_prefix=0)
        context = make_context()
        evaluate(streams, context)
        intact = tmp_path / "intact.ckpt"
        context.checkpoint(intact)
        truncated = tmp_path / "truncated.ckpt"
        truncated.write_bytes(intact.read_bytes()[: intact.stat().st_size // 2])
        with pytest.raises(ValueError, match="cannot read"):
            make_context().restore(truncated)

    def test_rejects_checkpoint_missing_sections(self):
        with pytest.raises(ValueError, match="missing"):
            make_context().restore({"kind": "execution-context", "version": 1})

    def test_checkpoint_file_written_atomically(self, tmp_path, stream_source):
        streams = staged_streams(stream_source, last=3, committed_prefix=0, first=0)
        context = make_context()
        evaluate(streams, context)
        path = tmp_path / "nested" / "state.ckpt"
        snapshot = context.checkpoint(path)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        with open(path, "rb") as handle:
            assert pickle.load(handle).keys() == snapshot.keys()

    def test_concurrent_checkpoints_never_tear_the_file(self, tmp_path, stream_source):
        # Regression: staging used to go through a fixed `<name>.tmp` sibling,
        # so two concurrent checkpointers could interleave writes and persist
        # a torn snapshot.  Per-writer staging names make every rename atomic:
        # the target is always some writer's complete snapshot.
        streams = staged_streams(stream_source, last=2, committed_prefix=0, first=0)
        context = make_context()
        evaluate(streams, context)
        path = tmp_path / "raced.ckpt"
        barrier = threading.Barrier(4)
        errors: list[Exception] = []

        def checkpointer():
            try:
                barrier.wait(timeout=10)
                for _ in range(10):
                    context.checkpoint(path)
                    make_context().restore(path)  # always a complete snapshot
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=checkpointer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        make_context().restore(path)
        # No staging siblings left behind (any `raced.ckpt.tmp*` name).
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "raced.ckpt"]
        assert leftovers == []

    def test_statistics_cache_counters_survive(self, stream_source):
        streams = staged_streams(stream_source, last=2, committed_prefix=0, first=0)
        context = make_context()
        evaluate(streams, context)
        restored = make_context().restore(context.checkpoint())
        assert restored.statistics.hits == context.statistics.hits
        assert restored.statistics.misses == context.statistics.misses
        assert len(restored.statistics) == len(context.statistics)

    def test_snapshot_is_isolated_from_further_ticks(self, stream_source):
        # Checkpoint after 2 batches, keep running 3 more: the snapshot must
        # still describe the 2-batch state (in-place statistics maintenance
        # must not leak through the deep copies).
        streams = staged_streams(stream_source, last=NUM_BATCHES, committed_prefix=0, first=0)
        context = make_context()
        partial_streams = staged_streams(stream_source, last=2, committed_prefix=0, first=0)
        partial_context = make_context()
        evaluate(partial_streams, partial_context)
        snapshot = partial_context.checkpoint()
        frozen = pickle.dumps(snapshot)
        evaluate(streams, context)  # unrelated full run, sanity ballast
        evaluate(
            staged_streams(stream_source, first=2, last=4, committed_prefix=2),
            partial_context,
        )  # the checkpointed context keeps ticking
        assert pickle.dumps(snapshot) == frozen


class TestKillRecoverParity:
    def run_reference(self, stream_source):
        context = make_context()
        report = evaluate(
            staged_streams(stream_source, first=0, last=None, committed_prefix=0), context
        )
        state = next(iter(context.streams.values()))
        return report, state

    def test_kill_and_recover_matches_uninterrupted(self, stream_source, tmp_path):
        kill_at = 3
        reference_report, reference_state = self.run_reference(stream_source)

        # Run the first kill_at batches, checkpoint, "die".
        context = make_context()
        evaluate(staged_streams(stream_source, first=0, last=kill_at, committed_prefix=0), context)
        checkpoint = tmp_path / "tick.ckpt"
        context.checkpoint(checkpoint)
        del context

        # A new process: collections rebuilt from the committed data, context
        # restored from the checkpoint, remaining batches replayed.
        recovered_context = make_context().restore(checkpoint)
        recovered_report = evaluate(
            staged_streams(stream_source, first=kill_at, last=None, committed_prefix=kill_at),
            recovered_context,
        )
        recovered_state = next(iter(recovered_context.streams.values()))

        assert equivalent_top_k(recovered_state.results, reference_state.results)
        assert recovered_state.batches_ingested == reference_state.batches_ingested
        assert recovered_state.replans == reference_state.replans
        assert recovered_state.base_size == reference_state.base_size
        assert recovered_state.appended_since_plan == reference_state.appended_since_plan
        assert [logical_batch_report(b) for b in recovered_report.raw.batches] == [
            logical_batch_report(b) for b in reference_report.raw.batches[kill_at:]
        ]

    @settings(max_examples=6, deadline=None)
    @given(kill_at=st.integers(min_value=1, max_value=NUM_BATCHES - 1))
    def test_kill_at_any_batch_boundary(self, stream_source, kill_at):
        """Hypothesis property: recovery parity holds at every batch boundary."""
        reference_report, reference_state = self.run_reference(stream_source)

        context = make_context()
        evaluate(staged_streams(stream_source, first=0, last=kill_at, committed_prefix=0), context)
        snapshot = context.checkpoint()
        del context

        recovered_context = make_context().restore(snapshot)
        recovered_report = evaluate(
            staged_streams(stream_source, first=kill_at, last=None, committed_prefix=kill_at),
            recovered_context,
        )
        recovered_state = next(iter(recovered_context.streams.values()))

        assert equivalent_top_k(recovered_state.results, reference_state.results)
        assert recovered_state.replans == reference_state.replans
        assert recovered_state.batches_ingested == reference_state.batches_ingested
        assert recovered_state.appended_since_plan == reference_state.appended_since_plan
        assert [logical_batch_report(b) for b in recovered_report.raw.batches] == [
            logical_batch_report(b) for b in reference_report.raw.batches[kill_at:]
        ]
