"""Tests for the plan layer: registry, statistics cache, auto-planner, reports."""

import pytest

from repro.baselines import naive_boolean_matches, naive_top_k
from repro.core import STRATEGIES, collect_statistics
from repro.core.distribution import ASSIGNERS
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.plan import (
    REGISTRY,
    AutoPlanner,
    ExecutionContext,
    StatisticsCache,
    available_algorithms,
    get_algorithm,
)
from repro.temporal import Interval, IntervalCollection


@pytest.fixture()
def chain_collections():
    """Collections engineered so Boolean before/overlaps/meets chains have matches."""
    c1 = IntervalCollection("c1", [Interval(0, 0, 10), Interval(1, 5, 15), Interval(2, 90, 95)])
    c2 = IntervalCollection("c2", [Interval(0, 10, 20), Interval(1, 30, 40), Interval(2, 16, 25)])
    c3 = IntervalCollection("c3", [Interval(0, 20, 30), Interval(1, 50, 60), Interval(2, 41, 42)])
    return [c1, c2, c3]


def make_context(backend: str = "serial") -> ExecutionContext:
    return ExecutionContext(
        cluster=ClusterConfig(num_reducers=4, num_mappers=2, backend=backend, max_workers=2)
    )


class TestRegistry:
    def test_registry_exposes_tkij_and_three_baselines(self):
        assert {"tkij", "tkij-streaming", "naive", "allmatrix", "rccis"} <= set(REGISTRY)
        assert len(REGISTRY) >= 5

    def test_available_algorithms_sorted(self):
        assert available_algorithms() == sorted(REGISTRY)

    def test_get_algorithm_unknown_name(self):
        with pytest.raises(KeyError, match="registered"):
            get_algorithm("not-an-algorithm")

    def test_algorithm_metadata(self):
        for name, algorithm in REGISTRY.items():
            assert algorithm.name == name
            assert algorithm.title
            assert isinstance(algorithm.scored, bool)


# Query (and parameter set) each algorithm is checked against the oracle on.
# Boolean algorithms get engineered collections with known PB matches; scored
# algorithms run the P1 parameters on the shared tiny collections.
PARITY_QUERY = {
    "tkij": ("Qo,m", "P1"),
    # On static collections the streaming evaluator degrades to one full
    # evaluation, so the oracle parity probe applies to it unchanged.
    "tkij-streaming": ("Qo,m", "P1"),
    "naive": ("Qo,m", "P1"),
    # The sqlite oracle runs in-process; the backend matrix only varies the
    # (unused) engine context, which must stay harmless.
    "sql-oracle": ("Qo,m", "P1"),
    "allmatrix": ("Qb,b", "PB"),
    "rccis": ("Qo,m", "PB"),
}


class TestRegistryParity:
    """Satellite: every registered algorithm agrees with the naive oracle."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("name", sorted(PARITY_QUERY))
    def test_matches_naive_oracle(self, name, backend, tiny_collections, chain_collections):
        assert set(PARITY_QUERY) == set(REGISTRY), (
            "every registered algorithm needs a parity probe query"
        )
        algorithm = get_algorithm(name)
        query_name, params = PARITY_QUERY[name]
        collections = tiny_collections if algorithm.scored else chain_collections
        k = 10 if algorithm.scored else 50
        query = build_query(query_name, collections, params, k=k)
        with make_context(backend) as context:
            report = algorithm.run(query, context)

        if algorithm.scored:
            expected = naive_top_k(query)
            assert len(report.results) == len(expected)
            for got, want in zip(report.results, expected):
                assert got.score == pytest.approx(want.score, abs=1e-9)
        else:
            # Boolean semantics: with k above the match count, the top-k set is
            # exactly the Boolean match set and every score is 1.0.
            expected = naive_boolean_matches(query)
            assert {r.uids for r in report.results} == {r.uids for r in expected}
            for got in report.results:
                assert got.score == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(PARITY_QUERY))
    def test_serial_and_thread_backends_agree(self, name, tiny_collections, chain_collections):
        algorithm = get_algorithm(name)
        query_name, params = PARITY_QUERY[name]
        collections = tiny_collections if algorithm.scored else chain_collections
        query = build_query(query_name, collections, params, k=10)
        outcomes = []
        for backend in ("serial", "thread"):
            with make_context(backend) as context:
                report = algorithm.run(query, context)
            outcomes.append([(r.uids, round(r.score, 9)) for r in report.results])
        assert outcomes[0] == outcomes[1]


class TestStatisticsCache:
    def test_miss_then_hit(self, tiny_collections):
        cache = StatisticsCache()
        collections = {c.name: c for c in tiny_collections}
        first, cached_first = cache.get_or_collect(collections, 4)
        second, cached_second = cache.get_or_collect(collections, 4)
        assert (cached_first, cached_second) == (False, True)
        assert second is first
        assert (cache.misses, cache.hits) == (1, 1)

    def test_distinct_granularities_are_distinct_entries(self, tiny_collections):
        cache = StatisticsCache()
        collections = {c.name: c for c in tiny_collections}
        cache.get_or_collect(collections, 4)
        cache.get_or_collect(collections, 8)
        assert len(cache) == 2
        assert cache.misses == 2

    def test_content_drift_with_same_size_and_range_invalidates(self):
        intervals = [Interval(0, 0.0, 10.0), Interval(1, 3.0, 5.0), Interval(2, 6.0, 9.0)]
        collection = IntervalCollection("c", list(intervals))
        cache = StatisticsCache()
        cache.get_or_collect({"c": collection}, 4)
        # Replace an interior interval: size and time range are unchanged, but
        # the endpoint checksum moves — the entry must not be served.
        replaced = IntervalCollection(
            "c", [intervals[0], Interval(1, 4.0, 8.0), intervals[2]]
        )
        statistics, cached = cache.get_or_collect({"c": replaced}, 4)
        assert cached is False
        bucket = statistics.matrix("c").granularity.bucket_of(Interval(1, 4.0, 8.0))
        assert statistics.matrix("c").count(bucket) >= 1

    def test_size_drift_invalidates(self):
        collection = IntervalCollection("c", [Interval(0, 0.0, 10.0), Interval(1, 4.0, 8.0)])
        cache = StatisticsCache()
        cache.get_or_collect({"c": collection}, 4)
        # Mutating the collection without cache.update() must not serve stale stats.
        collection.add(Interval(2, 1.0, 9.0))
        statistics, cached = cache.get_or_collect({"c": collection}, 4)
        assert cached is False
        assert statistics.matrix("c").total() == 3

    def test_incremental_update_keeps_entries_fresh(self):
        collection = IntervalCollection("c", [Interval(0, 0.0, 10.0), Interval(1, 4.0, 8.0)])
        cache = StatisticsCache()
        cache.get_or_collect({"c": collection}, 4)
        appended = [Interval(2, 1.0, 9.0), Interval(3, 2.0, 6.0)]
        collection.extend(appended)
        maintained = cache.update(inserted={"c": appended})
        assert maintained == 1
        statistics, cached = cache.get_or_collect({"c": collection}, 4)
        assert cached is True
        scratch = collect_statistics({"c": collection}, 4)
        assert dict(statistics.matrix("c").counts) == dict(scratch.matrix("c").counts)

    def test_update_maintains_every_granularity(self):
        collection = IntervalCollection("c", [Interval(0, 0.0, 10.0), Interval(1, 4.0, 8.0)])
        cache = StatisticsCache()
        cache.get_or_collect({"c": collection}, 2)
        cache.get_or_collect({"c": collection}, 5)
        appended = [Interval(2, 3.0, 7.0)]
        collection.extend(appended)
        assert cache.update(inserted={"c": appended}) == 2
        for granules in (2, 5):
            statistics, cached = cache.get_or_collect({"c": collection}, granules)
            assert cached is True
            assert statistics.matrix("c").total() == 3

    def test_refresh_fingerprints_after_range_extension(self):
        collection = IntervalCollection("c", [Interval(0, 0.0, 10.0), Interval(1, 4.0, 8.0)])
        cache = StatisticsCache()
        cache.get_or_collect({"c": collection}, 4)
        # The appended interval extends the collection's time range: counts stay
        # correct (clamped, per §3.2) but the fingerprint must be re-recorded.
        appended = [Interval(2, 5.0, 20.0)]
        collection.extend(appended)
        cache.update(inserted={"c": appended})
        cache.refresh_fingerprints({"c": collection})
        statistics, cached = cache.get_or_collect({"c": collection}, 4)
        assert cached is True
        assert statistics.matrix("c").total() == 3


class TestPhaseASkip:
    """Acceptance: the second query on the same dataset skips phase (a)."""

    def test_second_query_reuses_statistics(self, tiny_collections):
        query_a = build_query("Qo,m", tiny_collections, "P1", k=8)
        query_b = build_query("Qb,b", tiny_collections, "P1", k=8)
        collect_calls = []

        class CountingCache(StatisticsCache):
            def get_or_collect(self, collections, num_granules, collector=None):
                def counting_collector(cols, g):
                    collect_calls.append(g)
                    return (collector or collect_statistics)(cols, g)

                return super().get_or_collect(collections, num_granules, counting_collector)

        context = make_context()
        context.statistics = CountingCache()
        with context:
            tkij = get_algorithm("tkij")
            first = tkij.run(query_a, context, num_granules=4)
            second = tkij.run(query_b, context, num_granules=4)

        # Phase (a) ran exactly once: one collection call, the second run is a
        # recorded cache hit with no further collection work.
        assert collect_calls == [4]
        assert first.statistics_cached is False
        assert second.statistics_cached is True
        assert context.statistics.hits == 1
        assert context.statistics.misses == 1
        # Both queries still return the exact answer.
        assert [round(r.score, 9) for r in second.results] == [
            round(r.score, 9) for r in naive_top_k(query_b)
        ]

    def test_updated_dataset_is_served_incrementally(self, tiny_collections):
        # Private copies: this test mutates its collections.
        collections = [
            IntervalCollection(c.name, list(c.intervals)) for c in tiny_collections
        ]
        first_collection = collections[0]
        query = build_query("Qo,m", collections, "P1", k=8)
        context = make_context()
        with context:
            tkij = get_algorithm("tkij")
            tkij.run(query, context, num_granules=4)
            low, high = first_collection.time_range()
            span = high - low
            appended = [
                Interval(2000 + i, low + 0.1 * i * span, low + (0.1 * i + 0.2) * span)
                for i in range(6)
            ]
            first_collection.extend(appended)
            context.statistics.update(inserted={first_collection.name: appended})
            report = tkij.run(query, context, num_granules=4)
            assert report.statistics_cached is True
            expected = naive_top_k(query)
            assert [round(r.score, 9) for r in report.results] == [
                round(r.score, 9) for r in expected
            ]


class TestAutoPlanner:
    def test_choices_are_valid_and_explained(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            knobs, explanation = AutoPlanner().plan(query, context)
        assert knobs["strategy"] in STRATEGIES
        assert knobs["assigner"] in ASSIGNERS
        assert knobs["num_granules"] in AutoPlanner().granule_candidates
        assert explanation.reasons
        assert explanation.inputs["k"] == 8.0
        assert explanation.inputs["num_vertices"] == 3.0
        assert "g=" in explanation.summary()

    def test_deterministic(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            first, _ = AutoPlanner().plan(query, context)
            second, _ = AutoPlanner().plan(query, context)
        assert first == second

    def test_boolean_query_gets_lpt(self, tiny_collections):
        query = build_query("Qb,b", tiny_collections, "PB", k=8)
        with make_context() as context:
            knobs, explanation = AutoPlanner().plan(query, context)
        assert knobs["assigner"] == "lpt"
        assert any("lpt" in reason for reason in explanation.reasons)

    def test_scored_query_gets_dtb(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            knobs, _ = AutoPlanner().plan(query, context)
        assert knobs["assigner"] == "dtb"

    def test_choice_visible_in_result_and_report(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            report = get_algorithm("tkij").run(query, context, mode="auto")
        assert report.explanation is not None
        assert report.raw.plan_explanation is report.explanation
        summary = report.raw.describe()
        assert summary["plan_strategy"] == report.explanation.strategy
        assert summary["plan_num_granules"] == report.explanation.num_granules
        assert report.describe()["plan_assigner"] == report.explanation.assigner

    def test_auto_plan_still_exact(self, tiny_collections):
        query = build_query("Qs,f,m", tiny_collections, "P1", k=10)
        with make_context() as context:
            report = get_algorithm("tkij").run(query, context, mode="auto")
        expected = naive_top_k(query)
        assert [round(r.score, 9) for r in report.results] == [
            round(r.score, 9) for r in expected
        ]

    def test_first_auto_run_not_reported_as_cached(self, tiny_collections):
        # Even when the planner's chosen granularity equals the probe's, the
        # probe itself collected statistics — the first run must not claim a
        # cache hit, and the probe's cost must land in the statistics phase.
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            first = get_algorithm("tkij").run(query, context, mode="auto")
            second = get_algorithm("tkij").run(query, context, mode="auto")
        assert first.statistics_cached is False
        assert second.statistics_cached is True
        assert first.explanation.inputs["probe_cached"] == 0.0
        assert first.phase_seconds["statistics"] >= first.explanation.inputs["probe_seconds"]

    def test_unknown_plan_mode_rejected(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        with make_context() as context:
            with pytest.raises(ValueError, match="plan mode"):
                get_algorithm("tkij").plan(query, context, mode="psychic")


class TestRunReport:
    def test_tkij_report_contents(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=5)
        with make_context() as context:
            report = get_algorithm("tkij").run(query, context, num_granules=4)
        assert report.algorithm == "tkij"
        assert set(report.phase_seconds) == {
            "statistics", "top_buckets", "distribution", "join", "merge",
        }
        assert report.total_seconds > 0
        assert report.shuffle_records > 0
        described = report.describe()
        assert described["results"] == 5.0
        assert described["statistics_cached"] is False

    def test_baseline_report_has_phase_seconds_by_job(self, chain_collections):
        query = build_query("Qo,m", chain_collections, "PB", k=5)
        with make_context() as context:
            report = get_algorithm("rccis").run(query, context)
        assert set(report.phase_seconds) == {"rccis-replication", "rccis-join"}
        assert report.raw.name == "RCCIS"

    def test_naive_rejects_knobs(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=5)
        with make_context() as context:
            with pytest.raises(ValueError, match="no knobs"):
                get_algorithm("naive").plan(query, context, num_granules=4)

    def test_plan_knobs_pick_per_algorithm_options(self):
        options = {"mode": "auto", "num_granules": 40, "num_partitions": 6}
        assert get_algorithm("rccis").plan_knobs(options) == {"num_granules": 40}
        assert get_algorithm("allmatrix").plan_knobs(options) == {"num_partitions": 6}
        assert get_algorithm("naive").plan_knobs(options) == {}
        tkij_knobs = get_algorithm("tkij").plan_knobs(options)
        assert tkij_knobs["mode"] == "auto"
        assert tkij_knobs["num_granules"] == 40

    def test_rccis_granule_knob_honoured(self, chain_collections):
        query = build_query("Qo,m", chain_collections, "PB", k=5)
        with make_context() as context:
            plan = get_algorithm("rccis").plan(query, context, num_granules=6)
            report = get_algorithm("rccis").execute(plan)
        assert plan.knobs["num_granules"] == 6
        # The join phase runs one reducer per granule.
        join_metrics = report.metrics[1]
        assert len(join_metrics.reduce_tasks) == 6


class TestHarnessContextGuard:
    def test_run_tkij_rejects_cluster_shape_mismatch(self, tiny_collections):
        from repro.experiments import TKIJRunConfig, run_tkij

        query = build_query("Qo,m", tiny_collections, "P1", k=5)
        with make_context() as context:  # 4 reducers / 2 mappers
            with pytest.raises(ValueError, match="disagrees"):
                run_tkij(query, TKIJRunConfig(num_reducers=16), context=context)
