"""Tests for the experiment command-line interface."""

import json

import pytest

from repro.experiments.cli import (
    ENGINELESS_EXPERIMENTS,
    EXPERIMENTS,
    FAULT_EXPERIMENTS,
    build_parser,
    list_algorithms_table,
    load_fault_plan,
    main,
    run_experiment,
)
from repro.mapreduce import FaultPlan
from repro.plan import available_algorithms


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--size", "50"])
        assert args.experiment == "fig7"
        assert args.size == 50

    def test_sizes_argument_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["fig11", "--sizes", "100,200,300"])
        assert args.sizes == (100, 200, 300)

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["not-an-experiment"])

    def test_every_registered_experiment_has_a_driver(self):
        expected = {
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "effect-k", "statistics", "run", "streaming",
        }
        assert set(EXPERIMENTS) == expected

    def test_stream_batch_options(self):
        parser = build_parser()
        args = parser.parse_args(
            ["streaming", "--stream-batches", "5,10", "--stream-batch-size", "40"]
        )
        assert args.stream_batches == (5, 10)
        assert args.stream_batch_size == (40,)

    def test_algorithm_and_plan_options(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--algorithm", "naive", "--plan", "auto"])
        assert args.algorithm == "naive"
        assert args.plan == "auto"

    def test_unknown_algorithm_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--algorithm", "not-an-algorithm"])


class TestExecution:
    def test_run_experiment_fig7(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--size", "40"])
        table = run_experiment("fig7", args)
        assert len(table.rows) == 4

    def test_main_prints_and_writes_output(self, tmp_path, capsys):
        output = tmp_path / "fig7.txt"
        code = main(["fig7", "--size", "40", "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
        assert "Figure 7" in output.read_text()

    def test_main_relative_output_lands_under_benchmarks_results(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main(["fig7", "--size", "40", "--output", "fig7.csv"])
        assert code == 0
        written = tmp_path / "benchmarks" / "results" / "fig7.csv"
        assert written.exists()
        first_line = written.read_text().splitlines()[0]
        assert first_line.startswith("predicate,")

    def test_main_statistics_experiment(self, capsys):
        code = main(["statistics", "--sizes", "200,400", "--granules", "5"])
        assert code == 0
        assert "Statistics collection" in capsys.readouterr().out


class TestRegistryDispatch:
    def test_list_algorithms(self, capsys):
        code = main(["--list-algorithms"])
        assert code == 0
        out = capsys.readouterr().out
        for name in available_algorithms():
            assert name in out

    def test_list_algorithms_table_covers_registry(self):
        table = list_algorithms_table()
        assert table.column("name") == available_algorithms()

    def test_missing_experiment_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_run_experiment_with_algorithm(self, capsys):
        code = main(["run", "--algorithm", "naive", "--size", "30", "--k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Naive" in out
        assert "total_seconds" in out

    def test_run_experiment_auto_plan_prints_explanation(self, capsys):
        code = main(["run", "--size", "40", "--k", "5", "--plan", "auto"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan_strategy" in out
        assert "plan_reason_0" in out

    def test_run_experiment_boolean_algorithm_uses_pb(self, capsys):
        code = main(
            ["run", "--algorithm", "allmatrix", "--query", "Qb,b", "--size", "30", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "All-Matrix" in out
        assert "PB" in out


@pytest.fixture()
def chaos_plan_file(tmp_path):
    path = tmp_path / "chaos.json"
    path.write_text(
        json.dumps(
            {
                "seed": 7,
                "failure_rate": 0.4,
                "max_failures_per_task": 2,
                "rules": [
                    {"action": "fail", "phase": "map", "task": 0, "attempts": [0]}
                ],
            }
        )
    )
    return path


class TestFaultOptions:
    """Error paths and the chaos-demo happy path of the fault-tolerance flags."""

    def test_fault_experiment_sets_are_consistent(self):
        assert FAULT_EXPERIMENTS <= set(EXPERIMENTS)
        assert ENGINELESS_EXPERIMENTS <= set(EXPERIMENTS)
        assert not FAULT_EXPERIMENTS & ENGINELESS_EXPERIMENTS

    def test_load_fault_plan_passthrough(self, chaos_plan_file):
        plan = load_fault_plan(chaos_plan_file)
        assert isinstance(plan, FaultPlan)
        assert load_fault_plan(plan) is plan
        assert load_fault_plan(None) is None

    def test_run_with_fault_plan_reports_chaos_metrics(self, chaos_plan_file, capsys):
        code = main(
            ["run", "--size", "30", "--k", "5", "--fault-plan", str(chaos_plan_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "failed_attempts" in out
        assert "retried_tasks" in out

    def test_streaming_with_fault_plan_runs(self, chaos_plan_file, capsys):
        code = main(
            [
                "streaming",
                "--stream-batches", "3",
                "--stream-batch-size", "10",
                "--k", "5",
                "--granules", "5",
                "--fault-plan", str(chaos_plan_file),
            ]
        )
        assert code == 0
        assert "Streaming" in capsys.readouterr().out

    def test_missing_fault_plan_file_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--fault-plan", str(tmp_path / "missing.json")])
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_invalid_fault_plan_json_errors(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit):
            main(["run", "--fault-plan", str(path)])
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_fault_plan_keys_error(self, tmp_path, capsys):
        path = tmp_path / "keys.json"
        path.write_text('{"failure_rte": 0.5}')
        with pytest.raises(SystemExit):
            main(["run", "--fault-plan", str(path)])
        assert "unknown fault-plan keys" in capsys.readouterr().err

    def test_fault_plan_conflicts_with_engineless_experiment(self, chaos_plan_file, capsys):
        with pytest.raises(SystemExit):
            main(["fig7", "--fault-plan", str(chaos_plan_file)])
        assert "never runs the engine" in capsys.readouterr().err

    def test_fault_plan_conflicts_with_sweep_experiments(self, chaos_plan_file, capsys):
        with pytest.raises(SystemExit):
            main(["fig11", "--fault-plan", str(chaos_plan_file)])
        assert "only supported by" in capsys.readouterr().err

    def test_max_task_attempts_conflicts_outside_fault_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig8", "--max-task-attempts", "2"])
        assert "--max-task-attempts" in capsys.readouterr().err

    def test_explicitly_passing_the_default_budget_still_conflicts(self, capsys):
        # Passing the flag counts as using it, even at its default value.
        with pytest.raises(SystemExit):
            main(["fig8", "--max-task-attempts", "4"])
        assert "--max-task-attempts" in capsys.readouterr().err

    def test_speculative_slowdown_conflicts_with_serial_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--speculative-slowdown", "2.0"])
        assert "pool backend" in capsys.readouterr().err

    def test_speculative_slowdown_must_exceed_one(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--backend", "thread", "--speculative-slowdown", "0.5"])
        assert "greater than 1.0" in capsys.readouterr().err

    def test_max_task_attempts_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--max-task-attempts", "0"])
        assert "positive integer" in capsys.readouterr().err


class TestErrorExitCodes:
    """Runtime failures exit non-zero with a message on stderr, not a traceback."""

    def test_invalid_k_exits_nonzero_with_stderr_message(self, capsys):
        code = main(["run", "--size", "30", "--k", "0"])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "k must be positive" in captured.err
        assert "Traceback" not in captured.err


class TestServeDispatch:
    """The serve/load subcommands route to the serving layer CLI."""

    def test_serve_rejects_negative_queue(self, capsys):
        code = main(["serve", "--max-queue", "-1"])
        assert code == 1
        assert "--max-queue" in capsys.readouterr().err

    def test_serve_rejects_unreadable_fault_plan(self, tmp_path, capsys):
        code = main(["serve", "--fault-plan", str(tmp_path / "missing.json")])
        assert code == 1
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_drain_timeout(self, capsys):
        code = main(["serve", "--drain-timeout", "0"])
        assert code == 1
        err = capsys.readouterr().err
        assert "--drain-timeout" in err
        assert "Traceback" not in err

    def test_serve_rejects_engine_flags_with_multiple_workers(self, capsys):
        code = main(["serve", "--workers", "2", "--backend", "thread"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "--backend" in err
        assert "--workers" in err
        assert "Traceback" not in err

    def test_serve_reports_bind_failure_cleanly(self, capsys):
        import socket

        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            code = main(["serve", "--port", str(port)])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_load_rejects_empty_names(self, capsys):
        code = main(["load", "--names", ","])
        assert code == 1
        assert "at least one collection" in capsys.readouterr().err

    def test_load_reports_unreachable_server(self, capsys):
        # Port 1 on localhost is never listening in the test environment.
        code = main(["load", "--port", "1", "--names", "R"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_load_registers_collections_on_a_live_server(self, capsys):
        from repro.serving import BackgroundServer, QueryClient, QueryServer

        server = QueryServer()
        with BackgroundServer(server) as (host, port):
            code = main(
                ["load", "--host", host, "--port", str(port), "--names", "R,S", "--size", "25"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "loaded R: 25 intervals (static)" in out
            assert "loaded S: 25 intervals (static)" in out
            with QueryClient(host, port) as client:
                names = [c["name"] for c in client.collections()["collections"]]
        assert names == ["R", "S"]
