"""Tests for the experiment command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--size", "50"])
        assert args.experiment == "fig7"
        assert args.size == 50

    def test_sizes_argument_parsing(self):
        parser = build_parser()
        args = parser.parse_args(["fig11", "--sizes", "100,200,300"])
        assert args.sizes == (100, 200, 300)

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["not-an-experiment"])

    def test_every_registered_experiment_has_a_driver(self):
        expected = {
            "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "effect-k", "statistics",
        }
        assert set(EXPERIMENTS) == expected


class TestExecution:
    def test_run_experiment_fig7(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--size", "40"])
        table = run_experiment("fig7", args)
        assert len(table.rows) == 4

    def test_main_prints_and_writes_output(self, tmp_path, capsys):
        output = tmp_path / "fig7.txt"
        code = main(["fig7", "--size", "40", "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
        assert "Figure 7" in output.read_text()

    def test_main_statistics_experiment(self, capsys):
        code = main(["statistics", "--sizes", "200,400", "--granules", "5"])
        assert code == 0
        assert "Statistics collection" in capsys.readouterr().out
