"""Tests for the streaming layer: collections, incremental evaluation, parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive_top_k
from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.plan import AutoPlanner, ExecutionContext, get_algorithm
from repro.streaming import (
    CandidateFilter,
    StreamingCollection,
    equivalent_top_k,
    replay_batches,
)
from repro.temporal import Interval, IntervalCollection


def make_context(backend: str = "serial") -> ExecutionContext:
    return ExecutionContext(
        cluster=ClusterConfig(num_reducers=4, num_mappers=2, backend=backend, max_workers=2)
    )


def result_key(results):
    return [(r.uids, round(r.score, 9)) for r in results]


@pytest.fixture(scope="module")
def stream_collections() -> list[IntervalCollection]:
    """Three deterministic collections small enough for the naive oracle."""
    config = SyntheticConfig(size=36, start_max=700.0, length_max=60.0)
    return list(generate_collections(3, config, seed=404).values())


class TestStreamingCollection:
    def test_ingest_is_invisible_until_commit(self):
        stream = StreamingCollection("c", [Interval(0, 0.0, 5.0)])
        stream.ingest([Interval(1, 1.0, 4.0), Interval(2, 2.0, 6.0)])
        assert len(stream) == 1
        assert stream.pending_batches == 1
        batch = stream.commit_next()
        assert len(batch) == 2
        assert batch.index == 0
        assert len(stream) == 3
        assert stream.pending_batches == 0
        assert stream.log.total_appended == 2

    def test_commit_without_pending_returns_none(self):
        stream = StreamingCollection("c", [Interval(0, 0.0, 5.0)])
        assert stream.commit_next() is None

    def test_duplicate_uid_rejected_at_ingest(self):
        stream = StreamingCollection("c", [Interval(0, 0.0, 5.0)])
        with pytest.raises(ValueError, match="uid 0"):
            stream.ingest([Interval(0, 1.0, 2.0)])
        # Duplicates across staged (not yet committed) batches are caught too.
        stream.ingest([Interval(1, 1.0, 2.0)])
        with pytest.raises(ValueError, match="uid 1"):
            stream.ingest([Interval(1, 3.0, 4.0)])

    def test_rejected_ingest_leaves_stream_retryable(self):
        stream = StreamingCollection("c", [Interval(0, 0.0, 5.0)])
        with pytest.raises(ValueError, match="uid 0"):
            stream.ingest([Interval(1, 1.0, 2.0), Interval(0, 3.0, 4.0)])
        assert stream.pending_batches == 0
        # The valid interval of the rejected batch was not leaked into the uid
        # set: resubmitting the corrected batch succeeds.
        assert stream.ingest([Interval(1, 1.0, 2.0), Interval(2, 3.0, 4.0)]) == 2
        assert stream.pending_batches == 1

    def test_numpy_views_follow_commits(self):
        stream = StreamingCollection("c", [Interval(0, 0.0, 5.0)])
        assert stream.starts.tolist() == [0.0]
        stream.ingest([Interval(1, 1.0, 4.0)])
        stream.commit_next()
        assert stream.starts.tolist() == [0.0, 1.0]
        assert stream.time_range() == (0.0, 5.0)

    def test_replay_batches_roundtrip(self, stream_collections):
        original = stream_collections[0]
        stream = replay_batches(original, 5)
        assert len(stream) == 0
        assert stream.pending_batches == 5
        while stream.commit_next() is not None:
            pass
        assert [i.uid for i in stream] == [i.uid for i in original]
        assert len(stream.log) == 5

    def test_from_collection_seeds_contents(self, stream_collections):
        stream = StreamingCollection.from_collection(stream_collections[0])
        assert len(stream) == len(stream_collections[0])
        assert stream.pending_batches == 0


class TestCandidateFilter:
    def _combo(self, upper_bound: float):
        from repro.core import BucketCombination

        return BucketCombination(
            vertices=("x1", "x2"),
            buckets=((0, 0), (1, 1)),
            nb_res=4,
            lower_bound=0.0,
            upper_bound=upper_bound,
        )

    def test_clean_combination_pruned(self):
        keep = CandidateFilter({"x1": frozenset({(3, 3)})}, threshold=None)
        assert keep(self._combo(1.0)) is False
        assert (keep.clean_skipped, keep.bound_pruned, keep.kept) == (1, 0, 0)

    def test_dirty_combination_kept_without_threshold(self):
        keep = CandidateFilter({"x1": frozenset({(0, 0)})}, threshold=None)
        assert keep(self._combo(0.2)) is True
        assert keep.kept == 1

    def test_bound_pruned_at_or_below_threshold(self):
        keep = CandidateFilter({"x1": frozenset({(0, 0)})}, threshold=0.5)
        assert keep(self._combo(0.5)) is False  # ties cannot improve the top-k
        assert keep(self._combo(0.4)) is False
        assert keep(self._combo(0.6)) is True
        assert (keep.clean_skipped, keep.bound_pruned, keep.kept) == (0, 2, 1)


class TestStaticFallback:
    def test_static_collections_single_full_evaluation(self, stream_collections):
        query = build_query("Qo,m", stream_collections, "P1", k=10)
        with make_context() as context:
            report = get_algorithm("tkij-streaming").run(query, context, num_granules=5)
        assert equivalent_top_k(report.results, naive_top_k(query))
        raw = report.raw
        assert raw.batches_ingested == 1
        assert raw.replans == 0
        assert raw.batches[0].replanned is False

    def test_rerun_without_new_batches_reuses_answer(self, stream_collections):
        query = build_query("Qo,m", stream_collections, "P1", k=10)
        with make_context() as context:
            algorithm = get_algorithm("tkij-streaming")
            first = algorithm.run(query, context, num_granules=5)
            second = algorithm.run(query, context, num_granules=5)
        assert result_key(second.results) == result_key(first.results)
        # No new batch: the second run processed no ticks at all.
        assert second.raw.batches == []
        assert second.elapsed_seconds == 0.0

    def test_empty_first_batch_rejected(self):
        streams = [StreamingCollection(name) for name in ("a", "b", "c")]
        query = build_query("Qo,m", streams, "P1", k=5)
        with make_context() as context:
            with pytest.raises(ValueError, match="no intervals yet"):
                get_algorithm("tkij-streaming").run(query, context)

    def test_unknown_knobs_rejected(self, stream_collections):
        query = build_query("Qo,m", stream_collections, "P1", k=10)
        with make_context() as context:
            algorithm = get_algorithm("tkij-streaming")
            with pytest.raises(ValueError, match="plan mode"):
                algorithm.plan(query, context, mode="psychic")
            with pytest.raises(ValueError, match="strategy"):
                algorithm.plan(query, context, strategy="psychic")
            with pytest.raises(ValueError, match="assigner"):
                algorithm.plan(query, context, assigner="psychic")


class TestPerBatchParity:
    """Acceptance: per-batch incremental top-k equals full recomputation."""

    NUM_BATCHES = 4

    def _chunks(self, collections, num_batches):
        return {
            c.name: [
                c.intervals[start : start + -(-len(c.intervals) // num_batches)]
                for start in range(
                    0, len(c.intervals), -(-len(c.intervals) // num_batches)
                )
            ]
            for c in collections
        }

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_matches_full_recompute_and_oracle_each_batch(
        self, backend, stream_collections
    ):
        chunks = self._chunks(stream_collections, self.NUM_BATCHES)
        streams = [StreamingCollection(c.name) for c in stream_collections]
        query = build_query("Qo,m", streams, "P1", k=12)
        algorithm = get_algorithm("tkij-streaming")
        static = get_algorithm("tkij")
        incremental_batches = 0
        pruned_pairs = 0
        with make_context(backend) as context, make_context(backend) as full_context:
            for tick in range(self.NUM_BATCHES):
                for stream in streams:
                    stream.ingest(chunks[stream.name][tick])
                report = algorithm.run(query, context, num_granules=5)
                full = static.run(query, full_context, num_granules=5)
                assert equivalent_top_k(report.results, full.results), (
                    f"batch {tick} diverged from full recomputation"
                )
                assert equivalent_top_k(report.results, naive_top_k(query)), (
                    f"batch {tick} diverged from the naive oracle"
                )
                batch = report.raw.batches[-1]
                if not batch.replanned:
                    incremental_batches += 1
                    pruned_pairs += batch.pruned_pairs
        # The schedule must actually exercise the incremental path, and the
        # incremental path must actually prune (all-old combinations at least).
        assert incremental_batches > 0
        assert pruned_pairs > 0

    def test_serial_and_thread_agree_per_batch(self, stream_collections):
        outcomes = []
        for backend in ("serial", "thread"):
            chunks = self._chunks(stream_collections, self.NUM_BATCHES)
            streams = [StreamingCollection(c.name) for c in stream_collections]
            query = build_query("Qo,m", streams, "P1", k=12)
            per_batch = []
            with make_context(backend) as context:
                for tick in range(self.NUM_BATCHES):
                    for stream in streams:
                        stream.ingest(chunks[stream.name][tick])
                    report = get_algorithm("tkij-streaming").run(
                        query, context, num_granules=5
                    )
                    per_batch.append(result_key(report.results))
            outcomes.append(per_batch)
        assert outcomes[0] == outcomes[1]


class TestReplanPolicy:
    def test_initial_state_requires_full_evaluation(self):
        replan, reason = AutoPlanner().should_replan(
            base_size=0, appended_since_plan=0, batch_size=10
        )
        assert replan
        assert "no base plan" in reason

    def test_doubling_schedule(self):
        planner = AutoPlanner()
        stay, _ = planner.should_replan(
            base_size=100, appended_since_plan=40, batch_size=20
        )
        replan, reason = planner.should_replan(
            base_size=100, appended_since_plan=100, batch_size=20
        )
        assert stay is False
        assert replan is True
        assert "growth" in reason

    def test_out_of_range_batch_forces_replan(self):
        replan, reason = AutoPlanner().should_replan(
            base_size=1000, appended_since_plan=10, batch_size=10, out_of_range=5
        )
        assert replan is True
        assert "outside" in reason

    def test_streaming_survives_time_range_extension(self, stream_collections):
        # Batches shifted far past the original range force clamped statistics;
        # the policy replans and the answer stays equivalent to the oracle.
        base = stream_collections[0]
        streams = [StreamingCollection(c.name) for c in stream_collections]
        query = build_query("Qo,m", streams, "P1", k=10)
        algorithm = get_algorithm("tkij-streaming")
        with make_context() as context:
            for tick in range(2):
                for stream, source in zip(streams, stream_collections):
                    intervals = source.intervals[tick * 18 : (tick + 1) * 18]
                    if tick == 1:
                        span = base.total_span()
                        intervals = [i.shift(5.0 * span) for i in intervals]
                        intervals = [
                            Interval(i.uid + 10_000, i.start, i.end, i.payload)
                            for i in intervals
                        ]
                    stream.ingest(intervals)
                report = algorithm.run(query, context, num_granules=5)
                assert equivalent_top_k(report.results, naive_top_k(query))
            assert report.raw.replans >= 1


class TestStreamStateIsolation:
    def test_distinct_ks_do_not_share_state(self, stream_collections):
        algorithm = get_algorithm("tkij-streaming")
        with make_context() as context:
            query_a = build_query("Qo,m", stream_collections, "P1", k=5)
            query_b = build_query("Qo,m", stream_collections, "P1", k=15)
            report_a = algorithm.run(query_a, context, num_granules=5)
            report_b = algorithm.run(query_b, context, num_granules=5)
        assert len(report_a.results) == 5
        assert len(report_b.results) == 15
        assert len(context.streams) == 2


# ----------------------------------------------------------------- property
_PROPERTY_CONFIG = SyntheticConfig(size=24, start_max=500.0, length_max=50.0)
_PROPERTY_COLLECTIONS = list(
    generate_collections(3, _PROPERTY_CONFIG, seed=505).values()
)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_any_batch_partitioning_matches_single_shot(data):
    """Satellite: any batch partitioning yields the same top-k as one-shot TKIJ."""
    chunks = {}
    max_batches = 1
    for collection in _PROPERTY_COLLECTIONS:
        size = len(collection.intervals)
        cuts = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=size - 1),
                unique=True,
                max_size=4,
            ).map(sorted),
            label=f"cuts-{collection.name}",
        )
        edges = [0, *cuts, size]
        chunks[collection.name] = [
            collection.intervals[a:b] for a, b in zip(edges, edges[1:])
        ]
        max_batches = max(max_batches, len(chunks[collection.name]))

    streams = [StreamingCollection(c.name) for c in _PROPERTY_COLLECTIONS]
    query = build_query("Qo,m", streams, "P1", k=8)
    algorithm = get_algorithm("tkij-streaming")
    with make_context() as context:
        for tick in range(max_batches):
            for stream in streams:
                mine = chunks[stream.name]
                stream.ingest(mine[tick] if tick < len(mine) else [])
            report = algorithm.run(query, context, num_granules=5)

    single_shot = build_query("Qo,m", _PROPERTY_COLLECTIONS, "P1", k=8)
    assert equivalent_top_k(report.results, naive_top_k(single_shot))
