"""Tests for the STR-packed R-tree."""

import numpy as np
import pytest

from repro.index import Rect, RTree
from repro.temporal import Interval


def make_intervals(n, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 1000, n)
    lengths = rng.uniform(1, 50, n)
    return [Interval(i, float(s), float(s + l)) for i, (s, l) in enumerate(zip(starts, lengths))]


class TestRect:
    def test_intersects(self):
        a = Rect(0, 10, 0, 10)
        b = Rect(5, 15, 5, 15)
        c = Rect(11, 20, 0, 10)
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_contains_point(self):
        r = Rect(0, 10, 0, 10)
        assert r.contains_point(0, 10)
        assert not r.contains_point(-1, 5)

    def test_bounding(self):
        r = Rect.bounding([Rect(0, 1, 0, 1), Rect(5, 9, -2, 3)])
        assert (r.min_x, r.max_x, r.min_y, r.max_y) == (0, 9, -2, 3)

    def test_everything_contains_anything(self):
        assert Rect.everything().contains_point(1e12, -1e12)


class TestRTree:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.query(Rect.everything()) == []

    def test_all_returns_everything(self):
        intervals = make_intervals(500)
        tree = RTree(intervals, leaf_capacity=16)
        assert len(tree.all()) == 500

    def test_leaf_capacity_validation(self):
        with pytest.raises(ValueError):
            RTree([], leaf_capacity=1)

    def test_query_matches_linear_scan(self):
        intervals = make_intervals(800, seed=3)
        tree = RTree(intervals, leaf_capacity=8)
        boxes = [
            Rect(100, 300, 100, 400),
            Rect(0, 50, 0, 100),
            Rect(900, 1100, 900, 1100),
            Rect(500, 500, 0, 2000),
        ]
        for box in boxes:
            expected = {
                x.uid for x in intervals if box.contains_point(x.start, x.end)
            }
            found = {x.uid for x in tree.query(box)}
            assert found == expected

    def test_query_empty_region(self):
        intervals = make_intervals(100)
        tree = RTree(intervals)
        assert tree.query(Rect(-100, -50, -100, -50)) == []

    def test_single_item(self):
        tree = RTree([Interval(0, 5, 10)])
        assert len(tree.query(Rect(0, 10, 0, 20))) == 1
        assert tree.query(Rect(6, 10, 0, 20)) == []

    def test_duplicate_points(self):
        intervals = [Interval(i, 5.0, 10.0) for i in range(50)]
        tree = RTree(intervals, leaf_capacity=4)
        assert len(tree.query(Rect(5, 5, 10, 10))) == 50
